//! Ready-to-run grid scenarios (the FIG3 experiment backend).
//!
//! Builds the CIMENT situation of §5.2: four clusters (Fig. 3), one
//! community per cluster with its characteristic workload (physicists'
//! long sequential jobs, computer scientists' debug runs, parallel HPC),
//! plus a multi-parametric campaign at the central server — then runs the
//! CiGri simulation with and without the best-effort layer and reports the
//! paper's claims: utilization gained, locals undisturbed, kill overhead.

use lsps_des::{Dur, SimRng, Time};
use lsps_metrics::{jain_index, per_user};
use lsps_platform::{presets, Platform};
use lsps_workload::{Campaign, CommunityProfile, Job, JobKind, UserId};

use lsps_core::allot::{choose_allotment, AllotRule};

use crate::cigri::{run_cigri, CigriReport};

/// Scenario knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Master seed (everything derives from it).
    pub seed: u64,
    /// Local jobs per cluster.
    pub local_jobs_per_cluster: usize,
    /// Campaign size (number of runs).
    pub campaign_runs: usize,
    /// Nominal campaign run length, seconds.
    pub campaign_run_s: f64,
    /// Server poll period, seconds.
    pub poll_period_s: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            seed: 42,
            local_jobs_per_cluster: 40,
            campaign_runs: 2_000,
            campaign_run_s: 120.0,
            poll_period_s: 30.0,
        }
    }
}

/// Outcome of the with/without comparison.
#[derive(Clone, Debug)]
pub struct CimentOutcome {
    /// Full CiGri run (best-effort on).
    pub with_grid: CigriReport,
    /// Baseline: same locals, no grid jobs.
    pub without_grid: CigriReport,
    /// Jain index over per-community mean flows (with grid).
    pub fairness: f64,
}

/// Rigidify a community job for its host cluster: moldable jobs take their
/// balanced allotment (capped to the cluster), sequential jobs pass
/// through.
fn rigidify(job: Job, m: usize, n_jobs: usize) -> Job {
    match &job.kind {
        JobKind::Rigid { .. } => job,
        JobKind::Moldable { .. } | JobKind::Malleable { .. } => {
            let k = choose_allotment(&job, m, n_jobs, AllotRule::Balanced).max(1);
            let len = job.time_on(k);
            Job {
                kind: JobKind::Rigid { procs: k, len },
                ..job
            }
        }
        JobKind::Divisible { .. } => panic!("divisible jobs go through the campaign path"),
    }
}

/// Generate the per-cluster local workloads of the CIMENT communities.
pub fn ciment_locals(
    platform: &Platform,
    jobs_per_cluster: usize,
    rng: &mut SimRng,
) -> Vec<(usize, Job)> {
    // Community ↦ cluster, per §5.2's cast: HPC on the icluster, physicists
    // on the Xeons, CS debugging on one Athlon cluster, a second physics
    // group on the other.
    let profiles = [
        CommunityProfile::ParallelHpc,
        CommunityProfile::NumericalPhysics,
        CommunityProfile::ComputerScience,
        CommunityProfile::NumericalPhysics,
    ];
    let mut out = Vec::new();
    let mut id_base = 0u64;
    for (ci, prof) in profiles.iter().enumerate().take(platform.n_clusters()) {
        let m = platform.clusters[ci].total_procs();
        let jobs = prof
            .spec(jobs_per_cluster)
            .generate(m, &mut rng.child(ci as u64));
        for mut job in jobs {
            job.id = lsps_workload::JobId(id_base);
            id_base += 1;
            // Tag the community by cluster so fairness can split them even
            // when two clusters share a profile.
            job.user = UserId(ci as u32);
            out.push((ci, rigidify(job, m, jobs_per_cluster)));
        }
    }
    out
}

/// Run the full FIG3 scenario on the CIMENT preset.
pub fn ciment_scenario(params: ScenarioParams) -> CimentOutcome {
    let platform = presets::ciment();
    let mut rng = SimRng::seed_from(params.seed);
    let locals = ciment_locals(&platform, params.local_jobs_per_cluster, &mut rng);
    let campaign = Campaign::new(
        1,
        params.campaign_runs,
        Dur::from_secs_f64(params.campaign_run_s),
    )
    .released_at(Time::ZERO)
    .with_user(UserId(99));
    let poll = Dur::from_secs_f64(params.poll_period_s);

    let with_grid = run_cigri(&platform, locals.clone(), vec![campaign], poll, true);
    let without_grid = run_cigri(&platform, locals, vec![], poll, true);

    let flows: Vec<f64> = per_user(&with_grid.local_records)
        .iter()
        .map(|r| r.mean_flow.max(1e-9))
        .collect();
    let fairness = if flows.is_empty() {
        1.0
    } else {
        jain_index(&flows)
    };
    CimentOutcome {
        with_grid,
        without_grid,
        fairness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_reproduces_paper_claims() {
        let out = ciment_scenario(ScenarioParams {
            local_jobs_per_cluster: 15,
            campaign_runs: 300,
            ..Default::default()
        });
        let a = out.with_grid.local.as_ref().expect("locals ran");
        let b = out.without_grid.local.as_ref().expect("locals ran");
        // Claim 1: locals are NOT disturbed by the grid layer.
        assert_eq!(a.n, b.n);
        assert!(
            (a.mean_flow - b.mean_flow).abs() < 1e-9,
            "locals undisturbed"
        );
        assert!((a.cmax - b.cmax).abs() < 1e-9);
        // Claim 2: the campaign actually ran.
        assert_eq!(out.with_grid.be_completed, 300);
        assert_eq!(out.without_grid.be_completed, 0);
        // Fairness index is a sane number.
        assert!((0.0..=1.0 + 1e-9).contains(&out.fairness));
    }

    #[test]
    fn rigidify_caps_to_cluster() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let prof = MoldableProfile::from_model(
            Dur::from_secs(100),
            &SpeedupModel::Amdahl { seq_fraction: 0.05 },
            64,
        );
        let j = rigidify(Job::moldable(1, prof), 8, 4);
        match j.kind {
            JobKind::Rigid { procs, .. } => assert!((1..=8).contains(&procs)),
            _ => panic!("must be rigid"),
        }
    }

    #[test]
    fn locals_generation_is_deterministic() {
        let p = presets::ciment();
        let a = ciment_locals(&p, 5, &mut SimRng::seed_from(1));
        let b = ciment_locals(&p, 5, &mut SimRng::seed_from(1));
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        // Jobs are assigned to all four clusters.
        for ci in 0..4 {
            assert!(a.iter().any(|(c, _)| *c == ci));
        }
    }
}
