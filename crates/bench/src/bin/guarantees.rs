//! TAB-G — measured performance ratios vs. the proven guarantees.
//!
//! The paper's quantitative claims are approximation ratios:
//!
//! * MRT (off-line moldable makespan): 3/2 + ε            (§4.1)
//! * batch(MRT) (on-line, release dates): 2·(3/2+ε) = 3+ε (§4.2)
//! * SMART (rigid, Σ Ci / Σ ωiCi): 8 / 8.53               (§4.3)
//! * bi-criteria (both criteria): 4ρ = 8 with ρ = 2       (§4.4)
//!
//! This binary measures every algorithm against certified lower bounds on
//! random instance families (the measured ratio therefore *upper-bounds*
//! the true ratio vs OPT) and prints measured-vs-proven. For MRT it also
//! reports makespan/λ*, the construction invariant (≤ 1.5 exactly).

use lsps_bench::{write_csv, Table};
use lsps_core::batch::batch_online;
use lsps_core::bicriteria::{bicriteria_schedule, BiCriteriaParams};
use lsps_core::mrt::{mrt_schedule_with_lambda, MrtParams};
use lsps_core::smart::smart_schedule;
use lsps_des::{Dur, SimRng, Time};
use lsps_metrics::{cmax_lower_bound, csum_lower_bound, wsum_lower_bound, Criteria, Summary};
use lsps_workload::{Job, MoldableProfile, SpeedupModel};

const SEEDS: u64 = 12;

fn moldable_instance(rng: &mut SimRng, n: usize, m: usize, online: bool) -> Vec<Job> {
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            if online {
                clock += rng.int_range(0, 200);
            }
            Job::moldable(
                i as u64,
                MoldableProfile::from_model(
                    Dur::from_ticks(rng.int_range(50, 5_000)),
                    &SpeedupModel::Amdahl {
                        seq_fraction: rng.range(0.0, 0.3),
                    },
                    rng.int_range(1, m as u64) as usize,
                ),
            )
            .released_at(Time::from_ticks(clock))
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

fn rigid_instance(rng: &mut SimRng, n: usize, m: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::rigid(
                i as u64,
                rng.int_range(1, m as u64) as usize,
                Dur::from_ticks(rng.int_range(10, 2_000)),
            )
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

struct Line {
    algo: &'static str,
    criterion: &'static str,
    proven: f64,
    measured: Summary,
    /// Whether `proven` can be checked against this measurement directly.
    /// The MRT 3/2 bound is vs OPT; against the area/tallest *lower bound*
    /// only the two-shelf invariant (Cmax ≤ 3λ*/2) is checkable — the
    /// LB-relative row is informational (LB gap included).
    checkable: bool,
}

fn main() {
    println!("TAB-G — measured ratios vs proven guarantees ({SEEDS} seeds × sizes)\n");
    let sizes = [(16usize, 10usize), (64, 40), (100, 80), (256, 120)];
    let mut lines: Vec<Line> = Vec::new();

    // MRT off-line.
    let mut mrt_lb = Summary::new();
    let mut mrt_lambda = Summary::new();
    for seed in 0..SEEDS {
        for &(m, n) in &sizes {
            let mut rng = SimRng::seed_from(seed).child(m as u64);
            let jobs = moldable_instance(&mut rng, n, m, false);
            let (s, lambda) = mrt_schedule_with_lambda(&jobs, m, MrtParams::default());
            s.validate(&jobs).expect("valid");
            mrt_lb.add(s.makespan().ticks() as f64 / cmax_lower_bound(&jobs, m).ticks() as f64);
            mrt_lambda.add(s.makespan().ticks() as f64 / lambda as f64);
        }
    }
    lines.push(Line {
        algo: "MRT (two-shelf invariant)",
        criterion: "Cmax / lambda*",
        proven: 1.5,
        measured: mrt_lambda,
        checkable: true,
    });
    lines.push(Line {
        algo: "MRT off-line",
        criterion: "Cmax / LB",
        proven: 1.5,
        measured: mrt_lb,
        checkable: false, // 3/2 is vs OPT; this row divides by the LB
    });

    // Batch(MRT) on-line.
    let mut batch_lb = Summary::new();
    for seed in 0..SEEDS {
        for &(m, n) in &sizes {
            let mut rng = SimRng::seed_from(100 + seed).child(m as u64);
            let jobs = moldable_instance(&mut rng, n, m, true);
            let s = batch_online(&jobs, m, |b, m| {
                mrt_schedule_with_lambda(b, m, MrtParams::default()).0
            });
            s.validate(&jobs).expect("valid");
            batch_lb.add(s.makespan().ticks() as f64 / cmax_lower_bound(&jobs, m).ticks() as f64);
        }
    }
    lines.push(Line {
        algo: "batch(MRT) on-line",
        criterion: "Cmax / LB",
        proven: 3.0,
        measured: batch_lb,
        checkable: true,
    });

    // SMART.
    let mut smart_u = Summary::new();
    let mut smart_w = Summary::new();
    for seed in 0..SEEDS {
        for &(m, n) in &sizes {
            let mut rng = SimRng::seed_from(200 + seed).child(m as u64);
            let jobs = rigid_instance(&mut rng, n, m);
            let su = smart_schedule(&jobs, m, false);
            su.validate(&jobs).expect("valid");
            let cu = Criteria::evaluate(&su.completed(&jobs));
            smart_u.add(cu.sum_completion / csum_lower_bound(&jobs, m));
            let sw = smart_schedule(&jobs, m, true);
            sw.validate(&jobs).expect("valid");
            let cw = Criteria::evaluate(&sw.completed(&jobs));
            smart_w.add(cw.weighted_sum_completion / wsum_lower_bound(&jobs, m));
        }
    }
    lines.push(Line {
        algo: "SMART unweighted",
        criterion: "sum C / LB",
        proven: 8.0,
        measured: smart_u,
        checkable: true,
    });
    lines.push(Line {
        algo: "SMART weighted",
        criterion: "sum wC / LB",
        proven: 8.53,
        measured: smart_w,
        checkable: true,
    });

    // Bi-criteria.
    let mut bc_cmax = Summary::new();
    let mut bc_wsum = Summary::new();
    for seed in 0..SEEDS {
        for &(m, n) in &sizes {
            let mut rng = SimRng::seed_from(300 + seed).child(m as u64);
            let jobs = moldable_instance(&mut rng, n, m, true);
            let s = bicriteria_schedule(&jobs, m, BiCriteriaParams::default());
            s.validate(&jobs).expect("valid");
            let crit = Criteria::evaluate(&s.completed(&jobs));
            bc_cmax.add(s.makespan().ticks() as f64 / cmax_lower_bound(&jobs, m).ticks() as f64);
            bc_wsum.add(crit.weighted_sum_completion / wsum_lower_bound(&jobs, m));
        }
    }
    lines.push(Line {
        algo: "bi-criteria (rho=2)",
        criterion: "Cmax / LB",
        proven: 8.0,
        measured: bc_cmax,
        checkable: true,
    });
    lines.push(Line {
        algo: "bi-criteria (rho=2)",
        criterion: "sum wC / LB",
        proven: 8.0,
        measured: bc_wsum,
        checkable: true,
    });

    let mut table = Table::new(&["algorithm", "criterion", "proven", "mean", "max", "ok"]);
    let mut csv = String::from("algorithm,criterion,proven,mean,max\n");
    for l in &lines {
        let verdict = if !l.checkable {
            "info*".to_string()
        } else if l.measured.max() <= l.proven + 1e-9 {
            "yes".to_string()
        } else {
            "VIOLATED".to_string()
        };
        table.row(vec![
            l.algo.to_string(),
            l.criterion.to_string(),
            format!("{:.2}", l.proven),
            format!("{:.3}", l.measured.mean()),
            format!("{:.3}", l.measured.max()),
            verdict,
        ]);
        csv.push_str(&format!(
            "{},{},{},{:.6},{:.6}\n",
            l.algo,
            l.criterion,
            l.proven,
            l.measured.mean(),
            l.measured.max()
        ));
    }
    table.print();
    write_csv("guarantees.csv", &csv);
    println!(
        "\nnote: measured ratios divide by certified lower bounds, not OPT, so \
         they over-state the true ratio."
    );
    println!(
        "*    the 3/2 bound of MRT is vs OPT; vs the area/tallest LB the checkable \
         statement is the two-shelf invariant row above it (LB gap included here)."
    );
}
