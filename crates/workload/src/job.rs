//! Jobs: the unit of submission.
//!
//! A [`Job`] carries the PT/DLT classification of §2 of the paper
//! ([`JobKind`]), an arrival date (on-line submission), a weight (the ωi of
//! the Σ ωiCi criterion — priorities, §3), an optional due date (tardiness
//! criteria) and an owning user/community (fairness on the light grid,
//! §5.2).

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};

use crate::speedup::MoldableProfile;

/// Job identifier, unique within a workload.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Submitting user / community (paper §5.2: physicists, astrophysicists,
/// medical researchers, computer scientists…).
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct UserId(pub u32);

/// The computational model a job follows (§2 and §2.2 of the paper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Rigid parallel task: the processor count is fixed a priori — a
    /// rectangle in the Gantt chart.
    Rigid {
        /// Required processors.
        procs: usize,
        /// Execution time on exactly `procs` processors.
        len: Dur,
    },
    /// Moldable parallel task: the processor count is chosen by the
    /// scheduler before execution and fixed thereafter.
    Moldable {
        /// Time as a function of the allotment.
        profile: MoldableProfile,
    },
    /// Malleable parallel task: the allotment may change during execution
    /// (same profile data; policies that support resizing use it
    /// incrementally).
    Malleable {
        /// Time as a function of the (current) allotment.
        profile: MoldableProfile,
    },
    /// Divisible load: `work` abstract units splittable at arbitrary grain
    /// (processed by the `lsps-dlt` policies). One unit = what a reference
    /// CPU processes in one second.
    Divisible {
        /// Total work in abstract units.
        work: f64,
    },
}

/// A submitted job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Model-specific shape.
    pub kind: JobKind,
    /// Submission date (release date `ri`).
    pub release: Time,
    /// Weight ωi for weighted criteria (1.0 = neutral).
    pub weight: f64,
    /// Optional due date for tardiness criteria.
    pub due: Option<Time>,
    /// Owning user/community.
    pub user: UserId,
}

impl Job {
    /// A rigid job with neutral weight, released at t = 0.
    pub fn rigid(id: u64, procs: usize, len: Dur) -> Job {
        assert!(procs >= 1 && len > Dur::ZERO);
        Job {
            id: JobId(id),
            kind: JobKind::Rigid { procs, len },
            release: Time::ZERO,
            weight: 1.0,
            due: None,
            user: UserId::default(),
        }
    }

    /// A moldable job with neutral weight, released at t = 0.
    pub fn moldable(id: u64, profile: MoldableProfile) -> Job {
        Job {
            id: JobId(id),
            kind: JobKind::Moldable { profile },
            release: Time::ZERO,
            weight: 1.0,
            due: None,
            user: UserId::default(),
        }
    }

    /// A sequential (1-processor rigid) job.
    pub fn sequential(id: u64, len: Dur) -> Job {
        Job::rigid(id, 1, len)
    }

    /// Builder: set the release date.
    pub fn released_at(mut self, t: Time) -> Job {
        self.release = t;
        self
    }

    /// Builder: set the weight.
    pub fn with_weight(mut self, w: f64) -> Job {
        assert!(w >= 0.0 && w.is_finite());
        self.weight = w;
        self
    }

    /// Builder: set the due date.
    pub fn with_due(mut self, d: Time) -> Job {
        self.due = Some(d);
        self
    }

    /// Builder: set the owner.
    pub fn with_user(mut self, u: UserId) -> Job {
        self.user = u;
        self
    }

    /// The moldable/malleable profile, if this job has one.
    pub fn profile(&self) -> Option<&MoldableProfile> {
        match &self.kind {
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => Some(profile),
            _ => None,
        }
    }

    /// Execution time when run on `k` processors. For rigid jobs only the
    /// fixed count is admissible; divisible jobs have no PT time.
    ///
    /// # Panics
    /// On an inadmissible allotment.
    pub fn time_on(&self, k: usize) -> Dur {
        match &self.kind {
            JobKind::Rigid { procs, len } => {
                assert!(
                    k == *procs,
                    "rigid job {} needs exactly {} procs",
                    self.id,
                    procs
                );
                *len
            }
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => profile.time(k),
            JobKind::Divisible { .. } => {
                panic!("divisible job {} has no PT execution time", self.id)
            }
        }
    }

    /// Smallest admissible allotment (1 for moldable, the fixed count for
    /// rigid).
    pub fn min_procs(&self) -> usize {
        match &self.kind {
            JobKind::Rigid { procs, .. } => *procs,
            JobKind::Moldable { .. } | JobKind::Malleable { .. } => 1,
            JobKind::Divisible { .. } => 1,
        }
    }

    /// Largest admissible/useful allotment.
    pub fn max_procs(&self) -> usize {
        match &self.kind {
            JobKind::Rigid { procs, .. } => *procs,
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => profile.max_procs(),
            JobKind::Divisible { .. } => usize::MAX,
        }
    }

    /// Shortest achievable execution time over admissible allotments.
    pub fn min_time(&self) -> Dur {
        match &self.kind {
            JobKind::Rigid { len, .. } => *len,
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => profile.min_time(),
            JobKind::Divisible { .. } => Dur::ZERO,
        }
    }

    /// Sequential processing time `p(1)` (used by stretch-style criteria);
    /// for rigid jobs, the work `procs · len` is the sequential equivalent.
    pub fn seq_time(&self) -> Dur {
        match &self.kind {
            JobKind::Rigid { procs, len } => len.saturating_mul(*procs as u64),
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => profile.seq_time(),
            JobKind::Divisible { work } => Dur::from_secs_f64(*work),
        }
    }

    /// Minimal work over admissible allotments (the lower-bound currency of
    /// the area argument): for moldable jobs with monotone work this is the
    /// sequential work `p(1)`.
    pub fn min_work(&self) -> Dur {
        match &self.kind {
            JobKind::Rigid { procs, len } => len.saturating_mul(*procs as u64),
            JobKind::Moldable { profile } | JobKind::Malleable { profile } => profile.work(1),
            JobKind::Divisible { work } => Dur::from_secs_f64(*work),
        }
    }

    /// True iff the job is a parallel task needing more than one processor
    /// in every admissible allotment (i.e. a rigid job with `procs > 1`).
    pub fn is_strictly_parallel(&self) -> bool {
        matches!(&self.kind, JobKind::Rigid { procs, .. } if *procs > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::SpeedupModel;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn rigid_accessors() {
        let j = Job::rigid(1, 4, d(100));
        assert_eq!(j.time_on(4), d(100));
        assert_eq!(j.min_procs(), 4);
        assert_eq!(j.max_procs(), 4);
        assert_eq!(j.min_time(), d(100));
        assert_eq!(j.seq_time(), d(400));
        assert_eq!(j.min_work(), d(400));
        assert!(j.is_strictly_parallel());
        assert!(j.profile().is_none());
    }

    #[test]
    #[should_panic]
    fn rigid_rejects_other_allotments() {
        Job::rigid(1, 4, d(100)).time_on(2);
    }

    #[test]
    fn moldable_accessors() {
        let prof = MoldableProfile::from_model(d(1000), &SpeedupModel::Linear, 8);
        let j = Job::moldable(2, prof);
        assert_eq!(j.time_on(1), d(1000));
        // Ideal would be 125; integer work-monotony rounding adds one tick
        // per halving step (see speedup::tests::linear_model_halves).
        let t8 = j.time_on(8).ticks();
        assert!((125..=127).contains(&t8), "time_on(8) = {t8}");
        assert_eq!(j.min_procs(), 1);
        assert_eq!(j.max_procs(), 8);
        assert_eq!(j.min_time(), j.time_on(8));
        assert_eq!(j.min_work(), d(1000));
        assert!(!j.is_strictly_parallel());
    }

    #[test]
    fn builders_compose() {
        let j = Job::sequential(3, d(50))
            .released_at(Time::from_ticks(7))
            .with_weight(2.5)
            .with_due(Time::from_ticks(100))
            .with_user(UserId(9));
        assert_eq!(j.release, Time::from_ticks(7));
        assert_eq!(j.weight, 2.5);
        assert_eq!(j.due, Some(Time::from_ticks(100)));
        assert_eq!(j.user, UserId(9));
        assert_eq!(j.min_procs(), 1);
    }

    #[test]
    fn divisible_work() {
        let j = Job {
            id: JobId(4),
            kind: JobKind::Divisible { work: 3.5 },
            release: Time::ZERO,
            weight: 1.0,
            due: None,
            user: UserId::default(),
        };
        assert_eq!(j.seq_time(), Dur::from_secs_f64(3.5));
        assert_eq!(j.min_time(), Dur::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let prof = MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 4);
        let j = Job::moldable(5, prof).with_weight(3.0);
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
