//! Ready-made platforms from the paper.
//!
//! * [`ciment`] — the four largest CIMENT clusters exactly as drawn in
//!   Fig. 3 (104 bi-Itanium 2 on Myrinet, 48 bi-P4 Xeon on GigE, 40 and 24
//!   bi-Athlon on 100 Mb Ethernet).
//! * [`imag`] — the 225-PC IMAG cluster of §1.1.
//! * [`fig2`] — the 100-machine cluster of the Fig. 2 simulation.
//! * [`uniform`] / [`hetero_speeds`] — synthetic platforms for experiments.

use lsps_des::SimRng;

use crate::network::{LinkClass, NetworkModel};
use crate::spec::{Cluster, Node, Platform};

/// The four largest clusters of the CIMENT light grid (Fig. 3).
///
/// Relative speeds encode the between-cluster heterogeneity: Itanium 2 is the
/// reference (1.0), the P4 Xeon class runs at 0.8, the Athlon class at 0.55.
/// Within a cluster nodes are identical — the paper's weak internal
/// heterogeneity is modelled by [`hetero_speeds`] when needed.
pub fn ciment() -> Platform {
    Platform::new(
        "CIMENT",
        vec![
            Cluster::homogeneous("icluster", 104, 2, 1.0, LinkClass::myrinet()),
            Cluster::homogeneous("xeon", 48, 2, 0.8, LinkClass::gige()),
            Cluster::homogeneous("athlon-40", 40, 2, 0.55, LinkClass::eth100()),
            Cluster::homogeneous("athlon-24", 24, 2, 0.55, LinkClass::eth100()),
        ],
        NetworkModel::new(
            LinkClass::smp_bus(),
            LinkClass::gige(),
            LinkClass::campus_wan(),
        ),
    )
}

/// The 225-PC IMAG cluster mentioned in §1.1 (single-CPU machines).
pub fn imag() -> Platform {
    Platform::new(
        "IMAG-225",
        vec![Cluster::homogeneous(
            "imag",
            225,
            1,
            1.0,
            LinkClass::eth100(),
        )],
        NetworkModel::light_grid_default(),
    )
}

/// The 100 identical machines of the Fig. 2 simulation.
pub fn fig2() -> Platform {
    Platform::uniform("fig2-cluster", 100)
}

/// A single homogeneous cluster of `m` unit-speed CPUs.
pub fn uniform(m: usize) -> Platform {
    Platform::uniform(format!("uniform-{m}"), m)
}

/// A single cluster of `m` single-CPU nodes whose speeds are drawn uniformly
/// in `[1 - spread, 1 + spread]` — the paper's *weak* intra-cluster
/// heterogeneity (same OS, different clock generations).
pub fn hetero_speeds(m: usize, spread: f64, rng: &mut SimRng) -> Platform {
    assert!((0.0..1.0).contains(&spread));
    let nodes = (0..m)
        .map(|_| Node::new(1, rng.range(1.0 - spread, 1.0 + spread + f64::EPSILON)))
        .collect();
    Platform::new(
        format!("hetero-{m}"),
        vec![Cluster {
            name: "c0".into(),
            nodes,
            interconnect: LinkClass::gige(),
        }],
        NetworkModel::light_grid_default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciment_matches_fig3() {
        let p = ciment();
        assert_eq!(p.n_clusters(), 4);
        let names: Vec<_> = p.clusters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["icluster", "xeon", "athlon-40", "athlon-24"]);
        let nodes: Vec<_> = p.clusters.iter().map(|c| c.nodes.len()).collect();
        assert_eq!(nodes, vec![104, 48, 40, 24]);
        assert!(
            p.clusters.iter().all(|c| c.nodes[0].cpus == 2),
            "all bi-proc"
        );
        // 216 nodes, 432 CPUs.
        assert_eq!(p.total_procs(), 432);
        // Interconnect classes ranked as in Fig. 3.
        assert!(
            p.clusters[0].interconnect.bandwidth_bps > p.clusters[1].interconnect.bandwidth_bps
        );
        assert!(
            p.clusters[1].interconnect.bandwidth_bps > p.clusters[2].interconnect.bandwidth_bps
        );
        assert_eq!(p.clusters[2].interconnect, p.clusters[3].interconnect);
    }

    #[test]
    fn imag_has_225_pcs() {
        let p = imag();
        assert_eq!(p.total_procs(), 225);
        assert_eq!(p.clusters[0].nodes[0].cpus, 1);
    }

    #[test]
    fn fig2_is_100_identical() {
        let p = fig2();
        assert_eq!(p.total_procs(), 100);
        assert!((p.total_power() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hetero_speeds_within_spread() {
        let mut rng = SimRng::seed_from(1);
        let p = hetero_speeds(50, 0.2, &mut rng);
        assert_eq!(p.total_procs(), 50);
        for n in &p.clusters[0].nodes {
            assert!((0.8..=1.2 + 1e-9).contains(&n.speed), "speed {}", n.speed);
        }
        // Deterministic under the same seed.
        let mut rng2 = SimRng::seed_from(1);
        let p2 = hetero_speeds(50, 0.2, &mut rng2);
        assert_eq!(p, p2);
    }
}
