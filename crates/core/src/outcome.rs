//! Outcomes: what a policy run *produces*, beyond identical-machine
//! rectangles.
//!
//! The original comparison surface only spoke [`Schedule`] — every policy
//! emitted rectangles on `m` identical processors and every consumer read
//! completion records straight off them. That left the paper's two other
//! execution models stranded in bespoke return types: non-clairvoyant
//! exponential-trial runs (§4.2) carry [`TrialStats`] overhead counters,
//! and uniform-machine runs (§2.2) produce a [`UniformSchedule`] whose
//! spans depend on per-processor speeds. [`Outcome`] folds all three
//! behind one interface:
//!
//! * [`Outcome::completed`] — the uniform "extract [`CompletedJob`]
//!   records" view every metric consumer needs;
//! * [`Outcome::trial_stats`] — the auxiliary counters, `None` for
//!   outcomes without trial overhead;
//! * [`Outcome::validate`] — the matching validator (rectangle or
//!   uniform-machine), so experiments keep failing loudly instead of
//!   reporting flattering garbage.
//!
//! [`OutcomeKind`] is the *capability* side of the same coin: executors
//! that can only drive rectangles (`des-replay`, `des-online`) check a
//! policy's kind before running it, and campaign validation rejects
//! incompatible (policy, executor) pairs before any cell runs.

use std::fmt;

use lsps_des::Time;
use lsps_metrics::CompletedJob;
use lsps_workload::Job;

use crate::nonclairvoyant::TrialStats;
use crate::schedule::{Schedule, ValidationError};
use crate::uniform::{UniformError, UniformSchedule};

/// The shape of outcome a policy produces — its capability tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Rectangles on identical processors ([`Outcome::Rect`]). The only
    /// kind the event-driven executors can replay or drive.
    Rect,
    /// Rectangles plus non-clairvoyant trial counters ([`Outcome::Trial`]).
    Trial,
    /// Speed-scaled assignments on uniform machines ([`Outcome::Uniform`]).
    Uniform,
}

impl OutcomeKind {
    /// Stable identifier (error messages, docs).
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Rect => "rect",
            OutcomeKind::Trial => "trial",
            OutcomeKind::Uniform => "uniform",
        }
    }
}

impl fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one policy run produced.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A validated-rectangle schedule on identical machines.
    Rect(Schedule),
    /// A rectangle schedule reached through kill-and-resubmit trials: the
    /// final (successful) trial of each job is its real execution, and the
    /// burnt machine time of killed trials lives in the counters.
    Trial {
        /// The actual-times schedule (final trials only).
        schedule: Schedule,
        /// Trial overhead: trials started, kills, wasted CPU-ticks.
        stats: TrialStats,
    },
    /// A schedule over machines of differing speeds.
    Uniform(UniformSchedule),
}

/// Validation failure of either outcome representation.
#[derive(Clone, Debug, PartialEq)]
pub enum OutcomeError {
    /// The rectangle validator rejected the schedule.
    Rect(ValidationError),
    /// The uniform-machine validator rejected the schedule.
    Uniform(UniformError),
}

impl fmt::Display for OutcomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutcomeError::Rect(e) => e.fmt(f),
            OutcomeError::Uniform(e) => write!(f, "uniform schedule invalid: {e:?}"),
        }
    }
}

impl std::error::Error for OutcomeError {}

impl Outcome {
    /// The capability tag of this outcome.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            Outcome::Rect(_) => OutcomeKind::Rect,
            Outcome::Trial { .. } => OutcomeKind::Trial,
            Outcome::Uniform(_) => OutcomeKind::Uniform,
        }
    }

    /// Per-job completion records — the one extraction every §3 criterion
    /// consumes, whatever the machine/knowledge model underneath.
    pub fn completed(&self, jobs: &[Job]) -> Vec<CompletedJob> {
        match self {
            Outcome::Rect(s) | Outcome::Trial { schedule: s, .. } => s.completed(jobs),
            Outcome::Uniform(s) => s.completed(jobs),
        }
    }

    /// Auxiliary non-clairvoyance counters (`None` unless the outcome went
    /// through kill-and-resubmit trials).
    pub fn trial_stats(&self) -> Option<TrialStats> {
        match self {
            Outcome::Trial { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// The rectangle schedule, when this outcome has one.
    pub fn as_rect(&self) -> Option<&Schedule> {
        match self {
            Outcome::Rect(s) | Outcome::Trial { schedule: s, .. } => Some(s),
            Outcome::Uniform(_) => None,
        }
    }

    /// The machine speeds, when this outcome ran on uniform machines.
    pub fn speeds(&self) -> Option<&[f64]> {
        match self {
            Outcome::Uniform(s) => Some(s.speeds()),
            _ => None,
        }
    }

    /// Number of scheduled jobs.
    pub fn len(&self) -> usize {
        match self {
            Outcome::Rect(s) | Outcome::Trial { schedule: s, .. } => s.len(),
            Outcome::Uniform(s) => s.assignments().len(),
        }
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Latest completion time.
    pub fn makespan(&self) -> Time {
        match self {
            Outcome::Rect(s) | Outcome::Trial { schedule: s, .. } => s.makespan(),
            Outcome::Uniform(s) => s.makespan(),
        }
    }

    /// Validate against the job set with the representation's own
    /// validator.
    pub fn validate(&self, jobs: &[Job]) -> Result<(), OutcomeError> {
        match self {
            Outcome::Rect(s) | Outcome::Trial { schedule: s, .. } => {
                s.validate(jobs).map_err(OutcomeError::Rect)
            }
            Outcome::Uniform(s) => s.validate(jobs).map_err(OutcomeError::Uniform),
        }
    }
}

/// An outcome together with the as-scheduled job view it is valid against
/// — the outcome-generic counterpart of [`crate::policy::PolicyRun`].
#[derive(Clone, Debug)]
pub struct OutcomeRun {
    /// What the policy produced.
    pub outcome: Outcome,
    /// The jobs as the policy actually scheduled them (rigidified,
    /// possibly release-stripped).
    pub jobs: Vec<Job>,
}

impl OutcomeRun {
    /// Validate the outcome against the as-scheduled jobs.
    pub fn validate(&self) -> Result<(), OutcomeError> {
        self.outcome.validate(&self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, JobOrder};
    use crate::nonclairvoyant::exponential_trial_schedule;
    use crate::uniform::uniform_list_schedule;
    use lsps_des::Dur;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn seq_jobs(n: u64) -> Vec<Job> {
        (0..n).map(|i| Job::sequential(i, d(50 + 10 * i))).collect()
    }

    #[test]
    fn rect_outcome_mirrors_schedule() {
        let jobs = seq_jobs(4);
        let s = list_schedule(&jobs, 2, JobOrder::Fcfs);
        let o = Outcome::Rect(s.clone());
        assert_eq!(o.kind(), OutcomeKind::Rect);
        assert_eq!(o.len(), 4);
        assert_eq!(o.makespan(), s.makespan());
        assert_eq!(o.trial_stats(), None);
        assert_eq!(o.speeds(), None);
        assert_eq!(o.completed(&jobs), s.completed(&jobs));
        assert_eq!(o.validate(&jobs), Ok(()));
        assert_eq!(o.as_rect(), Some(&s));
    }

    #[test]
    fn trial_outcome_exposes_stats_and_rect_view() {
        let jobs = seq_jobs(3);
        let (s, stats) = exponential_trial_schedule(&jobs, 2, d(20));
        let o = Outcome::Trial {
            schedule: s.clone(),
            stats,
        };
        assert_eq!(o.kind(), OutcomeKind::Trial);
        assert_eq!(o.trial_stats(), Some(stats));
        assert!(stats.kills > 0, "estimate 20 forces kills");
        assert_eq!(o.as_rect(), Some(&s));
        assert_eq!(o.validate(&jobs), Ok(()));
        assert_eq!(o.completed(&jobs).len(), 3);
    }

    #[test]
    fn uniform_outcome_validates_with_its_own_validator() {
        let jobs = seq_jobs(5);
        let speeds = [2.0, 1.0];
        let s = uniform_list_schedule(&jobs, &speeds, JobOrder::Lpt);
        let o = Outcome::Uniform(s.clone());
        assert_eq!(o.kind(), OutcomeKind::Uniform);
        assert_eq!(o.speeds(), Some(&speeds[..]));
        assert_eq!(o.as_rect(), None);
        assert_eq!(o.len(), 5);
        assert_eq!(o.validate(&jobs), Ok(()));
        // Wrong job set fails through the uniform validator.
        let err = o.validate(&seq_jobs(4)).unwrap_err();
        assert!(matches!(err, OutcomeError::Uniform(_)));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(OutcomeKind::Rect.to_string(), "rect");
        assert_eq!(OutcomeKind::Trial.to_string(), "trial");
        assert_eq!(OutcomeKind::Uniform.to_string(), "uniform");
    }
}
