//! "Which policy for which application?" — the paper's question, answered
//! for every cell of the (application × objective) matrix.
//!
//! ```sh
//! cargo run --example policy_advisor
//! ```

use lsps::prelude::*;

fn main() {
    let apps = [
        Application::SequentialBag,
        Application::RigidParallel,
        Application::Moldable,
        Application::DivisibleLoad,
    ];
    let objectives = [
        Objective::Makespan,
        Objective::WeightedCompletion,
        Objective::BiCriteria,
        Objective::Throughput,
        Objective::GridFairness,
    ];
    for app in apps {
        println!("== {app:?}");
        for obj in objectives {
            let r = advise(app, obj, true);
            let g = r
                .guarantee
                .map(|g| format!(" [ratio {g}]"))
                .unwrap_or_default();
            println!("  {obj:?} -> {:?}{g}", r.policy);
            println!("      {}", r.rationale);
        }
        println!();
    }
}
