//! Processor availability over time: bookings, reservations, holes.
//!
//! A [`Timeline`] tracks which processors of a capacity set are busy during
//! which intervals. It is the common substrate for
//!
//! * running jobs (a booking per started job),
//! * **advance reservations** (§5.1 of the paper: "a given number of
//!   processors in a given time window"), booked ahead of time,
//! * backfilling (EASY books only the head job's reservation, conservative
//!   books every queued job),
//! * the CiGri best-effort layer (§5.2), which fills current holes of the
//!   local schedules (via [`Timeline::earliest_slot_within`] /
//!   [`Timeline::free_profile`]) with killable grid jobs.
//!
//! Invariant enforced at booking time: a booking's processors are a subset
//! of capacity and disjoint from every time-overlapping booking. Everything
//! downstream (schedule validity, utilization accounting) relies on it.
//!
//! # The availability profile
//!
//! Alongside the booking table, the timeline maintains a **sweep-line
//! availability profile** — the structure production batch schedulers
//! (Slurm, OAR, EASY \[Lifka 95\]) keep to make placement sublinear. The
//! profile is a piecewise-constant map from time to the *busy* processor
//! set, stored as a sorted array of `(segment start, busy set)` pairs:
//!
//! * an entry `(t, busy)` means exactly `busy` is occupied on
//!   `[t, next key)`; the last segment extends to [`Time::MAX`];
//! * the array always contains a segment starting at [`Time::ZERO`];
//! * adjacent segments hold *distinct* busy sets (boundaries are
//!   coalesced away as bookings come and go), so every boundary is a real
//!   change point and the segment count is bounded by 2 × live bookings.
//!
//! The sorted-array layout (rather than an ordered tree) is a deliberate
//! hot-path choice: the bound above keeps the whole profile a few cache
//! lines wide, so binary search beats pointer-chasing, range walks are
//! contiguous slice scans, and boundary insertion is a short `memmove`
//! with no per-node allocation.
//!
//! Every mutation ([`Timeline::try_book`], [`Timeline::remove`],
//! [`Timeline::truncate`], [`Timeline::gc`]) updates the touched segments
//! in O(log S + touched); every query reads the profile instead of
//! scanning the booking table:
//!
//! * [`Timeline::free_at`] is one binary search,
//! * [`Timeline::free_during`] unions the busy sets of the covered
//!   segments,
//! * [`Timeline::free_profile`] is a range read,
//! * [`Timeline::earliest_slot`] walks forward over the boundaries where
//!   processors are *freed* (the only instants the sliding-window free set
//!   can grow), testing feasibility with an allocation-free popcount.
//!
//! The naive full-scan implementation is retained under `#[cfg(test)]`
//! (`naive::NaiveTimeline`) as the reference oracle for the differential
//! property tests at the bottom of this module.

use std::fmt;

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};

use crate::procset::ProcSet;

/// Why an interval is booked — used by policies to decide what may be
/// displaced (best-effort bookings are killable, the others are not).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BookingKind {
    /// A regular local job occupying its allocation.
    Job,
    /// An advance reservation (§5.1): processors blocked for a time window.
    Reservation,
    /// A best-effort grid job (§5.2): fills holes, killed on local demand.
    BestEffort,
}

/// One booked interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Booking {
    /// Start of the interval (inclusive).
    pub start: Time,
    /// End of the interval (exclusive).
    pub end: Time,
    /// Processors occupied.
    pub procs: ProcSet,
    /// What occupies them.
    pub kind: BookingKind,
}

impl Booking {
    /// Non-empty intersection of the booking interval with `[start, end)`.
    /// The clipped form makes degenerate (zero-length) bookings and queries
    /// fall out as `false` without a separate emptiness check.
    fn overlaps(&self, start: Time, end: Time) -> bool {
        self.start.max(start) < self.end.min(end)
    }
}

/// Handle to a booking within a [`Timeline`].
///
/// Packs `(sequence number << 32) | arena slot`: the high half is a
/// monotonically allocated creation stamp (so `Ord` on ids is creation
/// order, as it always was), the low half locates the booking's arena slot
/// for O(1) generation-checked access. Two timelines hand out overlapping
/// ids — an id is only meaningful against the timeline that produced it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BookingId(u64);

impl BookingId {
    fn pack(seq: u32, slot: u32) -> BookingId {
        BookingId(((seq as u64) << 32) | slot as u64)
    }

    fn seq(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }
}

/// Error returned by [`Timeline::try_book`] on an invalid booking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BookError {
    /// Requested processors are not all within the timeline capacity.
    OutsideCapacity,
    /// Requested processors collide with an existing booking.
    Conflict(BookingId),
    /// `end < start`.
    NegativeInterval,
}

impl fmt::Display for BookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BookError::OutsideCapacity => write!(f, "procs outside timeline capacity"),
            BookError::Conflict(id) => write!(f, "procs conflict with booking {id:?}"),
            BookError::NegativeInterval => write!(f, "end precedes start"),
        }
    }
}

impl std::error::Error for BookError {}

/// One profile segment: the busy set on `[key, next key)` plus its cached
/// popcount. Every placement probe needs "how many processors are free
/// here" before it needs the exact set, so the count is maintained on
/// mutation instead of being recomputed per query — the count prefilter is
/// what lets [`Timeline::earliest_slot`] skip candidate windows in O(1).
#[derive(Clone, Debug, PartialEq)]
struct Seg {
    busy: ProcSet,
    count: u32,
}

impl Seg {
    fn empty() -> Seg {
        Seg {
            busy: ProcSet::new(),
            count: 0,
        }
    }
}

/// The piecewise-constant busy profile (see the module docs), stored as a
/// **sorted array** of `(segment start, busy set)` pairs rather than an
/// ordered tree: the segment count is bounded by 2 × live bookings, so the
/// whole profile stays a few cache lines wide, point lookups are one
/// branchless binary search, range walks are contiguous slice scans, and
/// boundary insertion/removal is a short `memmove` — no node allocation on
/// the book/remove hot path.
#[derive(Clone, Debug)]
struct Profile {
    /// Sorted by segment start; never empty, `segs[0].0 == Time::ZERO`.
    segs: Vec<(Time, Seg)>,
}

impl Profile {
    fn new() -> Profile {
        Profile {
            segs: vec![(Time::ZERO, Seg::empty())],
        }
    }

    /// Index of the segment covering instant `t` (the last start `<= t`).
    fn idx_at(&self, t: Time) -> usize {
        self.segs.partition_point(|&(k, _)| k <= t) - 1
    }

    /// The segment covering instant `t`.
    fn seg_at(&self, t: Time) -> &Seg {
        &self.segs[self.idx_at(t)].1
    }

    /// The busy set at instant `t`.
    fn busy_at(&self, t: Time) -> &ProcSet {
        &self.seg_at(t).busy
    }

    /// Segments whose start lies in the open interval `(after, before)` —
    /// the range read every windowed query walks.
    fn between(&self, after: Time, before: Time) -> &[(Time, Seg)] {
        let lo = self.segs.partition_point(|&(k, _)| k <= after);
        let hi = self.segs.partition_point(|&(k, _)| k < before);
        &self.segs[lo..hi.max(lo)]
    }

    /// Segments whose start lies in the half-open interval `(after, upto]`.
    fn between_inclusive(&self, after: Time, upto: Time) -> &[(Time, Seg)] {
        let lo = self.segs.partition_point(|&(k, _)| k <= after);
        let hi = self.segs.partition_point(|&(k, _)| k <= upto);
        &self.segs[lo..hi.max(lo)]
    }

    /// Ensure a boundary exists at `t`, splitting the covering segment.
    /// Returns the index of the segment starting at `t`.
    fn split_at(&mut self, t: Time) -> usize {
        let i = self.idx_at(t);
        if self.segs[i].0 == t {
            return i;
        }
        let copy = self.segs[i].1.clone();
        self.segs.insert(i + 1, (t, copy));
        i + 1
    }

    /// Drop the boundary at `t` if it no longer changes the busy set.
    fn coalesce_at(&mut self, t: Time) {
        if t == Time::ZERO {
            return;
        }
        let Ok(i) = self.segs.binary_search_by_key(&t, |&(k, _)| k) else {
            return;
        };
        // `i >= 1`: the anchor at `Time::ZERO` precedes every other key.
        if self.segs[i - 1].1 == self.segs[i].1 {
            self.segs.remove(i);
        }
    }

    /// Mark `procs` busy on `[start, end)`. Caller guarantees they are
    /// currently free throughout the interval (the booking invariant), so
    /// interior boundaries stay distinct and only the edges can coalesce.
    fn add(&mut self, start: Time, end: Time, procs: &ProcSet) {
        if start >= end || procs.is_empty() {
            return;
        }
        let delta = procs.len() as u32;
        let lo = self.split_at(start);
        // `end > start`, so this insert cannot shift indices at or below
        // `lo`: the segments covering `[start, end)` are exactly `lo..hi`.
        let hi = self.split_at(end);
        for (_, seg) in &mut self.segs[lo..hi] {
            seg.busy.union_with(procs);
            // Disjointness is the booking invariant, so the union grows by
            // exactly |procs|.
            seg.count += delta;
        }
        self.coalesce_at(end);
        self.coalesce_at(start);
    }

    /// Mark `procs` free on `[start, end)`. Caller guarantees they are
    /// busy throughout the interval (they belong to one booking covering
    /// it), mirroring [`add`](Profile::add).
    fn sub(&mut self, start: Time, end: Time, procs: &ProcSet) {
        if start >= end || procs.is_empty() {
            return;
        }
        let delta = procs.len() as u32;
        let lo = self.split_at(start);
        let hi = self.split_at(end);
        for (_, seg) in &mut self.segs[lo..hi] {
            seg.busy.subtract(procs);
            seg.count -= delta;
        }
        self.coalesce_at(end);
        self.coalesce_at(start);
    }
}

/// One slot of the booking arena: the sequence number of its current (or
/// last) occupant plus the occupant itself. The sequence number doubles as
/// the generation stamp — it is globally unique per timeline, so a stale
/// [`BookingId`] can never alias a recycled slot.
#[derive(Clone, Debug)]
struct Slot {
    seq: u32,
    booking: Option<Booking>,
}

/// Arena + id-interned booking store. Bookings live in dense `u32`-indexed
/// slots (vacated slots are recycled LIFO), and a [`BookingId`] packs
/// `(seq, slot)` so lookup is one bounds-checked array access plus a
/// generation check — no ordered map or hashing on the book/remove hot
/// path. Sequence numbers are allocated monotonically, which keeps
/// `BookingId` ordering equal to creation order (the pre-arena contract).
#[derive(Clone, Debug, Default)]
struct BookingStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u32,
}

impl BookingStore {
    fn insert(&mut self, booking: Booking) -> BookingId {
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("booking sequence numbers exhausted");
        let slot = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.seq = seq;
                s.booking = Some(booking);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("booking arena full");
                self.slots.push(Slot {
                    seq,
                    booking: Some(booking),
                });
                idx
            }
        };
        self.live += 1;
        BookingId::pack(seq, slot)
    }

    fn get(&self, id: BookingId) -> Option<&Booking> {
        let s = self.slots.get(id.slot())?;
        if s.seq != id.seq() {
            return None;
        }
        s.booking.as_ref()
    }

    fn get_mut(&mut self, id: BookingId) -> Option<&mut Booking> {
        let s = self.slots.get_mut(id.slot())?;
        if s.seq != id.seq() {
            return None;
        }
        s.booking.as_mut()
    }

    fn remove(&mut self, id: BookingId) -> Option<Booking> {
        let s = self.slots.get_mut(id.slot())?;
        if s.seq != id.seq() {
            return None;
        }
        let b = s.booking.take()?;
        self.free.push(id.slot() as u32);
        self.live -= 1;
        Some(b)
    }

    /// Iterate over live bookings in slot order (NOT id order).
    fn iter_unordered(&self) -> impl Iterator<Item = (BookingId, &Booking)> {
        self.slots.iter().enumerate().filter_map(|(idx, s)| {
            s.booking
                .as_ref()
                .map(|b| (BookingId::pack(s.seq, idx as u32), b))
        })
    }
}

/// Availability calendar of a set of processors.
#[derive(Clone, Debug)]
pub struct Timeline {
    capacity: ProcSet,
    bookings: BookingStore,
    profile: Profile,
}

impl Timeline {
    /// A timeline over the given capacity, initially all free.
    pub fn new(capacity: ProcSet) -> Self {
        Timeline {
            capacity,
            bookings: BookingStore::default(),
            profile: Profile::new(),
        }
    }

    /// A timeline over processors `{0, …, m-1}`.
    pub fn with_procs(m: usize) -> Self {
        Timeline::new(ProcSet::full(m))
    }

    /// The capacity set.
    pub fn capacity(&self) -> &ProcSet {
        &self.capacity
    }

    /// Number of live bookings.
    pub fn n_bookings(&self) -> usize {
        self.bookings.live
    }

    /// Number of segments of the availability profile (diagnostics: stays
    /// within `2 × n_bookings + 1` by the coalescing invariant).
    pub fn n_segments(&self) -> usize {
        self.profile.segs.len()
    }

    /// Look up a booking.
    pub fn booking(&self, id: BookingId) -> Option<&Booking> {
        self.bookings.get(id)
    }

    /// Iterate over all bookings (deterministic id order). Materializes a
    /// sorted view of the arena — fine for the walk-everything callers
    /// (victim scans, diagnostics), not meant for per-placement loops.
    pub fn bookings(&self) -> impl Iterator<Item = (BookingId, &Booking)> {
        let mut all: Vec<(BookingId, &Booking)> = self.bookings.iter_unordered().collect();
        all.sort_unstable_by_key(|(id, _)| *id);
        all.into_iter()
    }

    /// The first booking colliding with `procs` on `[start, end)` in id
    /// order, if any. The fast path is a profile probe; the booking table
    /// is scanned only to *name* the conflict in the error.
    fn conflict(&self, start: Time, end: Time, procs: &ProcSet) -> Option<BookingId> {
        let clash = !self.profile.busy_at(start).is_disjoint(procs)
            || self
                .profile
                .between(start, end)
                .iter()
                .any(|(_, seg)| !seg.busy.is_disjoint(procs));
        if !clash {
            return None;
        }
        let id = self
            .bookings
            .iter_unordered()
            .filter(|(_, b)| b.overlaps(start, end) && !b.procs.is_disjoint(procs))
            .map(|(id, _)| id)
            .min();
        Some(id.expect("busy profile procs always belong to some booking"))
    }

    /// Book `procs` during `[start, end)`, validating capacity and
    /// conflict-freedom. Zero-length intervals are accepted and occupy
    /// nothing.
    pub fn try_book(
        &mut self,
        start: Time,
        end: Time,
        procs: ProcSet,
        kind: BookingKind,
    ) -> Result<BookingId, BookError> {
        if end < start {
            return Err(BookError::NegativeInterval);
        }
        if !procs.is_subset(&self.capacity) {
            return Err(BookError::OutsideCapacity);
        }
        if start < end {
            if let Some(id) = self.conflict(start, end, &procs) {
                return Err(BookError::Conflict(id));
            }
        }
        self.profile.add(start, end, &procs);
        Ok(self.bookings.insert(Booking {
            start,
            end,
            procs,
            kind,
        }))
    }

    /// Like [`try_book`](Self::try_book) but panics on error — for call
    /// sites that just computed a free slot.
    pub fn book(&mut self, start: Time, end: Time, procs: ProcSet, kind: BookingKind) -> BookingId {
        self.try_book(start, end, procs, kind)
            .unwrap_or_else(|e| panic!("invalid booking [{start:?},{end:?}): {e}"))
    }

    /// Remove a booking (job completed early, reservation cancelled). The
    /// arena slot is recycled for the next booking.
    pub fn remove(&mut self, id: BookingId) -> Option<Booking> {
        let b = self.bookings.remove(id)?;
        self.profile.sub(b.start, b.end, &b.procs);
        Some(b)
    }

    /// Shorten a booking to end at `at` (kill semantics for best-effort
    /// jobs). If `at <= start` the booking is removed entirely. Returns the
    /// booking's resulting end — its start when it was removed, its
    /// unchanged end when `at` lies at or past it — or `None` if the id is
    /// unknown.
    pub fn truncate(&mut self, id: BookingId, at: Time) -> Option<Time> {
        let b = self.bookings.get_mut(id)?;
        if at <= b.start {
            let b = self.bookings.remove(id).expect("present above");
            self.profile.sub(b.start, b.end, &b.procs);
            return Some(b.start);
        }
        if at < b.end {
            let old_end = b.end;
            b.end = at;
            self.profile.sub(at, old_end, &b.procs);
            return Some(at);
        }
        Some(b.end)
    }

    /// Drop every booking that ends at or before `now` (history no longer
    /// needed for feasibility). Utilization accounting across gc boundaries
    /// is the caller's responsibility.
    pub fn gc(&mut self, now: Time) {
        for idx in 0..self.bookings.slots.len() {
            let s = &mut self.bookings.slots[idx];
            let expired = s.booking.as_ref().is_some_and(|b| b.end <= now);
            if expired {
                let b = s.booking.take().expect("checked above");
                self.bookings.free.push(idx as u32);
                self.bookings.live -= 1;
                self.profile.sub(b.start, b.end, &b.procs);
            }
        }
    }

    /// Processors free at instant `t`.
    pub fn free_at(&self, t: Time) -> ProcSet {
        let mut free = self.capacity.clone();
        free.subtract(self.profile.busy_at(t));
        free
    }

    /// Processors free during the whole window `[start, end)`. For an empty
    /// window this degenerates to [`free_at`](Self::free_at)`(start)`.
    pub fn free_during(&self, start: Time, end: Time) -> ProcSet {
        let mut free = ProcSet::new();
        self.free_during_into(start, end, &mut free);
        free
    }

    /// [`free_during`](Self::free_during) writing into a caller-provided
    /// scratch set — the allocation-free form the scheduler loops use (one
    /// scratch buffer per loop instead of a fresh `Vec` per probe).
    pub fn free_during_into(&self, start: Time, end: Time, free: &mut ProcSet) {
        free.clone_from(&self.capacity);
        free.subtract(self.profile.busy_at(start));
        if end <= start {
            return;
        }
        for (_, seg) in self.profile.between(start, end) {
            free.subtract(&seg.busy);
        }
    }

    /// Upper bound on `free_during(start, end).len()`: capacity minus the
    /// largest per-segment busy *count* over the window. A count-only read
    /// off the cached segment popcounts — no set is materialized — so
    /// scheduler loops can reject hopeless windows before paying for the
    /// union walk. (`free_during` unions busy sets, so its popcount is
    /// never above this bound.)
    pub fn free_during_upper_bound(&self, start: Time, end: Time) -> usize {
        let cap = self.capacity.len();
        let mut max_busy = self.profile.seg_at(start).count as usize;
        if end > start {
            for (_, seg) in self.profile.between(start, end) {
                max_busy = max_busy.max(seg.count as usize);
            }
        }
        cap - max_busy.min(cap)
    }

    /// At least `width` of capacity free throughout `[start, end)`? The
    /// allocation-free feasibility probe of the sweep: busy sets are only
    /// counted against capacity, never materialized, and the walk stops as
    /// soon as the window is known infeasible.
    fn window_fits(&self, start: Time, end: Time, width: usize, busy: &mut ProcSet) -> bool {
        busy.clone_from(self.profile.busy_at(start));
        if self.capacity.difference_len(busy) < width {
            return false;
        }
        if end <= start {
            return true;
        }
        for (_, seg) in self.profile.between(start, end) {
            busy.union_with(&seg.busy);
            if self.capacity.difference_len(busy) < width {
                return false;
            }
        }
        true
    }

    /// Earliest start `>= earliest` at which `width` processors are free for
    /// `dur`, together with the chosen processors (lowest free indices —
    /// the deterministic allocation rule). `None` iff `width` exceeds
    /// capacity.
    ///
    /// The free set over a sliding window only grows when processors are
    /// *freed*, so it suffices to test `earliest` and every profile
    /// boundary after it where the busy set loses a processor — a single
    /// forward walk over the profile instead of a per-candidate scan of
    /// every booking.
    pub fn earliest_slot(&self, earliest: Time, dur: Dur, width: usize) -> Option<(Time, ProcSet)> {
        self.earliest_slot_within(earliest, Time::MAX, dur, width)
    }

    /// [`earliest_slot`](Self::earliest_slot) restricted to starts
    /// `<= latest_start` (used to place jobs before a deadline, e.g. batch
    /// boundaries or reservation windows).
    pub fn earliest_slot_within(
        &self,
        earliest: Time,
        latest_start: Time,
        dur: Dur,
        width: usize,
    ) -> Option<(Time, ProcSet)> {
        let cap_len = self.capacity.len();
        if width > cap_len {
            return None;
        }
        if width == 0 {
            return Some((earliest, ProcSet::new()));
        }
        // Invariant: a candidate start `t` is feasible only if the whole
        // window `[t, t + dur)` exists on the tick axis. Saturating the end
        // at `Time::MAX` would silently *shorten* windows near the top of
        // the axis, making an infeasible booking look feasible. Window ends
        // are monotone in the start, so once `earliest + dur` overflows, so
        // does every later candidate — the whole search is infeasible.
        let first_end = earliest.checked_add(dur)?;
        let mut busy = ProcSet::new();
        let mut free = ProcSet::new();
        // Scratch-threaded probe: `busy` backs the feasibility walk and
        // `free` the materialized window, so repeated candidates reuse the
        // same two buffers instead of building a set per probe.
        let mut check = |tl: &Timeline, t: Time, end: Time, busy: &mut ProcSet| {
            if tl.window_fits(t, end, width, busy) {
                tl.free_during_into(t, end, &mut free);
                Some((t, free.take_first(width)))
            } else {
                None
            }
        };
        // `earliest` itself is always a candidate — even past
        // `latest_start`, matching the historical candidate set.
        if let Some(hit) = check(self, earliest, first_end, &mut busy) {
            return Some(hit);
        }
        if latest_start <= earliest {
            return None;
        }
        // Walk the boundaries where the busy set *shrinks* — the only
        // instants the sliding window's free set can grow. Two prunes keep
        // the walk near-O(segments):
        //
        // * **count prefilter** — a window is only union-feasible if every
        //   segment it covers has `width` processors free by count alone;
        //   cached segment popcounts make this O(1) per segment, so the
        //   expensive union walk runs only on count-feasible candidates;
        // * **skip-ahead** — if the count check fails at a segment starting
        //   at `b`, every candidate `t' <= b` is infeasible too (its window
        //   would still cover the over-busy segment, since window ends only
        //   move forward), so the scan jumps straight past `b`.
        //
        // Only the count check may skip: a window that passes counts but
        // fails the union test (fragmented free sets) rules out nothing
        // beyond itself.
        let start_seg = self.profile.seg_at(earliest);
        let mut prev_busy = &start_seg.busy;
        let mut prev_count = start_seg.count;
        let mut skip_until: Option<Time> = None;
        for &(t, ref seg) in self.profile.between_inclusive(earliest, latest_start) {
            let shrinks = seg.count < prev_count || prev_busy.difference_len(&seg.busy) > 0;
            prev_busy = &seg.busy;
            prev_count = seg.count;
            if !shrinks || skip_until.is_some_and(|s| t <= s) {
                continue;
            }
            // Monotone overflow: the first candidate whose window end falls
            // off the tick axis ends the search — every later one does too.
            let end = t.checked_add(dur)?;
            let mut blocked_at = None;
            if cap_len - (seg.count as usize) < width {
                blocked_at = Some(t);
            } else if end > t {
                for &(u, ref s2) in self.profile.between(t, end) {
                    if cap_len - (s2.count as usize) < width {
                        blocked_at = Some(u);
                        break;
                    }
                }
            }
            match blocked_at {
                Some(b) => skip_until = Some(b),
                None => {
                    if let Some(hit) = check(self, t, end, &mut busy) {
                        return Some(hit);
                    }
                }
            }
        }
        None
    }

    /// Piecewise-constant free sets over `[from, to)`: the *holes* of the
    /// schedule. Segments with an empty free set are included (callers
    /// filter); consecutive segments with equal free sets are merged.
    pub fn free_profile(&self, from: Time, to: Time) -> Vec<(Time, Time, ProcSet)> {
        assert!(to >= from);
        let mut segments: Vec<(Time, Time, ProcSet)> = Vec::new();
        if from == to {
            return segments;
        }
        let mut cur_start = from;
        let mut cur_free = self.free_at(from);
        // Scratch free set: segments whose free set matches the running one
        // are folded in without materializing a fresh ProcSet each.
        let mut free = ProcSet::new();
        for &(t, ref seg) in self.profile.between(from, to) {
            free.clone_from(&self.capacity);
            free.subtract(&seg.busy);
            if free != cur_free {
                segments.push((cur_start, t, cur_free));
                cur_start = t;
                cur_free = free.clone();
            }
        }
        segments.push((cur_start, to, cur_free));
        segments
    }

    /// Fraction of the capacity×window rectangle `[from, to)` that is
    /// booked (all booking kinds). A range read over the profile: exact
    /// integer proc-tick accounting, one division at the end.
    pub fn utilization(&self, from: Time, to: Time) -> f64 {
        assert!(to > from, "empty utilization window");
        let cap = self.capacity.len();
        if cap == 0 {
            return 0.0;
        }
        let mut busy_ticks: u128 = 0;
        let mut seg_start = from;
        let mut seg_busy = self.profile.seg_at(from).count as usize;
        for &(t, ref seg) in self.profile.between(from, to) {
            busy_ticks += (t - seg_start).ticks() as u128 * seg_busy as u128;
            seg_start = t;
            seg_busy = seg.count as usize;
        }
        busy_ticks += (to - seg_start).ticks() as u128 * seg_busy as u128;
        let window = (to - from).ticks() as f64;
        busy_ticks as f64 / (window * cap as f64)
    }

    /// Latest end over all bookings (the timeline's makespan), or `from` if
    /// no booking exists. Scans the booking table: zero-occupancy bookings
    /// count here even though they never touch the profile.
    pub fn horizon(&self, from: Time) -> Time {
        self.bookings
            .iter_unordered()
            .map(|(_, b)| b.end)
            .fold(from, Time::max)
    }

    /// Structural invariants of the profile (test support): coalesced,
    /// anchored at zero, and equal to a from-scratch recomputation over the
    /// booking table.
    #[cfg(test)]
    fn assert_profile_consistent(&self) {
        assert_eq!(self.profile.segs[0].0, Time::ZERO);
        assert!(
            self.profile.segs.windows(2).all(|w| w[0].0 < w[1].0),
            "segment starts must be strictly sorted"
        );
        let mut prev: Option<&Seg> = None;
        for (_, seg) in &self.profile.segs {
            assert!(seg.busy.is_subset(&self.capacity));
            assert_eq!(seg.busy.len(), seg.count as usize, "cached count drifted");
            assert_ne!(prev, Some(seg), "adjacent segments must differ");
            prev = Some(seg);
        }
        let mut fresh = Profile::new();
        for (_, b) in self.bookings.iter_unordered() {
            fresh.add(b.start, b.end, &b.procs);
        }
        assert_eq!(
            fresh.segs, self.profile.segs,
            "profile must equal a from-scratch rebuild"
        );
    }
}

#[cfg(test)]
mod naive {
    //! The pre-profile `Timeline`, retained verbatim as the reference
    //! oracle: every query is a full linear scan over the booking table.
    //! The differential proptests below drive it in lockstep with the
    //! profile-based implementation and compare every answer.

    use std::collections::BTreeMap;

    use super::*;

    pub struct NaiveTimeline {
        capacity: ProcSet,
        bookings: BTreeMap<BookingId, Booking>,
        next_id: u64,
    }

    impl NaiveTimeline {
        pub fn with_procs(m: usize) -> Self {
            NaiveTimeline {
                capacity: ProcSet::full(m),
                bookings: BTreeMap::new(),
                next_id: 0,
            }
        }

        pub fn n_bookings(&self) -> usize {
            self.bookings.len()
        }

        pub fn try_book(
            &mut self,
            start: Time,
            end: Time,
            procs: ProcSet,
            kind: BookingKind,
        ) -> Result<BookingId, BookError> {
            if end < start {
                return Err(BookError::NegativeInterval);
            }
            if !procs.is_subset(&self.capacity) {
                return Err(BookError::OutsideCapacity);
            }
            if start < end {
                for (&id, b) in &self.bookings {
                    if b.overlaps(start, end) && !b.procs.is_disjoint(&procs) {
                        return Err(BookError::Conflict(id));
                    }
                }
            }
            let id = BookingId(self.next_id);
            self.next_id += 1;
            self.bookings.insert(
                id,
                Booking {
                    start,
                    end,
                    procs,
                    kind,
                },
            );
            Ok(id)
        }

        pub fn remove(&mut self, id: BookingId) -> Option<Booking> {
            self.bookings.remove(&id)
        }

        pub fn truncate(&mut self, id: BookingId, at: Time) -> Option<Time> {
            let b = self.bookings.get_mut(&id)?;
            if at <= b.start {
                let b = self.bookings.remove(&id).expect("present");
                return Some(b.start);
            }
            if at < b.end {
                b.end = at;
            }
            Some(b.end)
        }

        pub fn gc(&mut self, now: Time) {
            self.bookings.retain(|_, b| b.end > now);
        }

        pub fn free_at(&self, t: Time) -> ProcSet {
            let mut free = self.capacity.clone();
            for b in self.bookings.values() {
                if b.start <= t && t < b.end {
                    free.subtract(&b.procs);
                }
            }
            free
        }

        pub fn free_during(&self, start: Time, end: Time) -> ProcSet {
            if end <= start {
                return self.free_at(start);
            }
            let mut free = self.capacity.clone();
            for b in self.bookings.values() {
                if b.overlaps(start, end) {
                    free.subtract(&b.procs);
                }
            }
            free
        }

        pub fn earliest_slot_within(
            &self,
            earliest: Time,
            latest_start: Time,
            dur: Dur,
            width: usize,
        ) -> Option<(Time, ProcSet)> {
            if width > self.capacity.len() {
                return None;
            }
            if width == 0 {
                return Some((earliest, ProcSet::new()));
            }
            let mut candidates: Vec<Time> = self
                .bookings
                .values()
                .map(|b| b.end)
                .filter(|&e| e > earliest && e <= latest_start)
                .collect();
            candidates.push(earliest);
            candidates.sort_unstable();
            candidates.dedup();
            for t in candidates {
                let free = self.free_during(t, t.saturating_add(dur));
                if free.len() >= width {
                    return Some((t, free.take_first(width)));
                }
            }
            None
        }

        pub fn free_profile(&self, from: Time, to: Time) -> Vec<(Time, Time, ProcSet)> {
            assert!(to >= from);
            let mut points: Vec<Time> = vec![from, to];
            for b in self.bookings.values() {
                if b.start > from && b.start < to {
                    points.push(b.start);
                }
                if b.end > from && b.end < to {
                    points.push(b.end);
                }
            }
            points.sort_unstable();
            points.dedup();
            let mut segments: Vec<(Time, Time, ProcSet)> = Vec::new();
            for w in points.windows(2) {
                let (s, e) = (w[0], w[1]);
                let free = self.free_at(s);
                match segments.last_mut() {
                    Some(last) if last.2 == free && last.1 == s => last.1 = e,
                    _ => segments.push((s, e, free)),
                }
            }
            segments
        }

        pub fn utilization(&self, from: Time, to: Time) -> f64 {
            assert!(to > from, "empty utilization window");
            let window = (to - from).ticks() as f64;
            let cap = self.capacity.len() as f64;
            if cap == 0.0 {
                return 0.0;
            }
            let busy: f64 = self
                .bookings
                .values()
                .map(|b| {
                    let s = b.start.max(from);
                    let e = b.end.min(to);
                    if e > s {
                        (e - s).ticks() as f64 * b.procs.len() as f64
                    } else {
                        0.0
                    }
                })
                .sum();
            busy / (window * cap)
        }

        pub fn horizon(&self, from: Time) -> Time {
            self.bookings.values().map(|b| b.end).fold(from, Time::max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }
    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn book_and_free() {
        let mut tl = Timeline::with_procs(4);
        let id = tl.book(t(10), t(20), ProcSet::range(0, 2), BookingKind::Job);
        assert_eq!(tl.free_at(t(5)), ProcSet::full(4));
        assert_eq!(tl.free_at(t(10)), ProcSet::range(2, 4));
        assert_eq!(tl.free_at(t(19)), ProcSet::range(2, 4));
        assert_eq!(tl.free_at(t(20)), ProcSet::full(4), "end is exclusive");
        tl.remove(id);
        assert_eq!(tl.free_at(t(15)), ProcSet::full(4));
        tl.assert_profile_consistent();
    }

    #[test]
    fn conflicts_rejected() {
        let mut tl = Timeline::with_procs(4);
        tl.book(t(0), t(10), ProcSet::range(0, 2), BookingKind::Job);
        let err = tl
            .try_book(t(5), t(15), ProcSet::range(1, 3), BookingKind::Job)
            .unwrap_err();
        assert!(matches!(err, BookError::Conflict(_)));
        // Same procs, adjacent in time: fine (end exclusive).
        tl.try_book(t(10), t(15), ProcSet::range(0, 2), BookingKind::Job)
            .unwrap();
        // Outside capacity.
        let err = tl
            .try_book(t(0), t(1), ProcSet::range(3, 5), BookingKind::Job)
            .unwrap_err();
        assert_eq!(err, BookError::OutsideCapacity);
        // Negative interval.
        let err = tl
            .try_book(t(5), t(4), ProcSet::new(), BookingKind::Job)
            .unwrap_err();
        assert_eq!(err, BookError::NegativeInterval);
        tl.assert_profile_consistent();
    }

    #[test]
    fn zero_length_bookings_occupy_nothing() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(5), t(5), ProcSet::range(0, 2), BookingKind::Job);
        // The same procs can be booked over that instant.
        tl.book(t(0), t(10), ProcSet::range(0, 2), BookingKind::Job);
        assert_eq!(tl.n_bookings(), 2);
        tl.assert_profile_consistent();
    }

    #[test]
    fn free_during_window() {
        let mut tl = Timeline::with_procs(3);
        tl.book(t(10), t(20), ProcSet::range(0, 1), BookingKind::Job);
        tl.book(t(30), t(40), ProcSet::range(1, 2), BookingKind::Job);
        assert_eq!(tl.free_during(t(0), t(10)), ProcSet::full(3));
        assert_eq!(tl.free_during(t(5), t(15)), ProcSet::range(1, 3));
        assert_eq!(tl.free_during(t(15), t(35)), ProcSet::from_indices([2]));
        assert_eq!(tl.free_during(t(20), t(30)), ProcSet::full(3));
        // Degenerate window = instant.
        assert_eq!(tl.free_during(t(15), t(15)), ProcSet::range(1, 3));
    }

    #[test]
    fn earliest_slot_waits_for_ends() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(0), t(100), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(0), t(50), ProcSet::from_indices([1]), BookingKind::Job);
        // Width 1 becomes free at 50 (proc 1).
        let (start, procs) = tl.earliest_slot(t(0), d(10), 1).unwrap();
        assert_eq!(start, t(50));
        assert_eq!(procs, ProcSet::from_indices([1]));
        // Width 2 requires waiting until 100.
        let (start, procs) = tl.earliest_slot(t(0), d(10), 2).unwrap();
        assert_eq!(start, t(100));
        assert_eq!(procs, ProcSet::full(2));
        // Impossible width.
        assert_eq!(tl.earliest_slot(t(0), d(1), 3), None);
    }

    #[test]
    fn earliest_slot_fits_into_hole() {
        let mut tl = Timeline::with_procs(2);
        // Proc 0 busy [0,10) and [20,30): hole [10,20).
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(20), t(30), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(0), t(30), ProcSet::from_indices([1]), BookingKind::Job);
        // A 10-long width-1 job fits exactly in the hole.
        let (start, procs) = tl.earliest_slot(t(0), d(10), 1).unwrap();
        assert_eq!((start, procs), (t(10), ProcSet::from_indices([0])));
        // An 11-long job does not; it must wait until 30.
        let (start, _) = tl.earliest_slot(t(0), d(11), 1).unwrap();
        assert_eq!(start, t(30));
    }

    #[test]
    fn earliest_slot_respects_release_and_deadline() {
        let mut tl = Timeline::with_procs(1);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let (start, _) = tl.earliest_slot(t(3), d(5), 1).unwrap();
        assert_eq!(start, t(3), "release honoured when free");
        // Latest start 15 excludes the post-booking candidate (20).
        assert_eq!(tl.earliest_slot_within(t(12), t(15), d(5), 1), None);
        let got = tl.earliest_slot_within(t(12), t(25), d(5), 1).unwrap();
        assert_eq!(got.0, t(20));
    }

    #[test]
    fn earliest_slot_rejects_windows_past_the_tick_axis() {
        // Regression: window ends were computed with `saturating_add`,
        // silently shortening windows near `Time::MAX` so an infeasible
        // booking could look feasible. A window that would end past
        // `Time::MAX` is infeasible; one ending exactly at `Time::MAX`
        // still fits.
        let tl = Timeline::with_procs(2);
        // `earliest + dur` overflows: no slot, even on an empty timeline.
        assert_eq!(tl.earliest_slot(t(u64::MAX - 10), d(100), 1), None);
        assert_eq!(tl.earliest_slot(Time::MAX, d(1), 1), None);
        // The exact boundary is still feasible.
        let (start, _) = tl.earliest_slot(t(u64::MAX - 100), d(100), 1).unwrap();
        assert_eq!(start, t(u64::MAX - 100));
        // Zero-width requests keep their trivial answer.
        assert_eq!(
            tl.earliest_slot(t(u64::MAX - 10), d(100), 0).map(|s| s.0),
            Some(t(u64::MAX - 10))
        );
    }

    #[test]
    fn sweep_walk_stops_at_overflowing_candidates() {
        // The walk variant of the same regression: the candidate produced
        // by a busy-decrease boundary near `Time::MAX` must not be reported
        // feasible via a silently truncated window.
        let mut tl = Timeline::with_procs(1);
        tl.book(
            t(10),
            t(u64::MAX - 50),
            ProcSet::from_indices([0]),
            BookingKind::Job,
        );
        // Candidate 0 fails (booking in the way); the only busy-decrease
        // boundary is MAX-50, whose window [MAX-50, MAX-50+100) overflows.
        assert_eq!(tl.earliest_slot(t(0), d(100), 1), None);
        // A duration that fits the tail exactly is still found there.
        let (start, _) = tl.earliest_slot(t(0), d(50), 1).unwrap();
        assert_eq!(start, t(u64::MAX - 50));
    }

    #[test]
    fn latest_start_cutoff_is_honoured_by_the_sweep() {
        // Regression for the sweep walk: feasible busy-decrease boundaries
        // beyond `latest_start` must not be visited, boundaries exactly at
        // the cutoff must, and an infeasible `earliest` stays the only
        // candidate when the cutoff precedes it.
        let mut tl = Timeline::with_procs(2);
        tl.book(t(0), t(30), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(0), t(50), ProcSet::from_indices([1]), BookingKind::Job);
        // Width 2 frees at 50; cutoff 49 rejects, cutoff exactly 50 accepts.
        assert_eq!(tl.earliest_slot_within(t(0), t(49), d(5), 2), None);
        assert_eq!(
            tl.earliest_slot_within(t(0), t(50), d(5), 2).map(|s| s.0),
            Some(t(50))
        );
        // Width 1 frees at 30 (an interior boundary <= cutoff).
        assert_eq!(
            tl.earliest_slot_within(t(0), t(49), d(5), 1).map(|s| s.0),
            Some(t(30))
        );
        // Cutoff before `earliest`: the historical candidate set still
        // tests `earliest` itself (and nothing else).
        assert_eq!(
            tl.earliest_slot_within(t(60), t(10), d(5), 2).map(|s| s.0),
            Some(t(60))
        );
        assert_eq!(tl.earliest_slot_within(t(40), t(10), d(5), 2), None);
    }

    #[test]
    fn zero_width_slot_is_immediate() {
        let tl = Timeline::with_procs(1);
        assert_eq!(
            tl.earliest_slot(t(7), d(100), 0),
            Some((t(7), ProcSet::new()))
        );
    }

    #[test]
    fn truncate_kills_tail() {
        let mut tl = Timeline::with_procs(1);
        let id = tl.book(t(0), t(100), ProcSet::full(1), BookingKind::BestEffort);
        assert_eq!(tl.truncate(id, t(40)), Some(t(40)));
        assert_eq!(tl.booking(id).unwrap().end, t(40));
        assert_eq!(tl.free_at(t(50)), ProcSet::full(1));
        // Truncating before start removes (and reports the start).
        let id2 = tl.book(t(50), t(60), ProcSet::full(1), BookingKind::BestEffort);
        assert_eq!(tl.truncate(id2, t(50)), Some(t(50)));
        assert!(tl.booking(id2).is_none());
        assert_eq!(tl.n_bookings(), 1);
        // Truncating past the end is a no-op.
        assert_eq!(tl.truncate(id, t(1000)), Some(t(40)));
        // Unknown id.
        assert_eq!(tl.truncate(id2, t(55)), None);
        tl.assert_profile_consistent();
    }

    #[test]
    fn free_profile_enumerates_holes() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let prof = tl.free_profile(t(0), t(30));
        assert_eq!(
            prof,
            vec![
                (t(0), t(10), ProcSet::full(2)),
                (t(10), t(20), ProcSet::from_indices([1])),
                (t(20), t(30), ProcSet::full(2)),
            ]
        );
        assert!(tl.free_profile(t(5), t(5)).is_empty());
    }

    #[test]
    fn free_profile_merges_equal_segments() {
        let mut tl = Timeline::with_procs(2);
        // Two back-to-back bookings on the same proc: free set identical
        // across the boundary.
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let prof = tl.free_profile(t(0), t(20));
        assert_eq!(prof, vec![(t(0), t(20), ProcSet::from_indices([1]))]);
        tl.assert_profile_consistent();
    }

    #[test]
    fn utilization_accounting() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        // 10 proc-ticks busy out of 2×20 = 40.
        assert!((tl.utilization(t(0), t(20)) - 0.25).abs() < 1e-12);
        // Clipped to the window.
        assert!((tl.utilization(t(5), t(10)) - 0.5).abs() < 1e-12);
        assert_eq!(tl.utilization(t(10), t(20)), 0.0);
    }

    #[test]
    fn gc_drops_past_bookings() {
        let mut tl = Timeline::with_procs(1);
        tl.book(t(0), t(10), ProcSet::full(1), BookingKind::Job);
        let keep = tl.book(t(5), t(30), ProcSet::new(), BookingKind::Job);
        tl.gc(t(10));
        assert_eq!(tl.n_bookings(), 1);
        assert!(tl.booking(keep).is_some());
        tl.assert_profile_consistent();
    }

    #[test]
    fn horizon_is_latest_end() {
        let mut tl = Timeline::with_procs(1);
        assert_eq!(tl.horizon(t(5)), t(5));
        tl.book(t(0), t(42), ProcSet::full(1), BookingKind::Job);
        assert_eq!(tl.horizon(t(5)), t(42));
    }

    #[test]
    fn profile_stays_coalesced_and_bounded() {
        let mut tl = Timeline::with_procs(8);
        let mut ids = Vec::new();
        for i in 0..50u64 {
            let p0 = (i % 7) as usize;
            let id = tl.book(
                t(i * 3),
                t(i * 3 + 10),
                ProcSet::range(p0, p0 + 1),
                BookingKind::Job,
            );
            ids.push(id);
            assert!(
                tl.n_segments() <= 2 * tl.n_bookings() + 1,
                "{} segments for {} bookings",
                tl.n_segments(),
                tl.n_bookings()
            );
        }
        tl.assert_profile_consistent();
        for id in ids.iter().step_by(2) {
            tl.remove(*id);
        }
        tl.assert_profile_consistent();
        tl.gc(t(100));
        tl.assert_profile_consistent();
        for id in ids {
            tl.truncate(id, t(80));
        }
        tl.assert_profile_consistent();
        assert!(tl.n_segments() <= 2 * tl.n_bookings() + 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::naive::NaiveTimeline;
    use super::*;
    use proptest::prelude::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    proptest! {
        /// Whatever earliest_slot returns can actually be booked, and no
        /// earlier candidate with the same parameters is feasible at the
        /// booking-end granularity.
        #[test]
        fn slot_results_are_bookable(
            intervals in prop::collection::vec((0u64..200, 1u64..60, 0usize..6, 1usize..4), 0..12),
            earliest in 0u64..100,
            dur in 1u64..50,
            width in 1usize..6,
        ) {
            let m = 6;
            let mut tl = Timeline::with_procs(m);
            for (s, len, p0, w) in intervals {
                let hi = (p0 + w).min(m);
                if p0 >= hi { continue; }
                let procs = ProcSet::range(p0, hi);
                // Only keep bookings that do not conflict (building a valid
                // schedule incrementally).
                let _ = tl.try_book(t(s), t(s + len), procs, BookingKind::Job);
            }
            if let Some((start, procs)) = tl.earliest_slot(t(earliest), Dur::from_ticks(dur), width) {
                prop_assert!(start >= t(earliest));
                prop_assert_eq!(procs.len(), width);
                // Booking the returned slot must succeed.
                let mut tl2 = tl.clone();
                prop_assert!(tl2.try_book(start, start + Dur::from_ticks(dur), procs, BookingKind::Job).is_ok());
                // Starting at `earliest` itself must fail unless that is the answer.
                if start > t(earliest) {
                    let free = tl.free_during(t(earliest), t(earliest) + Dur::from_ticks(dur));
                    prop_assert!(free.len() < width);
                }
            } else {
                prop_assert!(width > m);
            }
        }

        /// free_profile segments tile the window and agree with free_at.
        #[test]
        fn profile_tiles_window(
            intervals in prop::collection::vec((0u64..100, 1u64..40, 0usize..4, 1usize..3), 0..8),
        ) {
            let m = 4;
            let mut tl = Timeline::with_procs(m);
            for (s, len, p0, w) in intervals {
                let hi = (p0 + w).min(m);
                if p0 >= hi { continue; }
                let _ = tl.try_book(t(s), t(s + len), ProcSet::range(p0, hi), BookingKind::Job);
            }
            let prof = tl.free_profile(t(0), t(150));
            // Tiling.
            prop_assert_eq!(prof.first().map(|s| s.0), Some(t(0)));
            prop_assert_eq!(prof.last().map(|s| s.1), Some(t(150)));
            for w in prof.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0, "segments contiguous");
            }
            // Agreement with free_at at segment starts and midpoints.
            for (s, e, free) in &prof {
                prop_assert_eq!(&tl.free_at(*s), free);
                let mid = Time::from_ticks((s.ticks() + e.ticks()) / 2);
                prop_assert_eq!(&tl.free_at(mid), free);
            }
        }
    }

    /// One mutation of the differential interleaving.
    #[derive(Clone, Debug)]
    enum Op {
        Book {
            start: u64,
            len: u64,
            p0: usize,
            w: usize,
        },
        Remove {
            pick: usize,
        },
        Truncate {
            pick: usize,
            at: u64,
        },
        Gc {
            at: u64,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Books dominate (selectors 0–3) so timelines actually fill up;
        // len 0 and width 0 exercise the degenerate paths.
        (
            0usize..7,
            (0u64..120, 0u64..40, 0usize..6, 0usize..4),
            0usize..32,
            0u64..160,
        )
            .prop_map(|(sel, (start, len, p0, w), pick, at)| match sel {
                0..=3 => Op::Book { start, len, p0, w },
                4 => Op::Remove { pick },
                5 => Op::Truncate { pick, at },
                _ => Op::Gc { at },
            })
    }

    proptest! {
        /// The profile-based timeline agrees with the naive full-scan
        /// oracle on **every** query API under random interleavings of
        /// book / remove / truncate / gc — including degenerate bookings,
        /// rejected bookings (same error, same conflict id) and queries
        /// with inverted or empty windows.
        #[test]
        fn differential_vs_naive_oracle(
            ops in prop::collection::vec(op_strategy(), 1..40),
            probes in prop::collection::vec((0u64..200, 0u64..60), 8),
            slots in prop::collection::vec((0u64..150, 0u64..200, 0u64..50, 0usize..8), 8),
        ) {
            let m = 6;
            let mut fast = Timeline::with_procs(m);
            let mut slow = NaiveTimeline::with_procs(m);
            // Arena ids pack (seq, slot) while the oracle mints bare
            // sequence numbers; both stamp exactly one new seq per
            // successful book, so ids correspond through the seq half.
            let same_id = |f: BookingId, s: BookingId| f.seq() as u64 == s.0;
            let mut issued: Vec<(BookingId, BookingId)> = Vec::new();
            for op in ops {
                match op {
                    Op::Book { start, len, p0, w } => {
                        let procs = ProcSet::range(p0, (p0 + w).min(m));
                        let a = fast.try_book(t(start), t(start + len), procs.clone(), BookingKind::Job);
                        let b = slow.try_book(t(start), t(start + len), procs, BookingKind::Job);
                        match (a, b) {
                            (Ok(fa), Ok(sb)) => {
                                prop_assert!(same_id(fa, sb), "booked ids diverged: {:?} vs {:?}", fa, sb);
                                issued.push((fa, sb));
                            }
                            (Err(BookError::Conflict(fa)), Err(BookError::Conflict(sb))) => {
                                prop_assert!(same_id(fa, sb), "conflict ids diverged: {:?} vs {:?}", fa, sb);
                            }
                            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "try_book errors diverged"),
                            (a, b) => prop_assert!(false, "try_book diverged: {:?} vs {:?}", a, b),
                        }
                    }
                    Op::Remove { pick } => {
                        if issued.is_empty() { continue; }
                        let (fid, sid) = issued[pick % issued.len()];
                        prop_assert_eq!(fast.remove(fid), slow.remove(sid), "remove diverged");
                    }
                    Op::Truncate { pick, at } => {
                        if issued.is_empty() { continue; }
                        let (fid, sid) = issued[pick % issued.len()];
                        prop_assert_eq!(fast.truncate(fid, t(at)), slow.truncate(sid, t(at)), "truncate diverged");
                    }
                    Op::Gc { at } => {
                        fast.gc(t(at));
                        slow.gc(t(at));
                    }
                }
                prop_assert_eq!(fast.n_bookings(), slow.n_bookings());
            }
            fast.assert_profile_consistent();
            // Query battery over the final state: all four query APIs plus
            // the accounting reads.
            for &(p, len) in &probes {
                prop_assert_eq!(fast.free_at(t(p)), slow.free_at(t(p)), "free_at({p})");
                prop_assert_eq!(
                    fast.free_during(t(p), t(p + len)),
                    slow.free_during(t(p), t(p + len)),
                    "free_during({p}, {})", p + len
                );
                // Inverted window degenerates to free_at on both.
                prop_assert_eq!(
                    fast.free_during(t(p + len), t(p)),
                    slow.free_during(t(p + len), t(p)),
                    "inverted free_during"
                );
                prop_assert_eq!(
                    fast.free_profile(t(p), t(p + len)),
                    slow.free_profile(t(p), t(p + len)),
                    "free_profile({p}, {})", p + len
                );
                if len > 0 {
                    let (a, b) = (
                        fast.utilization(t(p), t(p + len)),
                        slow.utilization(t(p), t(p + len)),
                    );
                    prop_assert!((a - b).abs() < 1e-9, "utilization {a} vs {b}");
                }
                prop_assert_eq!(fast.horizon(t(p)), slow.horizon(t(p)));
            }
            for &(earliest, latest, dur, width) in &slots {
                let a = fast.earliest_slot_within(t(earliest), t(latest), Dur::from_ticks(dur), width);
                let b = slow.earliest_slot_within(t(earliest), t(latest), Dur::from_ticks(dur), width);
                prop_assert_eq!(
                    a, b,
                    "earliest_slot_within({earliest}, {latest}, {dur}, {width})"
                );
                let a = fast.earliest_slot(t(earliest), Dur::from_ticks(dur), width);
                let b = slow.earliest_slot_within(t(earliest), Time::MAX, Dur::from_ticks(dur), width);
                prop_assert_eq!(a, b, "earliest_slot({earliest}, {dur}, {width})");
            }
        }
    }
}
