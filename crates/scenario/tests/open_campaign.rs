//! Open-arrival campaign end-to-end: a steady-state spec drives the open
//! DES executor through the declarative layer, per-class response
//! distributions land in the aggregate CSV, and the cell cache makes a
//! warm rerun byte-identical — the same contract the finite campaigns
//! keep in `campaign_cache.rs`.

use std::fs;
use std::path::{Path, PathBuf};

use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec};

/// A trimmed heavy-traffic spec: small completion targets so the drive is
/// cheap under the debug profile, but the same shape as the checked-in
/// `examples/heavy_traffic_campaign.json`.
const SPEC: &str = r#"{
    "name": "open-smoke",
    "policies": ["backfill-easy"],
    "executors": ["des-online"],
    "platforms": [{"name": "m32", "m": 32}],
    "workloads": [
        {"name": "rho-0.70", "source": {"Open": {
            "stream": {
                "rho": 0.7,
                "arrival": "Poisson",
                "classes": [
                    {"name": "narrow", "mix": 3.0,
                     "width": {"Fixed": 1.0}, "service_s": {"Exp": 120.0}},
                    {"name": "wide", "mix": 1.0,
                     "width": {"Uniform": [2.0, 8.0]}, "service_s": {"Exp": 300.0}}
                ]
            },
            "stop_completions": 1500,
            "batches": 10
        }}},
        {"name": "rho-0.90", "source": {"Open": {
            "stream": {
                "rho": 0.9,
                "arrival": "Poisson",
                "classes": [
                    {"name": "narrow", "mix": 3.0,
                     "width": {"Fixed": 1.0}, "service_s": {"Exp": 120.0}},
                    {"name": "wide", "mix": 1.0,
                     "width": {"Uniform": [2.0, 8.0]}, "service_s": {"Exp": 300.0}}
                ]
            },
            "stop_completions": 1500,
            "batches": 10
        }}}
    ],
    "replication": {"base_seed": 77, "replications": 2, "derivation": "splitmix"},
    "ctx": {"release_mode": "online", "estimate_factor": 1.0}
}"#;

fn spec() -> CampaignSpec {
    let spec: CampaignSpec = serde_json::from_str(SPEC).expect("spec parses");
    spec.validate().expect("spec valid");
    spec
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-open-campaign-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(cache: Option<PathBuf>) -> CampaignOptions {
    CampaignOptions {
        cache_dir: cache,
        threads: 0,
        base_dir: None,
    }
}

#[test]
fn open_campaign_emits_per_class_rows_and_warm_rerun_is_byte_identical() {
    let spec = spec();
    let cache = temp_dir("warm");
    let cold = run_campaign(&spec, &opts(Some(cache.clone()))).expect("cold run");
    assert_eq!(cold.total, spec.cell_count());
    assert_eq!(cold.cache_hits, 0, "cold cache serves nothing");

    // Response distributions are first-class aggregate output: the header
    // carries the per-class columns and every group emits one row per job
    // class, keyed by the class name from the stream spec.
    let mut lines = cold.aggregate_csv.lines();
    let header = lines.next().expect("header");
    for col in [
        "class",
        "resp_n",
        "resp_mean_s",
        "resp_ci95_s",
        "resp_p50_s",
        "resp_p95_s",
        "resp_p99_s",
        "resp_max_slowdown",
    ] {
        assert!(header.split(',').any(|c| c == col), "missing column {col}");
    }
    let rows: Vec<&str> = lines.collect();
    // 1 policy × 2 workloads × 2 classes = 4 rows.
    assert_eq!(rows.len(), 4, "one row per (group, class): {rows:?}");
    for class in ["narrow", "wide"] {
        assert_eq!(
            rows.iter()
                .filter(|r| r.split(',').any(|c| c == class))
                .count(),
            2,
            "one `{class}` row per group"
        );
    }
    // The response sample counts are post-warmup completions: with the
    // default 20% cut, the classes together keep 80% of the target.
    let n_col = header.split(',').position(|c| c == "resp_n").expect("col");
    let per_workload: u64 = rows
        .iter()
        .take(2)
        .map(|r| r.split(',').nth(n_col).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(per_workload, 1500 * 2 * 8 / 10, "2 reps × 80% of target");

    // Warm rerun: every cell from the cache, byte-identical CSVs.
    let warm = run_campaign(&spec, &opts(Some(cache.clone()))).expect("warm run");
    assert_eq!(warm.cache_hits, warm.total, "every cell cached");
    assert_eq!(cold.raw_csv, warm.raw_csv, "raw CSV byte-identical");
    assert_eq!(cold.aggregate_csv, warm.aggregate_csv, "agg byte-identical");

    // The cache is an accelerator, not an input: an uncached run agrees.
    let uncached = run_campaign(&spec, &opts(None)).expect("uncached run");
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(cold.raw_csv, uncached.raw_csv);
    assert_eq!(cold.aggregate_csv, uncached.aggregate_csv);
    fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn checked_in_open_specs_parse_and_validate() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    for (file, cells) in [
        ("heavy_traffic_campaign.json", 12),
        ("open_1m_campaign.json", 1),
    ] {
        let text = fs::read_to_string(dir.join(file)).expect("checked-in spec");
        let spec: CampaignSpec = serde_json::from_str(&text).expect("parses");
        spec.validate().expect("valid");
        assert_eq!(spec.cell_count(), cells, "{file}");
    }
}
