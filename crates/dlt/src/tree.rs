//! One-round distribution on tree networks — Cheng & Robertazzi's original
//! setting (ref \[4\] of the paper: "Distributed computation for a tree
//! network with communication delays").
//!
//! The classical solution collapses the tree bottom-up: a subtree behaves
//! like a single *equivalent worker* whose speed is the throughput of the
//! optimal one-round distribution among its root CPU and its (already
//! collapsed) children. With latency-free links the one-round makespan is
//! proportional to the load, so the equivalent speed is well defined:
//! `s_eq = 1 / makespan(star(1 unit))`.
//!
//! Latencies make the closed form affine rather than linear; this module
//! implements the latency-free collapse (the classical result) and
//! documents the restriction — latency-aware trees are handled by the
//! steady-state model in [`crate::steady`], which the campaigns of §5.2
//! actually need.

use crate::model::Worker;
use crate::star::{star_single_round, WorkerOrder};
use crate::steady::TreeNode;

/// Per-node chunk sizes mirroring the tree shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeAlphas {
    /// Load computed by this node's own CPU.
    pub own: f64,
    /// Loads of the subtrees, in child order.
    pub children: Vec<TreeAlphas>,
}

impl TreeAlphas {
    /// Total load in this subtree.
    pub fn total(&self) -> f64 {
        self.own + self.children.iter().map(|c| c.total()).sum::<f64>()
    }
}

/// Equivalent one-round speed of a subtree (latency-free links assumed:
/// panics if any latency is non-zero).
pub fn equivalent_speed(node: &TreeNode) -> f64 {
    assert!(
        node.worker.latency == 0.0,
        "one-round tree collapse requires latency-free links (see module docs)"
    );
    if node.children.is_empty() {
        return node.worker.speed;
    }
    let workers = collapse_children(node);
    // Equal-finish star on one unit of load: speed = 1 / makespan.
    1.0 / star_single_round(1.0, &workers, WorkerOrder::ByBandwidth).makespan
}

/// The star the node's internal distribution solves: its own CPU (no
/// communication — modelled as an effectively infinite link) plus each
/// child as its equivalent worker behind the child's uplink.
fn collapse_children(node: &TreeNode) -> Vec<Worker> {
    let mut workers = vec![Worker::new(node.worker.speed, f64::MAX / 4.0, 0.0)];
    for child in &node.children {
        workers.push(Worker::new(
            equivalent_speed(child),
            child.worker.bandwidth,
            0.0,
        ));
    }
    workers
}

/// Optimal one-round distribution of `w` units from the root of `tree`
/// (the root's own `speed` participates; its `bandwidth` is unused).
/// Returns the makespan and the per-node loads.
pub fn tree_single_round(w: f64, tree: &TreeNode) -> (f64, TreeAlphas) {
    assert!(w > 0.0);
    let s_eq = equivalent_speed(tree);
    let makespan = w / s_eq;
    (makespan, split(tree, w))
}

/// Recursively distribute `w` within the subtree according to the
/// equal-finish star solutions.
fn split(node: &TreeNode, w: f64) -> TreeAlphas {
    if node.children.is_empty() {
        return TreeAlphas {
            own: w,
            children: Vec::new(),
        };
    }
    let workers = collapse_children(node);
    let plan = star_single_round(w, &workers, WorkerOrder::ByBandwidth);
    TreeAlphas {
        own: plan.alphas[0],
        children: node
            .children
            .iter()
            .enumerate()
            .map(|(i, child)| split(child, plan.alphas[i + 1]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(speed: f64, bw: f64) -> TreeNode {
        TreeNode::leaf(Worker::new(speed, bw, 0.0))
    }

    #[test]
    fn leaf_speed_is_its_own() {
        assert_eq!(equivalent_speed(&leaf(2.5, 1.0)), 2.5);
    }

    #[test]
    fn depth_one_matches_star_plus_master() {
        // Root with CPU speed 1 and two children: the collapse of depth one
        // is exactly the star including the master CPU.
        let tree = TreeNode {
            worker: Worker::new(1.0, 1e9, 0.0),
            children: vec![leaf(2.0, 4.0), leaf(1.0, 2.0)],
        };
        let (mk, alphas) = tree_single_round(100.0, &tree);
        assert!((alphas.total() - 100.0).abs() < 1e-6);
        // Everything must finish simultaneously: own/root speed 1 computes
        // alpha_own in mk seconds.
        assert!((alphas.own / 1.0 - mk).abs() < 1e-6);
        // Equivalent speed below the no-communication ceiling.
        let s = equivalent_speed(&tree);
        assert!(s < 4.0 && s > 1.0, "s_eq {s}");
    }

    #[test]
    fn chain_is_limited_by_the_thin_uplink() {
        // root(0 cpu) -> a(speed 1, uplink 10) -> b(speed 9, uplink 0.5).
        // b's horsepower hides behind a 0.5 units/s link: the equivalent
        // speed of a's subtree stays below 1 + something small.
        let tree = TreeNode {
            worker: Worker::new(1e-9, 1e9, 0.0),
            children: vec![TreeNode {
                worker: Worker::new(1.0, 10.0, 0.0),
                children: vec![leaf(9.0, 0.5)],
            }],
        };
        let s = equivalent_speed(&tree);
        assert!(s < 1.6, "thin uplink must cap the subtree: {s}");
        // Widening the thin link unleashes the subtree.
        let fat = TreeNode {
            worker: Worker::new(1e-9, 1e9, 0.0),
            children: vec![TreeNode {
                worker: Worker::new(1.0, 10.0, 0.0),
                children: vec![leaf(9.0, 50.0)],
            }],
        };
        assert!(equivalent_speed(&fat) > 2.0 * s);
    }

    #[test]
    fn alphas_conserve_load_recursively() {
        let tree = TreeNode {
            worker: Worker::new(0.5, 1e9, 0.0),
            children: vec![
                TreeNode {
                    worker: Worker::new(1.0, 3.0, 0.0),
                    children: vec![leaf(2.0, 1.0), leaf(0.5, 2.0)],
                },
                leaf(1.5, 4.0),
            ],
        };
        let (mk, alphas) = tree_single_round(500.0, &tree);
        assert!((alphas.total() - 500.0).abs() < 1e-6);
        assert!(mk > 0.0);
        // Child subtree totals match what the root-level star granted.
        assert_eq!(alphas.children.len(), 2);
        for c in &alphas.children {
            assert!(c.total() > 0.0);
        }
    }

    #[test]
    fn equivalent_speed_bounded_by_total_cpu() {
        let tree = TreeNode {
            worker: Worker::new(1.0, 1e9, 0.0),
            children: vec![leaf(2.0, 5.0), leaf(3.0, 5.0)],
        };
        let s = equivalent_speed(&tree);
        assert!(s <= 6.0 + 1e-9, "cannot exceed the CPU sum: {s}");
    }

    #[test]
    #[should_panic]
    fn latencies_rejected() {
        equivalent_speed(&TreeNode::leaf(Worker::new(1.0, 1.0, 0.5)));
    }
}
