//! Content-addressed cell cache.
//!
//! Every campaign cell is addressed by a *key preimage*: a canonical JSON
//! string of everything that determines its outcome (policy name,
//! executor, platform, workload source — trace files by content hash —
//! replication seed, scheduling context, and a cache version). The shard
//! file name is the FNV-1a 64 hash of that preimage; the shard stores the
//! preimage back plus a content hash of the serialized cell, so a load
//! trusts nothing it cannot re-verify:
//!
//! * key mismatch (hash collision, or a shard from an older spec) → miss;
//! * cell hash mismatch (poisoned / hand-edited / torn shard) → miss;
//! * parse failure (truncated file, schema drift) → miss.
//!
//! A miss is always safe: the campaign recomputes the cell and overwrites
//! the shard atomically. Because cells serialize losslessly (`f64` via the
//! shortest round-trip form), a warm run is byte-identical to a cold one.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::io::write_file_atomic;
use crate::runner::Cell;
use crate::spec::fnv64;

/// Bumped whenever the cell schema or key layout changes; stale shards
/// then miss instead of deserializing wrongly. (2: trial-overhead counters
/// on cells, machine/knowledge axes in the key preimage. 3: open-arrival
/// per-class response distributions on cells. 4: failure stats on cells,
/// `failures` axis in the key preimage of volatile cells.)
pub const CACHE_VERSION: u32 = 4;

#[derive(Serialize, Deserialize)]
struct Shard {
    version: u32,
    key: String,
    cell_hash: String,
    cell: Cell,
}

fn content_hash(text: &str) -> String {
    format!("{:016x}", fnv64(text.as_bytes()))
}

/// A directory of cell shards.
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Open (creating if needed) the cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<CellCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CellCache { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard path for a key preimage.
    pub fn shard_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv64(key.as_bytes())))
    }

    /// Look a cell up; any verification failure is a miss, never an error.
    pub fn load(&self, key: &str) -> Option<Cell> {
        let text = fs::read_to_string(self.shard_path(key)).ok()?;
        let shard: Shard = serde_json::from_str(&text).ok()?;
        if shard.version != CACHE_VERSION || shard.key != key {
            return None;
        }
        let cell_json = serde_json::to_string(&shard.cell).ok()?;
        if content_hash(&cell_json) != shard.cell_hash {
            return None;
        }
        Some(shard.cell)
    }

    /// Names of the shard files currently present (`<fnv64-hex>.json`),
    /// sorted. Built on the robust listing in `crate::io`: stray content
    /// in the cache directory — editor temp files, non-UTF-8 names,
    /// subdirectories — is skipped with a warning instead of panicking the
    /// campaign, and anything that is not shaped like a shard name is
    /// filtered out here.
    pub fn shard_names(&self) -> Vec<String> {
        crate::io::list_file_names(&self.dir)
            .into_iter()
            .filter(|n| {
                n.len() == 21
                    && n.ends_with(".json")
                    && n.bytes().take(16).all(|b| b.is_ascii_hexdigit())
            })
            .collect()
    }

    /// Persist a cell under its key (atomic write; a concurrent reader
    /// never sees a torn shard).
    pub fn store(&self, key: &str, cell: &Cell) {
        let cell_json = serde_json::to_string(cell).expect("cells serialize");
        let shard = Shard {
            version: CACHE_VERSION,
            key: key.to_string(),
            cell_hash: content_hash(&cell_json),
            cell: cell.clone(),
        };
        let name = format!("{:016x}.json", fnv64(key.as_bytes()));
        let text = serde_json::to_string(&shard).expect("shards serialize");
        write_file_atomic(&self.dir, &name, &text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_metrics::{CompletedJob, Criteria};
    use lsps_workload::Job;

    fn sample_cell() -> Cell {
        use lsps_des::{Dur, Time};
        let records = [CompletedJob::from_job(
            &Job::sequential(1, Dur::from_ticks(10)),
            Time::ZERO,
            Time::from_ticks(10),
            1,
        )];
        Cell {
            policy: "list-fcfs".into(),
            executor: "direct".into(),
            workload: "w".into(),
            seed: 42,
            platform: "m8".into(),
            m: 8,
            n: 1,
            criteria: Criteria::evaluate(&records),
            cmax_ratio: 1.25,
            csum_ratio: 1.0 / 3.0, // a non-terminating binary fraction
            wsum_ratio: 1.5,
            utilization: 0.125,
            trials: Some(3),
            kills: Some(2),
            wasted_ticks: Some(1500),
            class_names: Some(vec!["narrow".into(), "wide".into()]),
            responses: Some(vec![lsps_metrics::ClassResponse {
                class: 0,
                n: 1,
                mean_flow_s: 10.0,
                p50_flow_s: 10.0,
                p95_flow_s: 10.0,
                p99_flow_s: 10.0,
                max_slowdown: 1.5,
                ci95_flow_s: 0.25,
            }]),
            failures: Some(lsps_metrics::FailureStats {
                kills: 2,
                resubmits: 2,
                wasted_ticks: 700,
                goodput: 0.875,
                interrupted_slowdown: Some(2.5),
            }),
        }
    }

    fn temp_cache(tag: &str) -> CellCache {
        let dir = std::env::temp_dir().join(format!("lsps-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CellCache::new(dir).expect("temp cache dir")
    }

    #[test]
    fn store_load_round_trips_exactly() {
        let cache = temp_cache("roundtrip");
        let cell = sample_cell();
        assert!(cache.load("k1").is_none(), "cold cache misses");
        cache.store("k1", &cell);
        let back = cache.load("k1").expect("hit");
        // CSV is the consumer; byte-identity there is the contract.
        assert_eq!(back.csv_row(), cell.csv_row());
        assert_eq!(back.criteria, cell.criteria);
        // Trial counters feed the aggregate CSV; they must survive too.
        assert_eq!(back.trials, cell.trials);
        assert_eq!(back.kills, cell.kills);
        assert_eq!(back.wasted_ticks, cell.wasted_ticks);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn shard_listing_ignores_stray_files() {
        // Regression: one bogus file in the cache directory must neither
        // panic the listing nor be mistaken for a shard.
        let cache = temp_cache("strays");
        cache.store("k1", &sample_cell());
        cache.store("k2", &sample_cell());
        fs::write(cache.dir().join("README.txt"), "not a shard").unwrap();
        fs::write(cache.dir().join("0123.json"), "wrong name length").unwrap();
        fs::create_dir_all(cache.dir().join("nested")).unwrap();
        #[cfg(unix)]
        {
            use std::ffi::OsStr;
            use std::os::unix::ffi::OsStrExt;
            fs::write(cache.dir().join(OsStr::from_bytes(b"shard-\xff.json")), "x").unwrap();
        }
        let names = cache.shard_names();
        assert_eq!(names.len(), 2, "exactly the two real shards: {names:?}");
        for key in ["k1", "k2"] {
            let expected = cache.shard_path(key);
            assert!(names.iter().any(|n| expected.ends_with(n)), "{key}");
            assert!(cache.load(key).is_some(), "strays must not break loads");
        }
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let cache = temp_cache("keymiss");
        let cell = sample_cell();
        cache.store("k1", &cell);
        // Simulate a filename collision: copy the shard where another key
        // would look for it. The stored preimage differs → miss.
        fs::copy(cache.shard_path("k1"), cache.shard_path("other-key")).unwrap();
        assert!(cache.load("other-key").is_none());
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn poisoned_or_truncated_shards_miss() {
        let cache = temp_cache("poison");
        let cell = sample_cell();
        cache.store("k1", &cell);
        let path = cache.shard_path("k1");
        // Poison: edit a cell value without updating the content hash.
        let text = fs::read_to_string(&path).unwrap();
        let poisoned = text.replace("1.25", "9.75");
        assert_ne!(text, poisoned, "the edit must hit the payload");
        fs::write(&path, &poisoned).unwrap();
        assert!(cache.load("k1").is_none(), "hash mismatch is not trusted");
        // Truncation: parse failure is a miss too.
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.load("k1").is_none());
        // Recompute path: storing again repairs the shard.
        cache.store("k1", &cell);
        assert!(cache.load("k1").is_some());
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
