//! The bi-criteria doubling-batch algorithm (§4.4 of the paper; ref \[10\]
//! Hall, Schulz, Shmoys, Wein).
//!
//! "The main idea is to use algorithm ACmax (with performance ratio ρCmax
//! on the makespan) as a procedure to build a schedule which has a
//! performance guaranty on the sum of the completion times. The makespan
//! algorithm ACmax takes as input a set of (possibly weighted) tasks and a
//! deadline d, and outputs a schedule of length at most ρCmax·d with as
//! many tasks as possible (or the maximum weight). Running this ACmax
//! algorithm iteratively in batches of doubling sizes (d, 2d, 4d, …) gives
//! a schedule where the total makespan is at most 4·ρCmax·C*max […] The
//! performance ratio on the sum of completion times is also 4·ρCmax."
//!
//! Our ACmax with ρ = 2 packs jobs into **two shelves of height d** (each
//! job at its minimal deadline-d allotment, selected greedily by weight
//! density): every accepted job finishes within 2d, so batch `i` occupies
//! exactly the window `[T_i, T_i + 2·d_i)` with `d_{i+1} = 2·d_i`. This is
//! the "simulated implementation of a variation of the bi-criteria
//! algorithm" whose behaviour Fig. 2 of the paper reports; the `fig2`
//! experiment regenerates those curves.

use lsps_des::{Dur, Time};
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobKind};

use crate::schedule::Schedule;

/// Parameters of the doubling-batch construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BiCriteriaParams {
    /// First batch deadline `d0` in ticks; `None` = smallest job minimal
    /// time among the earliest arrivals (a natural self-calibration).
    pub d0: Option<u64>,
    /// Geometric factor between batch deadlines (the paper uses 2; the
    /// ablation bench sweeps it).
    pub factor: f64,
}

impl Default for BiCriteriaParams {
    fn default() -> Self {
        BiCriteriaParams {
            d0: None,
            factor: 2.0,
        }
    }
}

/// Minimal allotment of `job` meeting deadline `d` on `m` processors.
fn allotment_within(job: &Job, m: usize, d: Dur) -> Option<usize> {
    match &job.kind {
        JobKind::Rigid { procs, len } => (*procs <= m && *len <= d).then_some(*procs),
        JobKind::Moldable { profile } | JobKind::Malleable { profile } => {
            profile.truncated(m).min_allotment_within(d)
        }
        JobKind::Divisible { .. } => panic!("bi-criteria does not schedule divisible jobs"),
    }
}

/// ACmax with ρ = 2: pack as much weight as possible from `avail` into the
/// window `[t0, t0 + 2d)`. Each job takes its minimal deadline-`d`
/// allotment and is stacked greedily on the processors that free up
/// earliest *within the window* — short jobs pile up in columns instead of
/// each blocking a processor for a whole shelf (which would starve
/// sequential workloads). Returns the indices packed and the actual batch
/// completion time.
fn ac_max(
    jobs: &[Job],
    avail: &[usize],
    m: usize,
    t0: Time,
    d: Dur,
    sched: &mut Schedule,
) -> (Vec<usize>, Time) {
    // Greedy knapsack order: weight per unit of minimal work, heaviest
    // density first — maximizes packed weight for the Σ ωC criterion.
    let mut order: Vec<usize> = avail.to_vec();
    order.sort_by(|&a, &b| {
        let da = jobs[a].weight / jobs[a].min_work().ticks().max(1) as f64;
        let db = jobs[b].weight / jobs[b].min_work().ticks().max(1) as f64;
        db.partial_cmp(&da)
            .expect("finite densities")
            .then(jobs[a].id.cmp(&jobs[b].id))
    });
    let deadline = t0 + d + d;
    let mut free = vec![t0; m]; // per-processor column heights in the window
    let mut by_free: Vec<usize> = (0..m).collect();
    let mut packed = Vec::new();
    let mut batch_end = t0;
    for idx in order {
        let job = &jobs[idx];
        let Some(k) = allotment_within(job, m, d) else {
            continue; // cannot meet this deadline; wait for a bigger batch
        };
        by_free.sort_by_key(|&i| (free[i], i));
        let chosen = &by_free[..k];
        let start = chosen.iter().map(|&i| free[i]).max().expect("k >= 1");
        let end = start + job.time_on(k);
        if end > deadline {
            continue; // would overflow the ρ·d window; next batch
        }
        sched.place(job, start, ProcSet::from_indices(chosen.iter().copied()));
        for &i in chosen {
            free[i] = end;
        }
        batch_end = batch_end.max(end);
        packed.push(idx);
    }
    (packed, batch_end)
}

/// Schedule `jobs` (rigid and/or moldable, on-line releases allowed) on `m`
/// processors with the doubling-batch bi-criteria algorithm. Good for both
/// `Cmax` and `Σ ωi Ci` simultaneously (4ρ each, §4.4).
pub fn bicriteria_schedule(jobs: &[Job], m: usize, params: BiCriteriaParams) -> Schedule {
    assert!(params.factor > 1.0, "batch factor must exceed 1");
    let mut sched = Schedule::new(m);
    if jobs.is_empty() {
        return sched;
    }
    let mut remaining: Vec<usize> = (0..jobs.len()).collect();
    remaining.sort_by_key(|&i| (jobs[i].release, jobs[i].id));

    let mut t = jobs[remaining[0]].release;
    let mut d = Dur::from_ticks(params.d0.unwrap_or(0).max(1));
    if params.d0.is_none() {
        // Self-calibrate on the earliest arrivals: the smallest minimal
        // execution time among jobs released with the first one.
        let t0 = t;
        d = remaining
            .iter()
            .map(|&i| &jobs[i])
            .filter(|j| j.release <= t0)
            .map(|j| j.min_time())
            .min()
            .expect("at least one job")
            .max(Dur::from_ticks(1));
    }

    let mut guard = 0u32;
    let mut recalibrate = false;
    while !remaining.is_empty() {
        guard += 1;
        assert!(
            guard < 10_000,
            "bi-criteria failed to converge — pathological instance?"
        );
        let avail: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| jobs[i].release <= t)
            .collect();
        if avail.is_empty() {
            // Idle: jump to the next arrival. The backlog episode is over,
            // so the doubling clock restarts with the next batch.
            t = remaining
                .iter()
                .map(|&i| jobs[i].release)
                .min()
                .expect("non-empty remaining");
            recalibrate = params.d0.is_none();
            continue;
        }
        if recalibrate {
            // Fresh episode: size the batch so that *every* available job
            // meets the deadline — the running estimate of the episode's
            // optimum. Without this, an on-line run would either carry an
            // ever-growing deadline across idle periods or cycle through
            // escalations for each long job.
            d = avail
                .iter()
                .map(|&i| jobs[i].min_time())
                .max()
                .expect("avail non-empty")
                .max(Dur::from_ticks(1));
            recalibrate = false;
        }
        let (packed, batch_end) = ac_max(jobs, &avail, m, t, d, &mut sched);
        let all_packed = packed.len() == avail.len();
        let packed_set: std::collections::HashSet<usize> = packed.iter().copied().collect();
        remaining.retain(|i| !packed_set.contains(i));
        // Advance to the real end of the batch (bounded by the analysis
        // window t + 2d); an empty batch must still burn its window so the
        // escalation makes progress.
        t = if packed.is_empty() {
            t + d + d
        } else {
            batch_end
        };
        if all_packed {
            // Caught up: the next batch recalibrates (on-line behaviour;
            // with an explicit d0 the caller pins the geometry instead).
            recalibrate = params.d0.is_none();
        } else {
            // Backlogged: escalate geometrically — this is what yields the
            // 4ρ bound for the all-released-at-once analysis of §4.4.
            d = d.scale_ceil(params.factor);
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::SimRng;
    use lsps_metrics::{cmax_lower_bound, wsum_lower_bound, Criteria};
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }
    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    #[test]
    fn small_jobs_finish_early_despite_a_giant() {
        // One giant job and many small weighted jobs: the doubling batches
        // must not hide the small jobs behind the giant (the failure mode
        // of pure makespan algorithms for Σ ωC).
        let mut jobs = vec![Job::sequential(0, d(10_000)).with_weight(1.0)];
        for i in 1..=20 {
            jobs.push(Job::sequential(i, d(10)).with_weight(10.0));
        }
        let s = bicriteria_schedule(&jobs, 4, BiCriteriaParams::default());
        assert!(s.validate(&jobs).is_ok());
        // Every small job completes long before the giant.
        let giant_end = s
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(0))
            .unwrap()
            .end;
        let small_max_end = s
            .assignments()
            .iter()
            .filter(|a| a.job != lsps_workload::JobId(0))
            .map(|a| a.end)
            .max()
            .unwrap();
        assert!(small_max_end < giant_end);
    }

    #[test]
    fn both_ratios_bounded_on_random_instances() {
        // The §4.4 guarantee is 4ρ on both criteria; with ρ = 2 that is 8.
        // Random instances stay far below — we assert the proven envelope.
        let mut rng = SimRng::seed_from(33);
        for trial in 0..8 {
            let m = 20;
            let n = 15 + trial * 10;
            let mut clock = 0u64;
            let jobs: Vec<Job> = (0..n)
                .map(|i| {
                    clock += rng.int_range(0, 100);
                    let seq = rng.int_range(20, 2000);
                    let job = if rng.chance(0.5) {
                        Job::moldable(
                            i as u64,
                            MoldableProfile::from_model(
                                d(seq),
                                &SpeedupModel::Amdahl {
                                    seq_fraction: rng.range(0.0, 0.3),
                                },
                                rng.int_range(1, 10) as usize,
                            ),
                        )
                    } else {
                        Job::sequential(i as u64, d(seq))
                    };
                    job.released_at(t(clock)).with_weight(rng.range(0.5, 5.0))
                })
                .collect();
            let s = bicriteria_schedule(&jobs, m, BiCriteriaParams::default());
            assert!(s.validate(&jobs).is_ok(), "trial {trial}");
            let crit = Criteria::evaluate(&s.completed(&jobs));
            let cmax_ratio =
                s.makespan().ticks() as f64 / cmax_lower_bound(&jobs, m).ticks() as f64;
            let wsum_ratio = crit.weighted_sum_completion / wsum_lower_bound(&jobs, m);
            assert!(
                cmax_ratio <= 8.0 + 1e-9,
                "trial {trial}: Cmax ratio {cmax_ratio}"
            );
            assert!(
                wsum_ratio <= 8.0 + 1e-9,
                "trial {trial}: ΣwC ratio {wsum_ratio}"
            );
        }
    }

    #[test]
    fn respects_release_dates() {
        let jobs = vec![
            Job::sequential(1, d(10)),
            Job::sequential(2, d(10)).released_at(t(1_000)),
        ];
        let s = bicriteria_schedule(&jobs, 2, BiCriteriaParams::default());
        assert!(s.validate(&jobs).is_ok());
        let a2 = s
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(2))
            .unwrap();
        assert!(a2.start >= t(1_000));
    }

    #[test]
    fn factor_sweep_still_valid() {
        let mut rng = SimRng::seed_from(5);
        let jobs: Vec<Job> = (0..25)
            .map(|i| Job::sequential(i, d(rng.int_range(5, 500))))
            .collect();
        for factor in [1.5, 2.0, 3.0] {
            let s = bicriteria_schedule(
                &jobs,
                8,
                BiCriteriaParams {
                    d0: Some(10),
                    factor,
                },
            );
            assert!(s.validate(&jobs).is_ok(), "factor {factor}");
        }
    }

    #[test]
    fn wide_rigid_job_waits_for_big_enough_batch() {
        // A rigid job longer than d0 cannot enter the first batches; it
        // must still be scheduled eventually.
        let jobs = vec![Job::rigid(1, 2, d(1000)), Job::sequential(2, d(1))];
        let s = bicriteria_schedule(&jobs, 4, BiCriteriaParams::default());
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_input() {
        let s = bicriteria_schedule(&[], 4, BiCriteriaParams::default());
        assert!(s.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lsps_workload::{MoldableProfile, SpeedupModel};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Arbitrary mixes of rigid/moldable jobs with arbitrary releases
        /// always produce complete, valid schedules.
        #[test]
        fn always_valid_and_complete(
            specs in prop::collection::vec(
                (1u64..2_000, 0u64..5_000, 1usize..16, any::<bool>(), 0.1f64..5.0),
                1..40),
            m in 2usize..24,
        ) {
            let jobs: Vec<Job> = specs.iter().enumerate()
                .map(|(i, &(seq, rel, k, moldable, w))| {
                    let job = if moldable {
                        Job::moldable(i as u64, MoldableProfile::from_model(
                            Dur::from_ticks(seq),
                            &SpeedupModel::PowerLaw { sigma: 0.8 },
                            k.min(m),
                        ))
                    } else {
                        Job::rigid(i as u64, k.min(m), Dur::from_ticks(seq))
                    };
                    job.released_at(Time::from_ticks(rel)).with_weight(w)
                })
                .collect();
            let s = bicriteria_schedule(&jobs, m, BiCriteriaParams::default());
            prop_assert_eq!(s.validate(&jobs), Ok(()));
            prop_assert_eq!(s.len(), jobs.len());
        }
    }
}
