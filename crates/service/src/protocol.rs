//! The daemon ↔ worker wire protocol: one JSON message per line, requests
//! on the worker's stdin, replies on its stdout.
//!
//! A campaign is shipped once per worker process as a [`ToWorker::Load`]
//! carrying the full spec; after that, work units are bare cell indices
//! into the canonical [`lsps_scenario::CampaignPlan`] order — daemon and
//! worker expand the same spec, so both sides agree on what an index
//! means without ever serializing a cell's inputs twice.
//!
//! The worker answers every `Run` with exactly one [`FromWorker::Done`]
//! or [`FromWorker::Error`]; the daemon treats anything else (EOF,
//! garbage, silence past the cell timeout) as a worker failure and
//! reassigns the in-flight cells.

use lsps_scenario::{CampaignSpec, Cell};
use serde::{Deserialize, Serialize};

/// Daemon → worker requests.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ToWorker {
    /// Expand `spec` and cache the resulting plan under `id`; must precede
    /// any [`ToWorker::Run`] for that campaign (stdin is read serially, so
    /// ordering is guaranteed by the transport).
    Load {
        /// Campaign id the plan is cached under.
        id: String,
        /// The full campaign spec, as submitted. Boxed to keep the
        /// request enum small — `Run` is the common frame.
        spec: Box<CampaignSpec>,
        /// Directory relative trace paths resolve against.
        base_dir: Option<String>,
    },
    /// Run one cell of a previously loaded campaign.
    Run {
        /// Campaign id of a prior `Load`.
        id: String,
        /// Canonical cell index into the campaign's plan.
        cell: usize,
    },
}

/// Worker → daemon replies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FromWorker {
    /// A `Load` succeeded; `cells` echoes the plan size as a cross-check
    /// that both sides expanded the same grid.
    Loaded {
        /// Campaign id.
        id: String,
        /// Cell count of the expanded plan.
        cells: usize,
    },
    /// A `Run` completed; `data` is the full cell, which round-trips
    /// losslessly through JSON (shortest-roundtrip floats). Boxed to keep
    /// the reply enum small — `Loaded`/`Error` are the common frames on
    /// the supervision paths.
    Done {
        /// Campaign id.
        id: String,
        /// The cell index that ran.
        cell: usize,
        /// The computed cell.
        data: Box<Cell>,
    },
    /// A request failed; `cell` is `None` for `Load` failures.
    Error {
        /// Campaign id.
        id: String,
        /// The failing cell index, if the request was a `Run`.
        cell: Option<usize>,
        /// Error rendering.
        error: String,
    },
}
