//! # lsps-des — discrete-event simulation substrate
//!
//! Everything in the LSPS workspace that "runs" a platform does so on top of
//! this crate: an integer simulated clock ([`Time`], [`Dur`]), a stable and
//! cancellable [`EventQueue`], a small event-driven [`engine`], and a
//! deterministic random-number layer ([`SimRng`]) so that every experiment in
//! the paper reproduction is replayable bit-for-bit from a single `u64` seed.
//!
//! The paper this workspace reproduces (Dutot, Eyraud, Mounié, Trystram,
//! *Models for scheduling on large scale platforms*, IPDPS'04) evaluates its
//! bi-criteria algorithm with a simulator (Fig. 2) and describes the CiGri
//! best-effort grid as an event-driven system (§5.2); this crate is the
//! substrate those simulations are built on.
//!
//! ## Design notes
//!
//! * Time is a `u64` tick count (1 tick = 1 simulated millisecond by the
//!   workspace convention). Integer time makes schedule validity checks exact
//!   and keeps the event queue total order well-defined — no NaN, no epsilon.
//! * Events with equal timestamps pop in insertion (FIFO) order: the queue is
//!   keyed by `(Time, sequence)`. Determinism of the whole stack depends on
//!   this.
//! * The queue is a 4-ary implicit heap of plain `(Time, seq, slot)` words
//!   over a generation-stamped slot slab holding the payloads — schedule,
//!   pop and cancel never hash, and sift operations move 24-byte entries,
//!   never an event. At 1M-job streams the per-event queue cost is the
//!   dominant simulation term, so the hot path allocates nothing in steady
//!   state (slots and heap capacity are recycled).
//! * Cancellation is O(1): [`EventQueue::cancel`] vacates the slot at once
//!   (the payload drops immediately) and leaves only a 24-byte heap
//!   tombstone behind. Tombstones are bounded, not ignored: whenever dead
//!   entries exceed half the heap, the queue compacts in place (retain live
//!   entries, rebuild bottom-up, O(n)), so the heap is always ≥ 50% live
//!   and memory stays proportional to live events even under cancel-heavy
//!   models. [`EventQueue::len`] counts live events only;
//!   [`EventQueue::heap_len`] / [`EventQueue::occupancy`] expose the
//!   live/dead accounting, and [`RunStats`] reports both high-water marks
//!   as queue-health counters.

pub mod engine;
pub mod online;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{Ctx, Model, RunStats, Simulation};
pub use online::{
    ArrivalSource, Commitment, Dispatcher, OnlineEvent, OnlineMachine, OpenOnlineMachine,
};
pub use queue::{EventKey, EventQueue};
pub use rng::SimRng;
pub use time::{Dur, Time, TICKS_PER_SEC};
pub use trace::{Trace, TraceEntry};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::engine::{Ctx, Model, Simulation};
    pub use crate::queue::{EventKey, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::time::{Dur, Time, TICKS_PER_SEC};
}
