//! Dynamic chunk self-scheduling — the work-stealing-flavoured baseline.
//!
//! "This distribution can be made in one, several rounds or dynamically
//! with a work stealing strategy \[3\]" (§2.1). Here workers pull fixed-size
//! chunks from the master whenever idle; the master's one-port serializes
//! the hand-outs. Small chunks self-balance perfectly but pay one latency
//! each; large chunks amortize latency but strand load on slow workers at
//! the end — the trade-off the `dlt_policies` experiment sweeps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::model::{DltPlan, Worker};

/// Totally ordered f64 for the event heap (no NaNs by construction).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("no NaN event times")
    }
}

/// Simulate chunk self-scheduling of `w` units with the given `chunk` size:
/// every idle worker requests the next chunk (or the remainder), receives
/// it over its link, computes, repeats. Exact one-port, deterministic
/// FIFO tie-breaking by worker index.
pub fn self_schedule(w: f64, workers: &[Worker], chunk: f64) -> DltPlan {
    assert!(w > 0.0 && chunk > 0.0 && !workers.is_empty());
    let mut remaining = w;
    let mut alphas = vec![0.0f64; workers.len()];
    let mut port_free = 0.0f64;
    let mut makespan = 0.0f64;
    // (ready_time, worker) — workers become hungry at time 0.
    let mut hungry: BinaryHeap<Reverse<(OrdF64, usize)>> = (0..workers.len())
        .map(|i| Reverse((OrdF64(0.0), i)))
        .collect();
    while remaining > 0.0 {
        let Reverse((OrdF64(ready), i)) = hungry.pop().expect("workers never vanish");
        let take = chunk.min(remaining);
        remaining -= take;
        let wk = &workers[i];
        let recv_start = port_free.max(ready);
        let recv_end = recv_start + wk.recv_time(take);
        port_free = recv_end;
        let done = recv_end + wk.compute_time(take);
        alphas[i] += take;
        makespan = makespan.max(done);
        hungry.push(Reverse((OrdF64(done), i)));
    }
    let plan = DltPlan { alphas, makespan };
    plan.check(w);
    plan
}

/// Sweep chunk sizes (log grid between `w/1000` and `w`) and return the
/// best `(chunk, plan)` — the tuned dynamic baseline.
pub fn best_chunk(w: f64, workers: &[Worker]) -> (f64, DltPlan) {
    let mut best: Option<(f64, DltPlan)> = None;
    let mut c = w / 1000.0;
    while c <= w {
        let plan = self_schedule(w, workers, c);
        if best
            .as_ref()
            .is_none_or(|(_, b)| plan.makespan < b.makespan)
        {
            best = Some((c, plan));
        }
        c *= 2.0;
    }
    best.expect("at least one chunk size tried")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::{star_single_round, WorkerOrder};

    fn uniform(n: usize, speed: f64, bw: f64, lat: f64) -> Vec<Worker> {
        vec![Worker::new(speed, bw, lat); n]
    }

    #[test]
    fn small_chunks_approach_the_closed_form_without_latency() {
        let ws = uniform(4, 1.0, 8.0, 0.0);
        let w = 400.0;
        let optimal = star_single_round(w, &ws, WorkerOrder::AsGiven);
        let dynamic = self_schedule(w, &ws, w / 400.0);
        assert!(
            dynamic.makespan <= optimal.makespan * 1.05,
            "dynamic {} vs closed form {}",
            dynamic.makespan,
            optimal.makespan
        );
    }

    #[test]
    fn dynamic_beats_single_round_by_pipelining() {
        // With zero latency and a slow-ish link, many small chunks overlap
        // communication and computation, beating any single-round plan.
        let ws = uniform(4, 1.0, 2.0, 0.0);
        let w = 400.0;
        let one_round = star_single_round(w, &ws, WorkerOrder::AsGiven);
        let (_, dynamic) = best_chunk(w, &ws);
        assert!(dynamic.makespan <= one_round.makespan + 1e-9);
    }

    #[test]
    fn one_giant_chunk_serializes() {
        let ws = uniform(4, 1.0, 1000.0, 0.0);
        let plan = self_schedule(100.0, &ws, 100.0);
        // Whole load lands on worker 0.
        assert!((plan.alphas[0] - 100.0).abs() < 1e-9);
        assert!((plan.makespan - (0.1 + 100.0)).abs() < 1e-6);
    }

    #[test]
    fn latency_penalizes_tiny_chunks() {
        let ws = uniform(4, 1.0, 100.0, 0.5);
        let tiny = self_schedule(100.0, &ws, 0.1);
        let sane = self_schedule(100.0, &ws, 10.0);
        assert!(
            tiny.makespan > sane.makespan,
            "tiny {} vs sane {}",
            tiny.makespan,
            sane.makespan
        );
    }

    #[test]
    fn slow_workers_receive_less() {
        let ws = vec![Worker::new(4.0, 100.0, 0.0), Worker::new(1.0, 100.0, 0.0)];
        let plan = self_schedule(100.0, &ws, 1.0);
        assert!(
            plan.alphas[0] > 3.0 * plan.alphas[1],
            "fast {} vs slow {}",
            plan.alphas[0],
            plan.alphas[1]
        );
    }

    #[test]
    fn deterministic() {
        let ws = uniform(3, 1.3, 7.0, 0.01);
        let a = self_schedule(123.0, &ws, 2.5);
        let b = self_schedule(123.0, &ws, 2.5);
        assert_eq!(a, b);
    }

    #[test]
    fn best_chunk_is_sane() {
        let ws = uniform(4, 1.0, 4.0, 0.05);
        let (chunk, plan) = best_chunk(200.0, &ws);
        assert!(chunk > 0.0 && chunk <= 200.0);
        // Tuned dynamic must beat the pathological extremes.
        let tiny = self_schedule(200.0, &ws, 0.2);
        let giant = self_schedule(200.0, &ws, 200.0);
        assert!(plan.makespan <= tiny.makespan);
        assert!(plan.makespan <= giant.makespan);
    }
}
