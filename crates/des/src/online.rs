//! Generic online machine: a [`Model`] that drives an external decision
//! procedure event-by-event.
//!
//! The offline executors evaluate a finished rectangle schedule; online
//! policies differ precisely in *when* they learn about jobs. This module
//! provides the missing execution shape: jobs [`OnlineEvent::Arrive`] over
//! simulated time into a pending set, and a [`Dispatcher`] — the layer-
//! agnostic stand-in for a scheduling policy — is (re-)invoked at every
//! arrival and completion instant to commit work.
//!
//! The machine is deliberately generic over the job type: this crate sits
//! below `lsps-workload`/`lsps-core`, so the policy-aware dispatcher lives
//! upstream (`lsps_bench::runner` wires `lsps_core::policy::Policy` in) and
//! this module only owns the event mechanics:
//!
//! * same-instant arrivals coalesce into **one** decision (a `Decide` event
//!   scheduled at `now` fires after every already-queued event of the same
//!   timestamp — the queue is FIFO on ties), so a batch policy sees the
//!   whole simultaneous burst, not one job at a time;
//! * a commitment is final **unless a node fails under it**: the machine
//!   schedules its completion and never revisits it on its own, but an
//!   [`OnlineEvent::NodeDown`] invokes the dispatcher's
//!   [`Dispatcher::node_down`] hook, which may kill running commitments
//!   (their queued `Finish` events are cancelled in O(1)) and resubmit
//!   replacement jobs into the pending set — the explicit invalidation
//!   path failure-aware executors build on. Revision policies beyond that
//!   still model preemption *inside* their dispatcher;
//! * everything is deterministic: identical arrival streams, failure
//!   traces, and a deterministic dispatcher give bit-identical completion
//!   logs.

use crate::engine::{Ctx, Model};
use crate::queue::EventKey;
use crate::time::Time;

/// A decision the dispatcher made for one job: run it over `[start, end)`.
/// `start` may lie in the future (a planned, reserved start); `end` must not
/// precede `start`.
#[derive(Clone, Debug, PartialEq)]
pub struct Commitment<J> {
    /// The committed job.
    pub job: J,
    /// Start of execution.
    pub start: Time,
    /// Completion instant.
    pub end: Time,
}

/// The decision procedure the machine drives — one abstract "scheduling
/// policy invocation" per decision instant.
pub trait Dispatcher {
    /// The job type flowing through the machine.
    type Job;

    /// Decide at `now` over the pending set (arrival order). Jobs the
    /// dispatcher commits must be *removed* from `pending` and pushed onto
    /// `out`; whatever is left stays queued and the dispatcher runs again at
    /// the next arrival or completion. Every commitment must satisfy
    /// `now <= start <= end`.
    ///
    /// `out` arrives empty and is owned by the machine, which recycles it
    /// across invocations — at millions of decisions per run, returning a
    /// fresh `Vec` per call would put an allocation on every event.
    fn decide(
        &mut self,
        now: Time,
        pending: &mut Vec<Self::Job>,
        out: &mut Vec<Commitment<Self::Job>>,
    );

    /// A node failed at `now` and will be repaired at `up`. Inspect the
    /// running table (slot-indexed; `None` entries already finished or
    /// were killed earlier) and push the slots to kill into `kill` and
    /// the replacement jobs to queue into `resubmit`. The machine then
    /// cancels each killed slot's completion event, re-queues the
    /// resubmitted jobs, and requests a decision at `now`.
    ///
    /// Only slots holding `Some` commitment may be killed, and a slot at
    /// most once. The default ignores failures entirely — volatility-blind
    /// dispatchers keep their exact behaviour.
    fn node_down(
        &mut self,
        now: Time,
        node: u32,
        up: Time,
        running: &[Option<Commitment<Self::Job>>],
        kill: &mut Vec<usize>,
        resubmit: &mut Vec<Self::Job>,
    ) {
        let _ = (now, node, up, running, kill, resubmit);
    }

    /// The node failed earlier is repaired at `now`. Bookkeeping only —
    /// the machine follows up with a decision request, so newly freed
    /// capacity is replanned immediately.
    fn node_up(&mut self, now: Time, node: u32) {
        let _ = (now, node);
    }
}

/// Event alphabet of the online machine.
#[derive(Debug)]
pub enum OnlineEvent<J> {
    /// A job becomes known to the scheduler.
    Arrive(J),
    /// Invoke the dispatcher over the current pending set.
    Decide,
    /// A committed run finishes (index into the machine's running table).
    Finish(usize),
    /// A node fails, repaired at `up` — the repair instant rides along so
    /// failure-aware dispatchers can plan around the outage window.
    NodeDown {
        /// Failed node index.
        node: u32,
        /// Repair-complete instant (a matching [`OnlineEvent::NodeUp`] is
        /// expected there).
        up: Time,
    },
    /// A previously failed node comes back.
    NodeUp {
        /// Repaired node index.
        node: u32,
    },
}

/// The event-driven machine around a [`Dispatcher`]: plug into
/// [`crate::Simulation`], seed one [`OnlineEvent::Arrive`] per job, run to
/// completion, then read the completion log with [`OnlineMachine::into_parts`].
pub struct OnlineMachine<D: Dispatcher> {
    dispatcher: D,
    pending: Vec<D::Job>,
    running: Vec<Option<Commitment<D::Job>>>,
    /// Queued `Finish` event of each slot, parallel to `running` — the
    /// handle that lets a node failure cancel a doomed completion in O(1)
    /// instead of leaving a stale event to fire on an emptied slot.
    finish_keys: Vec<EventKey>,
    completed: Vec<Commitment<D::Job>>,
    /// Recycled scratch handed to [`Dispatcher::decide`] — cleared before
    /// every invocation, so the dispatch loop allocates nothing in steady
    /// state.
    commitments: Vec<Commitment<D::Job>>,
    /// Recycled scratch handed to [`Dispatcher::node_down`].
    kill_scratch: Vec<usize>,
    resubmit_scratch: Vec<D::Job>,
    /// Instant a `Decide` is already scheduled for (coalesces same-time
    /// decision requests into one policy invocation).
    decide_at: Option<Time>,
    decisions: u64,
    kills: u64,
    resubmits: u64,
}

impl<D: Dispatcher> OnlineMachine<D> {
    /// A machine with an empty pending set.
    pub fn new(dispatcher: D) -> Self {
        OnlineMachine {
            dispatcher,
            pending: Vec::new(),
            running: Vec::new(),
            finish_keys: Vec::new(),
            completed: Vec::new(),
            commitments: Vec::new(),
            kill_scratch: Vec::new(),
            resubmit_scratch: Vec::new(),
            decide_at: None,
            decisions: 0,
            kills: 0,
            resubmits: 0,
        }
    }

    /// Jobs arrived but not yet committed.
    pub fn pending(&self) -> &[D::Job] {
        &self.pending
    }

    /// Commitments whose completion has not fired yet.
    pub fn running(&self) -> usize {
        self.running.iter().filter(|r| r.is_some()).count()
    }

    /// Completions so far, in event (time, FIFO) order.
    pub fn completed(&self) -> &[Commitment<D::Job>] {
        &self.completed
    }

    /// Number of dispatcher invocations so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Commitments killed by node failures so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Jobs resubmitted after a kill so far.
    pub fn resubmits(&self) -> u64 {
        self.resubmits
    }

    /// Tear down into `(dispatcher, completions, still-pending)` — the
    /// completion log is in event order.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (D, Vec<Commitment<D::Job>>, Vec<D::Job>) {
        (self.dispatcher, self.completed, self.pending)
    }

    fn request_decide(&mut self, now: Time, ctx: &mut Ctx<'_, OnlineEvent<D::Job>>) {
        if self.pending.is_empty() || self.decide_at == Some(now) {
            return;
        }
        self.decide_at = Some(now);
        ctx.schedule_at(now, OnlineEvent::Decide);
    }

    fn decide(&mut self, now: Time, ctx: &mut Ctx<'_, OnlineEvent<D::Job>>) {
        self.decide_at = None;
        if self.pending.is_empty() {
            return;
        }
        self.decisions += 1;
        let before = self.pending.len();
        let mut commitments = std::mem::take(&mut self.commitments);
        commitments.clear();
        self.dispatcher
            .decide(now, &mut self.pending, &mut commitments);
        assert_eq!(
            before,
            self.pending.len() + commitments.len(),
            "dispatcher must drain exactly the jobs it commits"
        );
        for c in commitments.drain(..) {
            assert!(
                now <= c.start && c.start <= c.end,
                "commitment [{:?}, {:?}) violates causality at {:?}",
                c.start,
                c.end,
                now
            );
            let slot = self.running.len();
            let end = c.end;
            self.running.push(Some(c));
            self.finish_keys
                .push(ctx.schedule_at(end, OnlineEvent::Finish(slot)));
        }
        self.commitments = commitments;
    }

    fn node_down(
        &mut self,
        now: Time,
        node: u32,
        up: Time,
        ctx: &mut Ctx<'_, OnlineEvent<D::Job>>,
    ) {
        let mut kill = std::mem::take(&mut self.kill_scratch);
        let mut resubmit = std::mem::take(&mut self.resubmit_scratch);
        kill.clear();
        resubmit.clear();
        self.dispatcher
            .node_down(now, node, up, &self.running, &mut kill, &mut resubmit);
        for slot in kill.drain(..) {
            let c = self.running[slot]
                .take()
                .expect("dispatcher killed an empty or already-killed slot");
            debug_assert!(c.end > now, "killed a commitment that already completed");
            assert!(
                ctx.cancel(self.finish_keys[slot]),
                "killed commitment's finish already fired"
            );
            self.kills += 1;
        }
        self.resubmits += resubmit.len() as u64;
        self.pending.append(&mut resubmit);
        self.kill_scratch = kill;
        self.resubmit_scratch = resubmit;
        self.request_decide(now, ctx);
    }
}

impl<D: Dispatcher> Model for OnlineMachine<D> {
    type Event = OnlineEvent<D::Job>;

    fn handle(&mut self, now: Time, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>) {
        match event {
            OnlineEvent::Arrive(job) => {
                self.pending.push(job);
                self.request_decide(now, ctx);
            }
            OnlineEvent::Decide => self.decide(now, ctx),
            OnlineEvent::Finish(slot) => {
                let c = self.running[slot]
                    .take()
                    .expect("finish fires once per slot");
                debug_assert_eq!(c.end, now);
                self.completed.push(c);
                // A completion is new information: re-invoke the dispatcher
                // if work is still waiting (no-op for full-commitment
                // dispatchers, which never leave jobs pending).
                self.request_decide(now, ctx);
            }
            OnlineEvent::NodeDown { node, up } => self.node_down(now, node, up, ctx),
            OnlineEvent::NodeUp { node } => {
                self.dispatcher.node_up(now, node);
                self.request_decide(now, ctx);
            }
        }
    }
}

/// An arrival stream fed to the machine lazily, one job at a time —
/// the abstraction that lets open (unbounded) workloads drive the DES
/// without ever materializing a job list.
///
/// Contract: releases are **nondecreasing** across calls (the machine
/// asserts this), and `None` ends the stream — a finite source is just a
/// stream that runs dry. Any `Iterator<Item = (Time, Job)>` is a source.
pub trait ArrivalSource {
    /// The job type produced.
    type Job;

    /// Draw the next arrival `(release, job)`, or `None` when exhausted.
    fn next_arrival(&mut self) -> Option<(Time, Self::Job)>;
}

impl<J, I: Iterator<Item = (Time, J)>> ArrivalSource for I {
    type Job = J;
    fn next_arrival(&mut self) -> Option<(Time, J)> {
        self.next()
    }
}

/// The steady-state sibling of [`OnlineMachine`]: pulls arrivals from an
/// [`ArrivalSource`] one ahead (the event queue holds at most one future
/// arrival), recycles finished running slots through a free list, and
/// hands each completion to a sink callback instead of retaining it — so
/// memory stays `O(live jobs)` no matter how many jobs flow through.
/// Decision mechanics (same-instant coalescing, drain-exactly commitment
/// checks, finality) are identical to [`OnlineMachine`].
///
/// Feeding stops when the source runs dry or the next release is past
/// `feed_until`; completion-count stopping rules live in the *driver*,
/// which can step the simulation and watch `completions`
/// (`OpenOnlineMachine::completions`) — events already queued simply stop
/// being extended with new arrivals.
pub struct OpenOnlineMachine<D: Dispatcher, S, F> {
    dispatcher: D,
    source: Option<S>,
    sink: F,
    pending: Vec<D::Job>,
    running: Vec<Option<Commitment<D::Job>>>,
    free_slots: Vec<usize>,
    /// Recycled scratch handed to [`Dispatcher::decide`] (see
    /// [`OnlineMachine`]) — one decision per event at steady state makes
    /// this the allocation that matters.
    commitments: Vec<Commitment<D::Job>>,
    decide_at: Option<Time>,
    decisions: u64,
    arrivals: u64,
    completions: u64,
    feed_until: Time,
    last_release: Time,
    max_live: usize,
}

impl<D, S, F> OpenOnlineMachine<D, S, F>
where
    D: Dispatcher,
    S: ArrivalSource<Job = D::Job>,
    F: FnMut(Commitment<D::Job>),
{
    /// Build a machine over `source`, feeding arrivals released up to and
    /// including `feed_until` (use [`Time::MAX`] for "until the driver
    /// stops stepping"). `sink` observes every completion in event order.
    pub fn new(dispatcher: D, source: S, feed_until: Time, sink: F) -> Self {
        OpenOnlineMachine {
            dispatcher,
            source: Some(source),
            sink,
            pending: Vec::new(),
            running: Vec::new(),
            free_slots: Vec::new(),
            commitments: Vec::new(),
            decide_at: None,
            decisions: 0,
            arrivals: 0,
            completions: 0,
            feed_until,
            last_release: Time::ZERO,
            max_live: 0,
        }
    }

    /// Pull the first arrival for the driver to seed into the simulation
    /// (subsequent arrivals chain themselves one ahead). `None` means the
    /// stream was empty or starts past `feed_until`.
    pub fn first_arrival(&mut self) -> Option<(Time, D::Job)> {
        self.pull()
    }

    /// Completions observed so far — the driver's stopping-rule counter.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Arrivals fed so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Dispatcher invocations so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Jobs arrived but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of live jobs (pending + running) — the bounded-
    /// memory witness: it tracks queue depth, not total jobs replayed.
    pub fn max_live(&self) -> usize {
        self.max_live
    }

    /// Tear down into the dispatcher (the sink already saw every
    /// completion).
    pub fn into_dispatcher(self) -> D {
        self.dispatcher
    }

    fn pull(&mut self) -> Option<(Time, D::Job)> {
        let src = self.source.as_mut()?;
        match src.next_arrival() {
            Some((t, job)) if t <= self.feed_until => {
                assert!(
                    t >= self.last_release,
                    "arrival source must release in nondecreasing order"
                );
                self.last_release = t;
                Some((t, job))
            }
            _ => {
                // Dry, or past the feed horizon: stop feeding for good.
                self.source = None;
                None
            }
        }
    }

    fn note_live(&mut self) {
        let live = self.pending.len() + (self.running.len() - self.free_slots.len());
        self.max_live = self.max_live.max(live);
    }

    fn request_decide(&mut self, now: Time, ctx: &mut Ctx<'_, OnlineEvent<D::Job>>) {
        if self.pending.is_empty() || self.decide_at == Some(now) {
            return;
        }
        self.decide_at = Some(now);
        ctx.schedule_at(now, OnlineEvent::Decide);
    }

    fn decide(&mut self, now: Time, ctx: &mut Ctx<'_, OnlineEvent<D::Job>>) {
        self.decide_at = None;
        if self.pending.is_empty() {
            return;
        }
        self.decisions += 1;
        let before = self.pending.len();
        let mut commitments = std::mem::take(&mut self.commitments);
        commitments.clear();
        self.dispatcher
            .decide(now, &mut self.pending, &mut commitments);
        assert_eq!(
            before,
            self.pending.len() + commitments.len(),
            "dispatcher must drain exactly the jobs it commits"
        );
        for c in commitments.drain(..) {
            assert!(
                now <= c.start && c.start <= c.end,
                "commitment [{:?}, {:?}) violates causality at {:?}",
                c.start,
                c.end,
                now
            );
            let end = c.end;
            // Recycle slots: `running` grows to the *concurrency* high-water
            // mark, never the total job count.
            let slot = match self.free_slots.pop() {
                Some(slot) => {
                    self.running[slot] = Some(c);
                    slot
                }
                None => {
                    self.running.push(Some(c));
                    self.running.len() - 1
                }
            };
            ctx.schedule_at(end, OnlineEvent::Finish(slot));
        }
        self.commitments = commitments;
        self.note_live();
    }
}

impl<D, S, F> Model for OpenOnlineMachine<D, S, F>
where
    D: Dispatcher,
    S: ArrivalSource<Job = D::Job>,
    F: FnMut(Commitment<D::Job>),
{
    type Event = OnlineEvent<D::Job>;

    fn handle(&mut self, now: Time, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>) {
        match event {
            OnlineEvent::Arrive(job) => {
                self.arrivals += 1;
                self.pending.push(job);
                self.note_live();
                // One-ahead feeding: each arrival pulls its successor, so
                // the queue never holds more than one future arrival.
                if let Some((t, next)) = self.pull() {
                    ctx.schedule_at(t, OnlineEvent::Arrive(next));
                }
                self.request_decide(now, ctx);
            }
            OnlineEvent::Decide => self.decide(now, ctx),
            OnlineEvent::Finish(slot) => {
                let c = self.running[slot]
                    .take()
                    .expect("finish fires once per slot");
                debug_assert_eq!(c.end, now);
                self.free_slots.push(slot);
                self.completions += 1;
                (self.sink)(c);
                self.request_decide(now, ctx);
            }
            // Steady-state analysis assumes a reliable platform; feeding
            // volatility events into the open machine is a driver bug, not
            // a condition to silently ignore.
            OnlineEvent::NodeDown { node, .. } | OnlineEvent::NodeUp { node } => {
                panic!("open online machine does not model node volatility (node {node} event)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::Dur;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    /// One-processor FCFS: starts the head job when the machine is free.
    struct Fcfs {
        free_at: Time,
        lens: Vec<(u32, Dur)>, // (id, len) lookup
    }

    impl Dispatcher for Fcfs {
        type Job = u32;
        fn decide(&mut self, now: Time, pending: &mut Vec<u32>, out: &mut Vec<Commitment<u32>>) {
            // Commit only the head, and only if the machine is idle now.
            if self.free_at > now || pending.is_empty() {
                return;
            }
            let job = pending.remove(0);
            let len = self.lens.iter().find(|(i, _)| *i == job).expect("known").1;
            self.free_at = now + len;
            out.push(Commitment {
                job,
                start: now,
                end: self.free_at,
            });
        }
    }

    #[test]
    fn fcfs_serializes_and_reinvokes_on_completion() {
        let lens = vec![(1, Dur::from_ticks(10)), (2, Dur::from_ticks(5))];
        let mut sim = Simulation::new(OnlineMachine::new(Fcfs {
            free_at: Time::ZERO,
            lens,
        }));
        sim.schedule_at(t(0), OnlineEvent::Arrive(1));
        sim.schedule_at(t(3), OnlineEvent::Arrive(2));
        sim.run_to_completion(100);
        let m = sim.model();
        assert_eq!(m.running(), 0);
        assert!(m.pending().is_empty());
        // Job 2 arrived while 1 ran: it waits and starts at 1's completion —
        // the decision triggered by the Finish event.
        assert_eq!(
            m.completed(),
            &[
                Commitment {
                    job: 1,
                    start: t(0),
                    end: t(10)
                },
                Commitment {
                    job: 2,
                    start: t(10),
                    end: t(15)
                },
            ]
        );
        assert_eq!(m.decisions(), 3); // arrive(1), arrive(2), finish(1)
    }

    /// Commits every pending job at once, back to back from `now`.
    struct DrainAll;

    impl Dispatcher for DrainAll {
        type Job = u32;
        fn decide(&mut self, now: Time, pending: &mut Vec<u32>, out: &mut Vec<Commitment<u32>>) {
            let mut at = now;
            out.extend(pending.drain(..).map(|job| {
                let c = Commitment {
                    job,
                    start: at,
                    end: at + Dur::from_ticks(u64::from(job)),
                };
                at = c.end;
                c
            }));
        }
    }

    #[test]
    fn simultaneous_arrivals_coalesce_into_one_decision() {
        let mut sim = Simulation::new(OnlineMachine::new(DrainAll));
        for job in [3u32, 1, 2] {
            sim.schedule_at(t(5), OnlineEvent::Arrive(job));
        }
        sim.run_to_completion(100);
        let m = sim.model();
        // One burst, one decision, arrival (seed) order preserved.
        assert_eq!(m.decisions(), 1);
        let order: Vec<u32> = m.completed().iter().map(|c| c.job).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(m.completed()[2].end, t(5 + 3 + 1 + 2));
    }

    #[test]
    fn future_commitments_complete_at_their_end() {
        struct Defer;
        impl Dispatcher for Defer {
            type Job = u32;
            fn decide(
                &mut self,
                now: Time,
                pending: &mut Vec<u32>,
                out: &mut Vec<Commitment<u32>>,
            ) {
                out.extend(pending.drain(..).map(|job| Commitment {
                    job,
                    start: now + Dur::from_ticks(100),
                    end: now + Dur::from_ticks(101),
                }));
            }
        }
        let mut sim = Simulation::new(OnlineMachine::new(Defer));
        sim.schedule_at(t(0), OnlineEvent::Arrive(7));
        let stats = sim.run_to_completion(10);
        assert_eq!(stats.last_event_time, t(101));
        assert_eq!(sim.model().completed().len(), 1);
    }

    #[test]
    fn open_machine_matches_the_retained_machine_on_finite_streams() {
        // Same dispatcher, same arrivals: the open machine's sink must see
        // exactly the completion log the retained machine records.
        let lens: Vec<(u32, Dur)> = (1..=20)
            .map(|i| (i, Dur::from_ticks(u64::from(i % 7 + 1))))
            .collect();
        let arrivals: Vec<(Time, u32)> = (1..=20).map(|i| (t(u64::from(i) * 3), i)).collect();

        let mut retained = Simulation::new(OnlineMachine::new(Fcfs {
            free_at: Time::ZERO,
            lens: lens.clone(),
        }));
        for &(at, job) in &arrivals {
            retained.schedule_at(at, OnlineEvent::Arrive(job));
        }
        retained.run_to_completion(1_000);
        let (_, expected, _) = retained.into_model().into_parts();

        let mut sunk: Vec<Commitment<u32>> = Vec::new();
        let mut machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            arrivals.clone().into_iter(),
            Time::MAX,
            |c| sunk.push(c),
        );
        let first = machine.first_arrival().expect("non-empty stream");
        let mut sim = Simulation::new(machine);
        sim.schedule_at(first.0, OnlineEvent::Arrive(first.1));
        sim.run_to_completion(1_000);
        let m = sim.model();
        assert_eq!(m.arrivals(), 20);
        assert_eq!(m.completions(), 20);
        assert_eq!(m.pending_len(), 0);
        drop(sim);
        assert_eq!(sunk, expected);
    }

    #[test]
    fn open_machine_recycles_running_slots() {
        // FCFS runs one job at a time: however many jobs flow through, the
        // running table must stay at one slot and live jobs at the queue
        // depth — the bounded-memory property open mode exists for.
        let n: u32 = 50;
        let lens: Vec<(u32, Dur)> = (0..n).map(|i| (i, Dur::from_ticks(2))).collect();
        let arrivals = (0..n).map(|i| (t(u64::from(i) * 5), i));
        let mut count = 0u64;
        let mut machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            arrivals,
            Time::MAX,
            |_| count += 1,
        );
        let first = machine.first_arrival().unwrap();
        let mut sim = Simulation::new(machine);
        sim.schedule_at(first.0, OnlineEvent::Arrive(first.1));
        sim.run_to_completion(10_000);
        let m = sim.model();
        assert_eq!(m.completions(), u64::from(n));
        assert_eq!(m.running.len(), 1, "slots are recycled, not appended");
        assert_eq!(m.max_live(), 1, "jobs never queued behind each other");
        drop(sim);
        assert_eq!(count, u64::from(n));
    }

    #[test]
    fn open_machine_stops_feeding_past_the_horizon() {
        let lens: Vec<(u32, Dur)> = (0..10).map(|i| (i, Dur::from_ticks(1))).collect();
        let arrivals = (0..10u32).map(|i| (t(u64::from(i) * 10), i));
        let mut machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            arrivals,
            t(45), // admits releases 0, 10, 20, 30, 40 — five jobs
            |_| {},
        );
        let first = machine.first_arrival().unwrap();
        let mut sim = Simulation::new(machine);
        sim.schedule_at(first.0, OnlineEvent::Arrive(first.1));
        sim.run_to_completion(1_000);
        assert_eq!(sim.model().arrivals(), 5);
        assert_eq!(sim.model().completions(), 5);
    }

    #[test]
    fn open_machine_driver_can_stop_on_a_completion_count() {
        // The stepping driver: break as soon as N completions are counted,
        // leaving later arrivals unprocessed — the open stopping rule.
        let lens: Vec<(u32, Dur)> = (0..100).map(|i| (i, Dur::from_ticks(1))).collect();
        let arrivals = (0..100u32).map(|i| (t(u64::from(i) * 2), i));
        let mut machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            arrivals,
            Time::MAX,
            |_| {},
        );
        let first = machine.first_arrival().unwrap();
        let mut sim = Simulation::new(machine);
        sim.schedule_at(first.0, OnlineEvent::Arrive(first.1));
        while sim.model().completions() < 7 && sim.step() {}
        assert_eq!(sim.model().completions(), 7);
        assert!(sim.model().arrivals() < 100, "stream not exhausted");
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn open_machine_rejects_time_travelling_sources() {
        let lens = vec![(0u32, Dur::from_ticks(1)), (1, Dur::from_ticks(1))];
        let arrivals = vec![(t(10), 0u32), (t(5), 1)];
        let mut machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            arrivals.into_iter(),
            Time::MAX,
            |_| {},
        );
        let first = machine.first_arrival().unwrap();
        let mut sim = Simulation::new(machine);
        sim.schedule_at(first.0, OnlineEvent::Arrive(first.1));
        sim.run_to_completion(100);
    }

    /// [`Fcfs`] plus failure-awareness on its single implicit node: any
    /// commitment overlapping the outage is killed and resubmitted at full
    /// length, and the machine is treated as busy until the repair.
    struct VolatileFcfs {
        fcfs: Fcfs,
    }

    impl Dispatcher for VolatileFcfs {
        type Job = u32;
        fn decide(&mut self, now: Time, pending: &mut Vec<u32>, out: &mut Vec<Commitment<u32>>) {
            self.fcfs.decide(now, pending, out);
        }
        fn node_down(
            &mut self,
            now: Time,
            _node: u32,
            up: Time,
            running: &[Option<Commitment<u32>>],
            kill: &mut Vec<usize>,
            resubmit: &mut Vec<u32>,
        ) {
            for (slot, c) in running.iter().enumerate() {
                if let Some(c) = c {
                    if c.end > now && c.start < up {
                        kill.push(slot);
                        resubmit.push(c.job);
                    }
                }
            }
            if !kill.is_empty() {
                self.fcfs.free_at = up;
            }
        }
    }

    #[test]
    fn node_down_kills_and_resubmits() {
        let lens = vec![(1u32, Dur::from_ticks(10))];
        let mut sim = Simulation::new(OnlineMachine::new(VolatileFcfs {
            fcfs: Fcfs {
                free_at: Time::ZERO,
                lens,
            },
        }));
        sim.schedule_at(t(0), OnlineEvent::Arrive(1));
        sim.schedule_at(t(4), OnlineEvent::NodeDown { node: 0, up: t(7) });
        sim.schedule_at(t(7), OnlineEvent::NodeUp { node: 0 });
        sim.run_to_completion(100);
        let m = sim.model();
        assert_eq!(m.kills(), 1);
        assert_eq!(m.resubmits(), 1);
        assert_eq!(m.running(), 0);
        assert!(m.pending().is_empty());
        // The original [0, 10) run died at 4; the resubmitted copy starts
        // at the repair (the NodeUp decision) and runs its full length.
        assert_eq!(
            m.completed(),
            &[Commitment {
                job: 1,
                start: t(7),
                end: t(17)
            }]
        );
    }

    #[test]
    fn failure_at_commitment_end_neither_double_kills_nor_loses_the_job() {
        // The outage starts exactly when the job ends. NodeDown events are
        // seeded before the run, so FIFO tie-break fires the failure first;
        // the `end > now` victim rule must leave the job alone, and its
        // queued Finish must then complete it exactly once.
        let lens = vec![(1u32, Dur::from_ticks(10))];
        let mut sim = Simulation::new(OnlineMachine::new(VolatileFcfs {
            fcfs: Fcfs {
                free_at: Time::ZERO,
                lens,
            },
        }));
        sim.schedule_at(t(0), OnlineEvent::Arrive(1));
        sim.schedule_at(t(10), OnlineEvent::NodeDown { node: 0, up: t(12) });
        sim.schedule_at(t(12), OnlineEvent::NodeUp { node: 0 });
        sim.run_to_completion(100);
        let m = sim.model();
        assert_eq!(m.kills(), 0);
        assert_eq!(m.resubmits(), 0);
        assert_eq!(
            m.completed(),
            &[Commitment {
                job: 1,
                start: t(0),
                end: t(10)
            }]
        );
    }

    #[test]
    #[should_panic(expected = "does not model node volatility")]
    fn open_machine_rejects_volatility_events() {
        let lens = vec![(0u32, Dur::from_ticks(1))];
        let machine = OpenOnlineMachine::new(
            Fcfs {
                free_at: Time::ZERO,
                lens,
            },
            std::iter::empty::<(Time, u32)>(),
            Time::MAX,
            |_| {},
        );
        let mut sim = Simulation::new(machine);
        sim.schedule_at(t(0), OnlineEvent::NodeDown { node: 3, up: t(5) });
        sim.run_to_completion(10);
    }

    #[test]
    #[should_panic(expected = "drain exactly")]
    fn dispatcher_must_drain_committed_jobs() {
        struct Sloppy;
        impl Dispatcher for Sloppy {
            type Job = u32;
            fn decide(
                &mut self,
                now: Time,
                pending: &mut Vec<u32>,
                out: &mut Vec<Commitment<u32>>,
            ) {
                // Commits the job but forgets to remove it from pending.
                out.push(Commitment {
                    job: pending[0],
                    start: now,
                    end: now,
                });
            }
        }
        let mut sim = Simulation::new(OnlineMachine::new(Sloppy));
        sim.schedule_at(t(0), OnlineEvent::Arrive(1));
        sim.run_to_completion(10);
    }
}
