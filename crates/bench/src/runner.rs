//! The generic experiment runner: policies × workloads × platforms through
//! one code path.
//!
//! Every experiment binary used to hand-roll its own policy dispatch and
//! its own CSV columns; the [`ExperimentRunner`] replaces those loops. A
//! run crosses a policy set (usually [`lsps_core::policy::registry`]
//! entries) with named workload generators and platforms, pushes every
//! cell through `Policy::run` → validation → `lsps_metrics`, and emits one
//! CSV schema ([`CSV_HEADER`]) for all binaries. Completion records can be
//! extracted either directly from the schedule or by replaying it through
//! the `lsps-des` event engine ([`Executor::DesReplay`]) — the first step
//! toward fully event-driven online experiments.

use std::collections::HashMap;

use lsps_core::policy::{Policy, PolicyCtx};
use lsps_core::schedule::Schedule;
use lsps_des::{Ctx, Model, SimRng, Simulation, Time};
use lsps_metrics::{
    cmax_lower_bound, csum_lower_bound, wsum_lower_bound, CompletedJob, Criteria, Summary,
};
use lsps_workload::{Job, JobId, WorkloadSpec};

use crate::Table;

/// A named machine size (platforms are identical-processor clusters at
/// this layer; heterogeneity lives in `lsps-grid`).
#[derive(Clone, Debug)]
pub struct PlatformCase {
    /// Display/CSV name.
    pub name: String,
    /// Processor count.
    pub m: usize,
}

impl PlatformCase {
    /// A named `m`-processor machine.
    pub fn new(name: impl Into<String>, m: usize) -> PlatformCase {
        PlatformCase {
            name: name.into(),
            m,
        }
    }
}

/// A workload generator: machine size + seeded RNG in, jobs out.
pub type WorkloadGen = Box<dyn Fn(usize, &mut SimRng) -> Vec<Job>>;

/// A named, seeded workload generator. Generation receives the machine
/// size so widths can be drawn relative to the platform.
pub struct WorkloadCase {
    /// Display/CSV name of the workload family.
    pub name: String,
    /// Seed (also a CSV column, so multi-seed sweeps stay one schema).
    pub seed: u64,
    gen: WorkloadGen,
}

impl WorkloadCase {
    /// A workload from an arbitrary generator function.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        gen: impl Fn(usize, &mut SimRng) -> Vec<Job> + 'static,
    ) -> WorkloadCase {
        WorkloadCase {
            name: name.into(),
            seed,
            gen: Box::new(gen),
        }
    }

    /// A workload from a [`WorkloadSpec`].
    pub fn from_spec(name: impl Into<String>, seed: u64, spec: WorkloadSpec) -> WorkloadCase {
        WorkloadCase::new(name, seed, move |m, rng| spec.generate(m, rng))
    }

    /// A fixed job list (seed recorded but unused).
    pub fn fixed(name: impl Into<String>, seed: u64, jobs: Vec<Job>) -> WorkloadCase {
        WorkloadCase::new(name, seed, move |_m, _rng| jobs.clone())
    }

    /// Generate the jobs for machine size `m`.
    pub fn generate(&self, m: usize) -> Vec<Job> {
        let mut rng = SimRng::seed_from(self.seed);
        (self.gen)(m, &mut rng)
    }
}

/// How completion records are extracted from a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Executor {
    /// Read them straight off the assignments.
    #[default]
    Direct,
    /// Replay the schedule through the `lsps-des` engine: completions are
    /// collected at simulated event times, cross-checking the static view
    /// against the event-driven one.
    DesReplay,
}

/// One (policy × workload × platform) outcome.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Policy name (registry identifier).
    pub policy: String,
    /// Workload family name.
    pub workload: String,
    /// Workload seed.
    pub seed: u64,
    /// Platform name.
    pub platform: String,
    /// Machine size.
    pub m: usize,
    /// Number of jobs scheduled.
    pub n: usize,
    /// All §3 criteria.
    pub criteria: Criteria,
    /// Makespan over the certified `Cmax` lower bound.
    pub cmax_ratio: f64,
    /// `Σ Ci` over its lower bound.
    pub csum_ratio: f64,
    /// `Σ ωi Ci` over its lower bound.
    pub wsum_ratio: f64,
    /// Machine utilization in `[0, 1]`.
    pub utilization: f64,
}

/// The one CSV schema every runner-based binary emits.
pub const CSV_HEADER: &str = "policy,workload,seed,platform,m,n,cmax_s,cmax_ratio,csum_ratio,\
                              wsum_ratio,mean_flow_s,max_flow_s,utilization";

impl Cell {
    /// Render as a [`CSV_HEADER`] row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            self.policy,
            self.workload,
            self.seed,
            self.platform,
            self.m,
            self.n,
            self.criteria.cmax,
            self.cmax_ratio,
            self.csum_ratio,
            self.wsum_ratio,
            self.criteria.mean_flow,
            self.criteria.max_flow,
            self.utilization,
        )
    }
}

/// Render cells as the standard CSV document.
pub fn to_csv(cells: &[Cell]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for c in cells {
        out.push_str(&c.csv_row());
        out.push('\n');
    }
    out
}

/// Print cells as a fixed-width table on stdout.
pub fn print_cells(cells: &[Cell]) {
    let mut table = Table::new(&[
        "policy",
        "workload",
        "seed",
        "platform",
        "Cmax ratio",
        "sC ratio",
        "sWC ratio",
        "mean flow (s)",
        "max flow (s)",
        "util %",
    ]);
    for c in cells {
        table.row(vec![
            c.policy.clone(),
            c.workload.clone(),
            c.seed.to_string(),
            c.platform.clone(),
            format!("{:.3}", c.cmax_ratio),
            format!("{:.3}", c.csum_ratio),
            format!("{:.3}", c.wsum_ratio),
            format!("{:.1}", c.criteria.mean_flow),
            format!("{:.1}", c.criteria.max_flow),
            format!("{:.1}", c.utilization * 100.0),
        ]);
    }
    table.print();
}

/// Aggregate a cell metric over seeds, grouped by `key`. Returns groups in
/// first-seen order.
pub fn summarize_by<K: Eq + std::hash::Hash + Clone>(
    cells: &[Cell],
    key: impl Fn(&Cell) -> K,
    metric: impl Fn(&Cell) -> f64,
) -> Vec<(K, Summary)> {
    let mut order: Vec<K> = Vec::new();
    let mut groups: HashMap<K, Summary> = HashMap::new();
    for c in cells {
        let k = key(c);
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Summary::new()
            })
            .add(metric(c));
    }
    order
        .into_iter()
        .map(|k| {
            let s = groups.remove(&k).expect("group exists");
            (k, s)
        })
        .collect()
}

/// The declarative experiment: run every policy over every workload over
/// every platform through one code path.
pub struct ExperimentRunner {
    /// Policies under comparison.
    pub policies: Vec<Box<dyn Policy>>,
    /// Workload cases (family × seed).
    pub workloads: Vec<WorkloadCase>,
    /// Platforms.
    pub platforms: Vec<PlatformCase>,
    /// Shared scheduling context.
    pub ctx: PolicyCtx,
    /// Completion-record extraction mode.
    pub executor: Executor,
}

impl ExperimentRunner {
    /// A runner over the given policies with default context, one platform
    /// to be added via the struct fields.
    pub fn new(policies: Vec<Box<dyn Policy>>) -> ExperimentRunner {
        ExperimentRunner {
            policies,
            workloads: Vec::new(),
            platforms: Vec::new(),
            ctx: PolicyCtx::default(),
            executor: Executor::Direct,
        }
    }

    /// Run the full cross product. Every schedule is validated against the
    /// policy's as-scheduled job view — a policy bug fails loudly instead
    /// of producing flattering numbers.
    pub fn run(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for platform in &self.platforms {
            for workload in &self.workloads {
                let jobs = workload.generate(platform.m);
                for policy in &self.policies {
                    cells.push(self.run_cell(policy.as_ref(), workload, platform, &jobs));
                }
            }
        }
        cells
    }

    fn run_cell(
        &self,
        policy: &dyn Policy,
        workload: &WorkloadCase,
        platform: &PlatformCase,
        jobs: &[Job],
    ) -> Cell {
        let run = policy.run(jobs, platform.m, &self.ctx);
        run.validate().unwrap_or_else(|e| {
            panic!(
                "{} on {}/{} (m={}): invalid schedule: {e}",
                policy.name(),
                workload.name,
                workload.seed,
                platform.m
            )
        });
        let records = match self.executor {
            Executor::Direct => run.schedule.completed(&run.jobs),
            Executor::DesReplay => des_replay(&run.schedule, &run.jobs),
        };
        let criteria = Criteria::evaluate(&records);
        // Bounds on the as-scheduled jobs: policies that strip releases or
        // rigidify are measured against the instance they actually solved.
        let cmax_lb = cmax_lower_bound(&run.jobs, platform.m).as_secs_f64();
        let csum_lb = csum_lower_bound(&run.jobs, platform.m);
        let wsum_lb = wsum_lower_bound(&run.jobs, platform.m);
        Cell {
            policy: policy.name().to_string(),
            workload: workload.name.clone(),
            seed: workload.seed,
            platform: platform.name.clone(),
            m: platform.m,
            n: run.jobs.len(),
            utilization: criteria.utilization(platform.m),
            cmax_ratio: criteria.cmax / cmax_lb.max(f64::MIN_POSITIVE),
            csum_ratio: criteria.sum_completion / csum_lb.max(f64::MIN_POSITIVE),
            wsum_ratio: criteria.weighted_sum_completion / wsum_lb.max(f64::MIN_POSITIVE),
            criteria,
        }
    }
}

struct ReplayModel {
    jobs: HashMap<JobId, Job>,
    records: Vec<CompletedJob>,
}

enum ReplayEvent {
    Finish {
        job: JobId,
        start: Time,
        procs: usize,
    },
}

impl Model for ReplayModel {
    type Event = ReplayEvent;

    fn handle(&mut self, now: Time, event: ReplayEvent, _ctx: &mut Ctx<'_, ReplayEvent>) {
        let ReplayEvent::Finish { job, start, procs } = event;
        let j = self.jobs.get(&job).expect("replayed job exists");
        self.records
            .push(CompletedJob::from_job(j, start, now, procs));
    }
}

/// Replay a schedule through the DES engine: one completion event per
/// assignment, records collected at simulated event times. The outcome is
/// identical to [`Schedule::completed`] up to record order (events fire in
/// time order) — asserting that equivalence is exactly the point.
pub fn des_replay(schedule: &Schedule, jobs: &[Job]) -> Vec<CompletedJob> {
    let model = ReplayModel {
        jobs: jobs.iter().map(|j| (j.id, j.clone())).collect(),
        records: Vec::new(),
    };
    let mut sim = Simulation::new(model);
    for a in schedule.assignments() {
        sim.schedule_at(
            a.end,
            ReplayEvent::Finish {
                job: a.job,
                start: a.start,
                procs: a.procs.len(),
            },
        );
    }
    let events = schedule.len() as u64 + 1;
    sim.run_to_completion(events);
    let mut records = sim.into_model().records;
    records.sort_by_key(|r| r.id);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_core::policy::registry;
    use lsps_des::Dur;

    fn runner() -> ExperimentRunner {
        let mut r = ExperimentRunner::new(registry());
        r.workloads = vec![
            WorkloadCase::from_spec("fig2-par", 7, WorkloadSpec::fig2_parallel(30)),
            WorkloadCase::from_spec("fig2-seq", 7, WorkloadSpec::fig2_sequential(30)),
        ];
        r.platforms = vec![PlatformCase::new("m32", 32)];
        r
    }

    #[test]
    fn full_registry_cross_product_runs() {
        let r = runner();
        let cells = r.run();
        assert_eq!(cells.len(), registry().len() * 2);
        for c in &cells {
            assert!(c.cmax_ratio >= 1.0 - 1e-9, "{}: beats the LB?", c.policy);
            assert!(c.utilization <= 1.0 + 1e-9, "{}", c.policy);
            assert_eq!(c.n, 30);
        }
    }

    #[test]
    fn des_replay_matches_direct_extraction() {
        let mut r = runner();
        r.workloads.truncate(1);
        let direct = r.run();
        r.executor = Executor::DesReplay;
        let replayed = r.run();
        assert_eq!(direct.len(), replayed.len());
        for (a, b) in direct.iter().zip(&replayed) {
            assert_eq!(a.policy, b.policy);
            assert!((a.criteria.cmax - b.criteria.cmax).abs() < 1e-12);
            assert!((a.criteria.mean_flow - b.criteria.mean_flow).abs() < 1e-12);
            assert!(
                (a.criteria.weighted_sum_completion - b.criteria.weighted_sum_completion).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn csv_schema_is_stable() {
        let mut r = runner();
        r.workloads.truncate(1);
        r.policies = vec![lsps_core::policy::by_name("list-fcfs").expect("registered")];
        let cells = r.run();
        let csv = to_csv(&cells);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().expect("one data row");
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        assert!(row.starts_with("list-fcfs,fig2-par,7,m32,32,30,"));
    }

    #[test]
    fn summarize_groups_in_first_seen_order() {
        let mk = |policy: &str, v: f64| Cell {
            policy: policy.into(),
            workload: "w".into(),
            seed: 0,
            platform: "p".into(),
            m: 1,
            n: 1,
            criteria: Criteria::evaluate(&[CompletedJob::from_job(
                &Job::sequential(1, Dur::from_ticks(1)),
                Time::ZERO,
                Time::from_ticks(1),
                1,
            )]),
            cmax_ratio: v,
            csum_ratio: v,
            wsum_ratio: v,
            utilization: 1.0,
        };
        let cells = vec![mk("b", 1.0), mk("a", 2.0), mk("b", 3.0)];
        let grouped = summarize_by(&cells, |c| c.policy.clone(), |c| c.cmax_ratio);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "b");
        assert_eq!(grouped[0].1.mean(), 2.0);
        assert_eq!(grouped[1].0, "a");
    }
}
