//! Minimal HTTP/1.1 over [`std::net::TcpStream`]: exactly what the
//! campaign API needs — request line + headers + `Content-Length` body in,
//! `Connection: close` response out — and a matching blocking client for
//! tests, benches and CI probes. No keep-alive, no chunked encoding, no
//! TLS; every connection carries one request.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Headers are rejected past this many bytes (per request).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Bodies are rejected past this many bytes (a campaign spec is KBs).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included verbatim.
    pub path: String,
    /// Decoded body (empty when there was none).
    pub body: String,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line without path"))?;
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not utf-8"))?;
    Ok(Request { method, path, body })
}

/// Write a full response and close the connection (via `Connection:
/// close`; the caller drops the stream).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Blocking one-shot client request; returns `(status, body)`.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line `{}`", status_line.trim())))?;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        if h.trim_end().is_empty() {
            break;
        }
    }
    // `Connection: close` means the body is everything up to EOF.
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status, body))
}

/// `GET path` against `addr`; returns `(status, body)`.
pub fn get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

/// `POST body` to `path` on `addr`; returns `(status, body)`.
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}
