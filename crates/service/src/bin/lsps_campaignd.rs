//! `lsps-campaignd` — the long-running campaign service.
//!
//! ```text
//! lsps-campaignd [--port P] [--workers N] [--cache-dir DIR] [--journal-dir DIR]
//!                [--base-dir DIR] [--cell-timeout-s S] [--worker-cmd PATH]
//!                [--grace-s S]
//! ```
//!
//! Boots the worker fleet, replays the spec journal (resuming every
//! previously accepted campaign from the cell cache), prints the bound
//! address as `listening on http://127.0.0.1:<port>` and serves:
//!
//! * `POST /campaigns` — submit a [`lsps_scenario::CampaignSpec`] JSON
//!   body; idempotent by canonical spec content.
//! * `GET /campaigns/{id}` — per-cell progress counts.
//! * `GET /campaigns/{id}/aggregate` — the aggregate CSV, byte-identical
//!   to `lsps-campaign`'s, once the campaign completes.
//! * `GET /healthz` — liveness.
//!
//! `--port 0` (the default) binds an ephemeral port — scripts scrape it
//! from the `listening on` line.
//!
//! SIGTERM drains instead of dying (Unix): new submissions get 503,
//! in-flight cells have `--grace-s` seconds to finish and persist to the
//! cell cache, then the fleet stops. A subsequent boot on the same
//! journal and cache resumes every campaign without recomputing anything
//! the grace period covered. SIGKILL is also safe — just slower to
//! resume.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lsps_service::daemon::default_worker_cmd;
use lsps_service::{Daemon, DaemonConfig};

const USAGE: &str = "usage: lsps-campaignd [--port P] [--workers N] [--cache-dir DIR] \
                     [--journal-dir DIR] [--base-dir DIR] [--cell-timeout-s S] \
                     [--worker-cmd PATH] [--grace-s S]";

/// SIGTERM flag + handler, installed through the C `signal` entry point
/// std already links — no new dependency. The handler only flips an
/// atomic; the watcher thread in `run` does the actual drain.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static RECEIVED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
        }
    }
}

struct Args {
    port: u16,
    grace: Duration,
    cfg: DaemonConfig,
}

/// `Ok(None)` means help was requested: print usage to stdout, exit 0.
fn parse_args() -> Result<Option<Args>, String> {
    let mut port = 0u16;
    let mut grace = Duration::from_secs(30);
    let mut cfg = DaemonConfig::new(default_worker_cmd());
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--port" => {
                let v = value(&mut argv, "--port")?;
                port = v.parse().map_err(|_| format!("bad port `{v}`"))?;
            }
            "--workers" => {
                let v = value(&mut argv, "--workers")?;
                cfg.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--cache-dir" => cfg.cache_dir = PathBuf::from(value(&mut argv, "--cache-dir")?),
            "--journal-dir" => cfg.journal_dir = PathBuf::from(value(&mut argv, "--journal-dir")?),
            "--base-dir" => cfg.base_dir = Some(PathBuf::from(value(&mut argv, "--base-dir")?)),
            "--cell-timeout-s" => {
                let v = value(&mut argv, "--cell-timeout-s")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
                cfg.cell_timeout = Duration::from_secs(secs);
            }
            "--worker-cmd" => cfg.worker_cmd = PathBuf::from(value(&mut argv, "--worker-cmd")?),
            "--grace-s" => {
                let v = value(&mut argv, "--grace-s")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad grace period `{v}`"))?;
                grace = Duration::from_secs(secs);
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(Args { port, grace, cfg }))
}

fn run() -> Result<(), String> {
    let Some(mut args) = parse_args()? else {
        println!("{USAGE}");
        return Ok(());
    };
    // Chaos hook: a fault in the daemon's own environment applies to
    // first-generation workers only. Scrub it from our environment so
    // respawned workers (which inherit it) run clean — the daemon's
    // recovery contract, and what CI's chaos smoke relies on.
    if let Ok(fault) = std::env::var("LSPS_WORKER_FAULT") {
        eprintln!("[campaignd] LSPS_WORKER_FAULT={fault}: first-generation workers run faulty");
        args.cfg
            .worker_env
            .push(("LSPS_WORKER_FAULT".into(), fault));
        std::env::remove_var("LSPS_WORKER_FAULT");
    }
    let listener = TcpListener::bind(("127.0.0.1", args.port)).map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let daemon = Daemon::start(args.cfg).map_err(|e| format!("start: {e}"))?;
    #[cfg(unix)]
    {
        sigterm::install();
        let daemon = Arc::clone(&daemon);
        let grace = args.grace;
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            while !sigterm::RECEIVED.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("[campaignd] SIGTERM: draining (grace {}s)", grace.as_secs());
            let drained = daemon.drain(grace);
            eprintln!(
                "[campaignd] drain {}; shut down",
                if drained { "complete" } else { "timed out" }
            );
        });
    }
    #[cfg(not(unix))]
    let _ = (args.grace, Arc::strong_count(&daemon));
    println!("listening on http://{addr}");
    daemon.serve(listener).map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
