//! TAB-G — measured performance ratios vs. the proven guarantees.
//!
//! The paper's quantitative claims are approximation ratios:
//!
//! * MRT (off-line moldable makespan): 3/2 + ε            (§4.1)
//! * batch(MRT) (on-line, release dates): 2·(3/2+ε) = 3+ε (§4.2)
//! * SMART (rigid, Σ Ci / Σ ωiCi): 8 / 8.53               (§4.3)
//! * bi-criteria (both criteria): 4ρ = 8 with ρ = 2       (§4.4)
//!
//! A thin wrapper over built-in campaign specs
//! ([`lsps_scenario::campaign::builtin::guarantees_spec`]): the claims are
//! rows of a table (registry policy name × workload family × criterion ×
//! proven bound); every measurement flows through the campaign layer, the
//! same runner code path and the standard CSV schema. The instance
//! families (`moldable0`, `moldable-online`, `rigid0`) live in
//! [`lsps_scenario::families`]; sequential seed derivation reproduces the
//! historical `seed_base + k` streams byte-for-byte. Ratios divide by
//! *certified lower bounds*, so they upper-bound the true ratio vs OPT.
//! The MRT two-shelf invariant (`Cmax ≤ 3λ*/2`) needs the accepted guess
//! λ*, which only `mrt_schedule_with_lambda` exposes — that single row is
//! measured directly.

use lsps_bench::runner::{self, summarize_by};
use lsps_bench::{write_csv, Table};
use lsps_core::mrt::{mrt_schedule_with_lambda, MrtParams};
use lsps_des::SimRng;
use lsps_metrics::Summary;
use lsps_scenario::campaign::builtin::guarantees_spec;
use lsps_scenario::families::moldable_instance;
use lsps_scenario::{run_campaign, CampaignOptions};

const SEEDS: u64 = 12;
const SIZES: [(usize, usize); 4] = [(16, 10), (64, 40), (100, 80), (256, 120)];

/// One proven claim: measure `policy` over `family` workloads, read the
/// `ratio` column, compare against `proven`.
struct Claim {
    policy: &'static str,
    /// Workload family: "moldable0" (all released at 0), "moldable-online"
    /// or "rigid0" — the instance families of the original experiment.
    family: &'static str,
    criterion: &'static str,
    ratio: fn(&runner::Cell) -> f64,
    proven: f64,
    /// Stream offset so each claim reproduces its historical instances.
    seed_base: u64,
}

const CLAIMS: &[Claim] = &[
    Claim {
        policy: "mrt",
        family: "moldable0",
        criterion: "Cmax / LB",
        ratio: |c| c.cmax_ratio,
        proven: 1.5,
        seed_base: 0,
    },
    Claim {
        policy: "batch-mrt",
        family: "moldable-online",
        criterion: "Cmax / LB",
        ratio: |c| c.cmax_ratio,
        proven: 3.0,
        seed_base: 100,
    },
    Claim {
        policy: "smart",
        family: "rigid0",
        criterion: "sum C / LB",
        ratio: |c| c.csum_ratio,
        proven: 8.0,
        seed_base: 200,
    },
    Claim {
        policy: "smart-weighted",
        family: "rigid0",
        criterion: "sum wC / LB",
        ratio: |c| c.wsum_ratio,
        proven: 8.53,
        seed_base: 200,
    },
    Claim {
        policy: "bicriteria",
        family: "moldable-online",
        criterion: "Cmax / LB",
        ratio: |c| c.cmax_ratio,
        proven: 8.0,
        seed_base: 300,
    },
    Claim {
        policy: "bicriteria",
        family: "moldable-online",
        criterion: "sum wC / LB",
        ratio: |c| c.wsum_ratio,
        proven: 8.0,
        seed_base: 300,
    },
];

fn main() {
    println!("TAB-G — measured ratios vs proven guarantees ({SEEDS} seeds × sizes)\n");

    // The checkable claims: one campaign per (claim, machine size) so every
    // workload is paired with its historical platform — the seed × (m, n)
    // instance families of the original experiment, nothing extra.
    let mut csv_cells = Vec::new();
    let mut measured: Vec<(usize, Summary)> = Vec::new();
    for (idx, claim) in CLAIMS.iter().enumerate() {
        let mut summary = Summary::new();
        for &(m, n) in &SIZES {
            let spec = guarantees_spec(
                claim.policy,
                claim.family,
                claim.seed_base,
                SEEDS as usize,
                m,
                n,
            );
            let report = run_campaign(&spec, &CampaignOptions::default())
                .expect("built-in campaign spec runs");
            for c in &report.cells {
                summary.add((claim.ratio)(c));
            }
            csv_cells.extend(report.cells);
        }
        measured.push((idx, summary));
    }

    let mut table = Table::new(&["algorithm", "criterion", "proven", "mean", "max", "ok"]);
    // MRT two-shelf invariant first: the only row needing λ*.
    let mut mrt_lambda = Summary::new();
    for seed in 0..SEEDS {
        for &(m, n) in &SIZES {
            let mut rng = SimRng::seed_from(seed).child(m as u64);
            let jobs = moldable_instance(&mut rng, n, m, false);
            let (s, lambda) = mrt_schedule_with_lambda(&jobs, m, MrtParams::default());
            s.validate(&jobs).expect("valid");
            mrt_lambda.add(s.makespan().ticks() as f64 / lambda as f64);
        }
    }
    table.row(vec![
        "MRT (two-shelf invariant)".into(),
        "Cmax / lambda*".into(),
        "1.50".into(),
        format!("{:.3}", mrt_lambda.mean()),
        format!("{:.3}", mrt_lambda.max()),
        if mrt_lambda.max() <= 1.5 + 1e-9 {
            "yes"
        } else {
            "VIOLATED"
        }
        .into(),
    ]);

    for (idx, summary) in &measured {
        let claim = &CLAIMS[*idx];
        // The MRT 3/2 bound is vs OPT; against the area/tallest *lower
        // bound* only the invariant row above is checkable.
        let checkable = claim.policy != "mrt";
        let verdict = if !checkable {
            "info*".to_string()
        } else if summary.max() <= claim.proven + 1e-9 {
            "yes".to_string()
        } else {
            "VIOLATED".to_string()
        };
        table.row(vec![
            claim.policy.into(),
            claim.criterion.into(),
            format!("{:.2}", claim.proven),
            format!("{:.3}", summary.mean()),
            format!("{:.3}", summary.max()),
            verdict,
        ]);
    }
    table.print();
    write_csv("guarantees.csv", &runner::to_csv(&csv_cells));

    // Per-policy aggregate over the standard cells, for quick scanning.
    println!("\nper-policy Cmax-ratio distribution over every cell:");
    let mut t2 = Table::new(&["policy", "n cells", "mean", "max"]);
    for (policy, s) in summarize_by(&csv_cells, |c| c.policy.clone(), |c| c.cmax_ratio) {
        t2.row(vec![
            policy,
            s.n().to_string(),
            format!("{:.3}", s.mean()),
            format!("{:.3}", s.max()),
        ]);
    }
    t2.print();
    println!(
        "\nnote: measured ratios divide by certified lower bounds, not OPT, so \
         they over-state the true ratio."
    );
    println!(
        "*    the 3/2 bound of MRT is vs OPT; vs the area/tallest LB the checkable \
         statement is the two-shelf invariant row above it (LB gap included here)."
    );
}
