//! TAB-DLT — divisible-load distribution policies (§2.1, §5.2).
//!
//! Compares, on the three Fig. 3 interconnect classes and across load
//! sizes:
//!
//! * one-round bus closed form (with and without result gathering);
//! * one-round star, served by bandwidth vs by CPU speed (ordering
//!   ablation);
//! * multi-installment with the best round count (latency/pipelining
//!   trade-off);
//! * tuned dynamic self-scheduling (the work-stealing baseline);
//! * the steady-state throughput bound (asymptotic optimum for campaigns).
//!
//! Expected shape: multi-round and self-scheduling win on fast networks /
//! big loads; latency pushes the optimum toward one round and few
//! participants; every makespan respects the steady-state bound.

use lsps_bench::{write_csv, Table};
use lsps_dlt::multiround::best_round_count;
use lsps_dlt::selfsched::best_chunk;
use lsps_dlt::{
    bus_single_round, multi_round, self_schedule, star_single_round, star_steady_state,
    MultiRoundParams, Worker, WorkerOrder,
};

struct NetClass {
    name: &'static str,
    bandwidth: f64, // units/s across the link (1 unit = 1 s of reference CPU)
    latency: f64,
}

fn main() {
    println!("TAB-DLT — divisible load policies on Fig. 3 network classes\n");
    // 1 unit = 1 reference-CPU-second; assume 10 MB of data per unit, so a
    // 250 MB/s Myrinet moves 25 units/s, etc.
    let nets = [
        NetClass {
            name: "myrinet",
            bandwidth: 25.0,
            latency: 10e-6,
        },
        NetClass {
            name: "gige",
            bandwidth: 12.5,
            latency: 50e-6,
        },
        NetClass {
            name: "eth100",
            bandwidth: 1.25,
            latency: 100e-6,
        },
        NetClass {
            name: "eth100+lat",
            bandwidth: 1.25,
            latency: 0.5,
        },
    ];
    let n_workers = 16usize;
    let loads = [1e3, 1e4, 1e5];

    let mut table = Table::new(&[
        "net",
        "load",
        "1-round",
        "1-rnd+gather",
        "star byBW",
        "star bySpeed",
        "multi-round",
        "(R)",
        "self-sched",
        "steady bound",
    ]);
    let mut csv = String::from(
        "net,load,one_round,one_round_gather,star_bybw,star_byspeed,multi_round,best_r,self_sched,steady_bound\n",
    );
    for net in &nets {
        // Mildly heterogeneous CPUs: 1.0 and 0.6 alternating (two CIMENT
        // generations).
        let speeds: Vec<f64> = (0..n_workers)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.6 })
            .collect();
        let workers: Vec<Worker> = speeds
            .iter()
            .map(|&s| Worker::new(s, net.bandwidth, net.latency))
            .collect();
        // Heterogeneous-links variant for the ordering ablation: half the
        // links degraded 4×.
        let het_workers: Vec<Worker> = (0..speeds.len())
            .map(|i| {
                let bw = if i % 2 == 0 {
                    net.bandwidth / 4.0
                } else {
                    net.bandwidth
                };
                // Anti-correlated speed/bandwidth: fast CPUs on slow links.
                Worker::new(if i % 2 == 0 { 1.0 } else { 0.6 }, bw, net.latency)
            })
            .collect();
        let steady = star_steady_state(&workers);
        for &w in &loads {
            let one = bus_single_round(w, &speeds, net.bandwidth, net.latency, 0.0);
            let one_g = bus_single_round(w, &speeds, net.bandwidth, net.latency, 0.2);
            let by_bw = star_single_round(w, &het_workers, WorkerOrder::ByBandwidth);
            let by_speed = star_single_round(w, &het_workers, WorkerOrder::BySpeed);
            let (best_r, multi) = best_round_count(w, &workers, 32, 1.5);
            let (_, dynamic) = best_chunk(w, &workers);
            let bound = w / steady.throughput;
            table.row(vec![
                net.name.into(),
                format!("{w:.0}"),
                format!("{:.1}", one.makespan),
                format!("{:.1}", one_g.makespan),
                format!("{:.1}", by_bw.makespan),
                format!("{:.1}", by_speed.makespan),
                format!("{:.1}", multi.makespan),
                best_r.to_string(),
                format!("{:.1}", dynamic.makespan),
                format!("{:.1}", bound),
            ]);
            csv.push_str(&format!(
                "{},{w},{:.3},{:.3},{:.3},{:.3},{:.3},{best_r},{:.3},{:.3}\n",
                net.name,
                one.makespan,
                one_g.makespan,
                by_bw.makespan,
                by_speed.makespan,
                multi.makespan,
                dynamic.makespan,
                bound
            ));
        }
    }
    table.print();
    write_csv("dlt_policies.csv", &csv);

    // Round-count sweep detail on one config (the crossover figure).
    println!("\nround-count sweep (gige, load 1e4):");
    let workers: Vec<Worker> = (0..n_workers)
        .map(|i| Worker::new(if i % 2 == 0 { 1.0 } else { 0.6 }, 12.5, 50e-6))
        .collect();
    let mut t2 = Table::new(&["rounds", "makespan (s)"]);
    let mut csv2 = String::from("rounds,makespan\n");
    for r in [1usize, 2, 4, 8, 16, 32, 64] {
        let plan = multi_round(
            1e4,
            &workers,
            MultiRoundParams {
                rounds: r,
                growth: 1.5,
            },
        );
        t2.row(vec![r.to_string(), format!("{:.2}", plan.makespan)]);
        csv2.push_str(&format!("{r},{:.4}\n", plan.makespan));
    }
    t2.print();
    write_csv("dlt_rounds.csv", &csv2);

    // Self-scheduling chunk sweep (overhead vs imbalance).
    println!("\nchunk sweep (eth100+lat, load 1e4):");
    let lat_workers: Vec<Worker> = (0..n_workers)
        .map(|i| Worker::new(if i % 2 == 0 { 1.0 } else { 0.6 }, 1.25, 0.5))
        .collect();
    let mut t3 = Table::new(&["chunk", "makespan (s)"]);
    let mut csv3 = String::from("chunk,makespan\n");
    let mut c = 10.0;
    while c <= 10_000.0 {
        let plan = self_schedule(1e4, &lat_workers, c);
        t3.row(vec![format!("{c:.0}"), format!("{:.1}", plan.makespan)]);
        csv3.push_str(&format!("{c},{:.4}\n", plan.makespan));
        c *= 4.0;
    }
    t3.print();
    write_csv("dlt_chunks.csv", &csv3);
}
