//! Campaign cache correctness: warm reruns are byte-identical, poisoned
//! shards are recomputed (never trusted), and resuming after an
//! interruption reproduces a cold run exactly — all on the checked-in
//! `examples/small_campaign.json`.

use std::fs;
use std::path::{Path, PathBuf};

use lsps_scenario::runner::{to_csv, ExperimentRunner, PlatformCase, WorkloadCase};
use lsps_scenario::spec::{ReplicationSpec, SeedDerivation, WorkloadEntry, WorkloadSource};
use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec};
use lsps_workload::WorkloadSpec;

fn example_spec() -> (CampaignSpec, PathBuf) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/small_campaign.json");
    let text = fs::read_to_string(&path).expect("checked-in example spec");
    let spec: CampaignSpec = serde_json::from_str(&text).expect("example spec parses");
    (spec, path.parent().expect("spec dir").to_path_buf())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-campaign-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(base_dir: &Path, cache: Option<PathBuf>) -> CampaignOptions {
    CampaignOptions {
        cache_dir: cache,
        threads: 0,
        base_dir: Some(base_dir.to_path_buf()),
    }
}

#[test]
fn warm_rerun_is_fully_cached_and_byte_identical() {
    let (spec, base) = example_spec();
    let cache = temp_dir("warm");
    let cold = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("cold run");
    assert_eq!(cold.total, spec.cell_count());
    assert_eq!(cold.cache_hits, 0, "cold cache serves nothing");
    let warm = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("warm run");
    assert_eq!(warm.cache_hits, warm.total, "every cell cached");
    assert!((warm.hit_rate() - 100.0).abs() < 1e-12);
    assert_eq!(cold.raw_csv, warm.raw_csv, "raw CSV byte-identical");
    assert_eq!(
        cold.aggregate_csv, warm.aggregate_csv,
        "aggregate CSV byte-identical"
    );
    // The cache is an accelerator, not an input: an uncached run agrees.
    let uncached = run_campaign(&spec, &opts(&base, None)).expect("uncached run");
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(cold.raw_csv, uncached.raw_csv);
    fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn poisoned_shard_is_recomputed_not_trusted() {
    let (spec, base) = example_spec();
    let cache = temp_dir("poison");
    let cold = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("cold run");
    // Poison one shard: flip a digit inside the serialized cell without
    // touching the stored content hash.
    let shard = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("at least one shard");
    let text = fs::read_to_string(&shard).unwrap();
    let at = text.rfind("\"utilization\":").expect("cell payload") + "\"utilization\":".len();
    let mut bytes = text.into_bytes();
    let digit = bytes[at + 2]; // inside the float's digits
    bytes[at + 2] = if digit == b'9' { b'8' } else { b'9' };
    fs::write(&shard, &bytes).unwrap();
    let rerun = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("rerun");
    assert_eq!(
        rerun.cache_hits,
        rerun.total - 1,
        "exactly the poisoned cell recomputes"
    );
    assert_eq!(cold.raw_csv, rerun.raw_csv, "poison never reaches output");
    assert_eq!(cold.aggregate_csv, rerun.aggregate_csv);
    // The recomputation repaired the shard: next run is fully cached.
    let healed = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("healed");
    assert_eq!(healed.cache_hits, healed.total);
    fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn resume_after_interruption_matches_cold_run() {
    let (spec, base) = example_spec();
    let cache = temp_dir("resume");
    let cold = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("cold run");
    // Simulate an interrupted campaign: only half the shards survived.
    let mut shards: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    shards.sort();
    let removed = shards.len() / 2;
    for p in shards.iter().take(removed) {
        fs::remove_file(p).unwrap();
    }
    let resumed = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("resume");
    assert_eq!(resumed.cache_hits, resumed.total - removed);
    assert_eq!(cold.raw_csv, resumed.raw_csv, "resume is byte-identical");
    assert_eq!(cold.aggregate_csv, resumed.aggregate_csv);
    fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn aggregate_order_independent_of_thread_count() {
    // Aggregate row order is sorted on the canonical cell-order key (each
    // group's first cell index), so the worker-pool width — 1 thread vs 8 —
    // must never reorder (or otherwise alter) a single byte of output.
    let (spec, base) = example_spec();
    let single = run_campaign(
        &spec,
        &CampaignOptions {
            cache_dir: None,
            threads: 1,
            base_dir: Some(base.clone()),
        },
    )
    .expect("1-thread run");
    let wide = run_campaign(
        &spec,
        &CampaignOptions {
            cache_dir: None,
            threads: 8,
            base_dir: Some(base),
        },
    )
    .expect("8-thread run");
    assert_eq!(
        single.aggregate_csv, wide.aggregate_csv,
        "aggregate CSV must not depend on --threads"
    );
    assert_eq!(
        single.raw_csv, wide.raw_csv,
        "raw CSV must not depend on --threads"
    );
}

#[test]
fn campaign_matches_hand_built_runner() {
    // The declarative layer is sugar, not semantics: a spec-driven run
    // emits the exact bytes of the equivalent hand-built ExperimentRunner.
    let mut spec = CampaignSpec::new("equiv");
    spec.policies = vec!["list-fcfs".into(), "list-wspt".into()];
    spec.platforms = vec![lsps_scenario::spec::PlatformSpec {
        name: "m32".into(),
        m: 32,
        speeds: None,
    }];
    spec.workloads = vec![WorkloadEntry {
        name: "par".into(),
        source: WorkloadSource::Spec(WorkloadSpec::fig2_parallel(20)),
        seed: None,
    }];
    spec.replication = ReplicationSpec {
        base_seed: 5,
        replications: 2,
        derivation: SeedDerivation::Sequential,
    };
    let report = run_campaign(&spec, &CampaignOptions::default()).expect("runs");

    let mut r = ExperimentRunner::new(vec![
        lsps_core::policy::by_name("list-fcfs").unwrap(),
        lsps_core::policy::by_name("list-wspt").unwrap(),
    ]);
    r.platforms = vec![PlatformCase::new("m32", 32)];
    r.workloads = vec![
        WorkloadCase::from_spec("par", 5, WorkloadSpec::fig2_parallel(20)),
        WorkloadCase::from_spec("par", 6, WorkloadSpec::fig2_parallel(20)),
    ];
    assert_eq!(report.raw_csv, to_csv(&r.run()));
}
