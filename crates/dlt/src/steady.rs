//! Steady-state (throughput-optimal) distribution.
//!
//! "For this kind of jobs [multi-parametric campaigns], the theory of
//! asymptotic behavior shows that optimal solutions can be computed in
//! polynomial time" (§5.2). For arbitrarily long campaigns the right
//! measure is the sustainable rate, and the optimum has the classic
//! *bandwidth-centric* structure: the master's one-port is a shared budget
//! of communication time; serving a worker costs `1/bandwidth` port-seconds
//! per unit, so port time goes to the **fastest links first** (CPU speeds
//! only cap each worker's rate). That greedy is exactly the fractional
//! knapsack optimum.
//!
//! [`tree_steady_state`] extends the rule to the tree networks of Cheng &
//! Robertazzi (ref \[4\]): a subtree collapses into an equivalent worker whose
//! rate is the min of its uplink bandwidth and its internal capacity,
//! computed bottom-up.

use crate::model::Worker;

/// Result of a steady-state computation on a star.
#[derive(Clone, Debug, PartialEq)]
pub struct SteadyPlan {
    /// Sustained rate per worker, units/second.
    pub rates: Vec<f64>,
    /// Total throughput, units/second.
    pub throughput: f64,
    /// Fraction of the master port consumed, in `[0, 1]`.
    pub port_utilization: f64,
}

/// Bandwidth-centric steady state on a star: maximize `Σ rate_i` subject to
/// `rate_i ≤ speed_i` and `Σ rate_i / bandwidth_i ≤ 1` (one-port master).
/// Latencies amortize away in steady state and are ignored.
pub fn star_steady_state(workers: &[Worker]) -> SteadyPlan {
    assert!(!workers.is_empty());
    let mut order: Vec<usize> = (0..workers.len()).collect();
    order.sort_by(|&a, &b| {
        workers[b]
            .bandwidth
            .partial_cmp(&workers[a].bandwidth)
            .expect("finite bandwidths")
            .then(a.cmp(&b))
    });
    let mut rates = vec![0.0; workers.len()];
    let mut port_left = 1.0f64;
    for &i in &order {
        if port_left <= 0.0 {
            break;
        }
        let w = &workers[i];
        // Saturating this worker costs speed/bandwidth port fraction.
        let want = w.speed / w.bandwidth;
        let take = want.min(port_left);
        rates[i] = take * w.bandwidth;
        port_left -= take;
    }
    let throughput = rates.iter().sum();
    SteadyPlan {
        rates,
        throughput,
        port_utilization: 1.0 - port_left.max(0.0),
    }
}

/// A node of a distribution tree: a worker (its CPU + the uplink to its
/// parent) with children fed through this node's own one-port.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode {
    /// This node's CPU and uplink.
    pub worker: Worker,
    /// Subtrees fed by this node.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// A leaf.
    pub fn leaf(worker: Worker) -> TreeNode {
        TreeNode {
            worker,
            children: Vec::new(),
        }
    }

    /// Internal capacity: own speed plus what this node can pump to its
    /// children through its one-port — the recursive collapse of ref [4].
    fn capacity(&self) -> f64 {
        let child_rates: f64 = {
            // Children behave like a star under this node's port: greedy
            // by child uplink bandwidth, each child capped by its own
            // collapsed capacity.
            let mut idx: Vec<usize> = (0..self.children.len()).collect();
            idx.sort_by(|&a, &b| {
                self.children[b]
                    .worker
                    .bandwidth
                    .partial_cmp(&self.children[a].worker.bandwidth)
                    .expect("finite bandwidths")
                    .then(a.cmp(&b))
            });
            let mut port_left = 1.0f64;
            let mut sum = 0.0;
            for &c in &idx {
                if port_left <= 0.0 {
                    break;
                }
                let child = &self.children[c];
                let deliverable = child.deliverable();
                let want = deliverable / child.worker.bandwidth;
                let take = want.min(port_left);
                sum += take * child.worker.bandwidth;
                port_left -= take;
            }
            sum
        };
        self.worker.speed + child_rates
    }

    /// Rate this subtree can absorb from its parent: capped by the uplink.
    fn deliverable(&self) -> f64 {
        self.capacity().min(self.worker.bandwidth)
    }
}

/// Steady-state throughput of a whole distribution tree rooted at the
/// master: `root.worker.speed` is the master's own compute contribution
/// (often 0), its bandwidth is unused (the master has no uplink).
pub fn tree_steady_state(root: &TreeNode) -> f64 {
    root.capacity()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_star_saturates_all_workers() {
        // Links far faster than CPUs: everyone runs at full speed.
        let ws = vec![Worker::new(1.0, 100.0, 0.0); 4];
        let plan = star_steady_state(&ws);
        assert!((plan.throughput - 4.0).abs() < 1e-9);
        assert!(plan.port_utilization < 0.1);
    }

    #[test]
    fn port_bound_star_prefers_fast_links() {
        // CPUs are infinite-ish; the port is the bottleneck: all time goes
        // to the fastest link.
        let ws = vec![Worker::new(100.0, 10.0, 0.0), Worker::new(100.0, 1.0, 0.0)];
        let plan = star_steady_state(&ws);
        assert!((plan.rates[0] - 10.0).abs() < 1e-9, "fast link saturated");
        assert_eq!(plan.rates[1], 0.0, "slow link starved");
        assert!((plan.port_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_bruteforce_lp_on_grids() {
        // 2 workers: brute-force the port split on a fine grid and compare.
        let ws = vec![Worker::new(3.0, 4.0, 0.0), Worker::new(5.0, 6.0, 0.0)];
        let plan = star_steady_state(&ws);
        let mut best = 0.0f64;
        let steps = 10_000;
        for k in 0..=steps {
            let f0 = k as f64 / steps as f64;
            let r0 = (f0 * ws[0].bandwidth).min(ws[0].speed);
            let r1 = ((1.0 - f0) * ws[1].bandwidth).min(ws[1].speed);
            best = best.max(r0 + r1);
        }
        assert!(
            plan.throughput >= best - 1e-3,
            "greedy {} vs brute force {best}",
            plan.throughput
        );
    }

    #[test]
    fn star_equals_depth_one_tree() {
        let ws = vec![
            Worker::new(1.0, 2.0, 0.0),
            Worker::new(3.0, 1.5, 0.0),
            Worker::new(0.5, 4.0, 0.0),
        ];
        let star = star_steady_state(&ws);
        let root = TreeNode {
            worker: Worker::new(1e-9, 1e9, 0.0), // master: no own compute
            children: ws.iter().map(|&w| TreeNode::leaf(w)).collect(),
        };
        let tree = tree_steady_state(&root);
        assert!(
            (tree - star.throughput).abs() < 1e-6,
            "tree {tree} vs star {}",
            star.throughput
        );
    }

    #[test]
    fn uplink_caps_a_deep_subtree() {
        // A mighty subtree behind a thin uplink delivers only the uplink.
        let mighty = TreeNode {
            worker: Worker::new(10.0, 0.5, 0.0), // uplink 0.5 units/s
            children: vec![TreeNode::leaf(Worker::new(50.0, 100.0, 0.0))],
        };
        assert!((mighty.deliverable() - 0.5).abs() < 1e-9);
        let root = TreeNode {
            worker: Worker::new(0.0001, 1e9, 0.0),
            children: vec![mighty],
        };
        let t = tree_steady_state(&root);
        assert!(t < 0.6, "throughput {t} must be uplink-capped");
    }

    #[test]
    fn chain_collapses_to_weakest_link() {
        // master -> a -> b: b's work must cross both links.
        let chain = TreeNode {
            worker: Worker::new(0.0001, 1e9, 0.0),
            children: vec![TreeNode {
                worker: Worker::new(1.0, 3.0, 0.0),
                children: vec![TreeNode::leaf(Worker::new(10.0, 2.0, 0.0))],
            }],
        };
        let t = tree_steady_state(&chain);
        // Node a: speed 1 + min(b: min(10, 2) = 2 via its port) = 3;
        // capped by a's uplink 3 ⇒ throughput 3 (+ master ε).
        assert!((t - 3.0).abs() < 1e-3, "throughput {t}");
    }

    #[test]
    fn throughput_bounded_by_total_speed() {
        let ws = vec![
            Worker::new(2.0, 1.0, 0.0),
            Worker::new(1.0, 0.5, 0.0),
            Worker::new(4.0, 8.0, 0.0),
        ];
        let plan = star_steady_state(&ws);
        let total: f64 = ws.iter().map(|w| w.speed).sum();
        assert!(plan.throughput <= total + 1e-9);
        assert!(plan
            .rates
            .iter()
            .zip(&ws)
            .all(|(&r, w)| r <= w.speed + 1e-9));
    }
}
