//! The generic experiment runner: policies × workloads × platforms through
//! one code path.
//!
//! Every experiment binary used to hand-roll its own policy dispatch and
//! its own CSV columns; the [`ExperimentRunner`] replaces those loops. A
//! run crosses a policy set (usually [`lsps_core::policy::registry`]
//! entries) with named workload generators and platforms, pushes every
//! cell through `Policy::run` → validation → `lsps_metrics`, and emits one
//! CSV schema ([`CSV_HEADER`]) for all binaries. Completion records come
//! from one of three executors sharing that schema:
//!
//! * [`Executor::Direct`] — read straight off the rectangle schedule;
//! * [`Executor::DesReplay`] — replay the finished schedule through the
//!   `lsps-des` event engine, cross-checking static against event-driven
//!   accounting;
//! * [`Executor::DesOnline`] — *drive* the policy event-by-event: arrivals
//!   enqueue into a pending set and every arrival/completion instant
//!   re-invokes [`Policy::schedule_pending`] over the current timeline, so
//!   estimate-driven and non-clairvoyant behaviour is exercised in the
//!   regime where it actually differs (see [`des_online`]).
//!
//! Cells are independent, so [`ExperimentRunner::run`] fans them out over a
//! std-thread worker pool ([`ExperimentRunner::threads`]); results are
//! written slot-indexed, which keeps the output byte-identical to the
//! sequential order no matter how the OS schedules the workers.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use lsps_core::outcome::{Outcome, OutcomeKind, OutcomeRun};
use lsps_core::policy::{PinnedBooking, Policy, PolicyCtx, PolicyRun, ReleaseMode};
use lsps_core::replan::IncrementalPlanner;
use lsps_core::schedule::Schedule;
use lsps_des::{
    Commitment, Ctx, Dispatcher, Dur, Model, OnlineEvent, OnlineMachine, OpenOnlineMachine,
    RunStats, SimRng, Simulation, Time,
};
use lsps_metrics::{
    cmax_lower_bound, csum_lower_bound, uniform_cmax_lower_bound, uniform_csum_lower_bound,
    uniform_wsum_lower_bound, wsum_lower_bound, ClassResponse, CompletedJob, Criteria, CriteriaAcc,
    FailureStats, SteadyState, Summary,
};
use lsps_platform::{BookingId, BookingKind, ProcSet, Timeline};
use lsps_workload::{FailurePolicy, FailureTraceSpec, Job, JobId, JobKind, Outage, WorkloadSpec};

use crate::spec::OpenEntry;
use crate::Table;

/// A named machine: `m` identical processors, or — with
/// [`speeds`](PlatformCase::speeds) set — `m` *uniform* processors of the
/// given relative speeds (§2.2 weak heterogeneity). Speeded platforms are
/// only runnable by uniform-capable policies under the `direct` executor;
/// between-cluster heterogeneity stays in `lsps-grid`.
#[derive(Clone, Debug)]
pub struct PlatformCase {
    /// Display/CSV name.
    pub name: String,
    /// Processor count.
    pub m: usize,
    /// Per-processor relative speeds (`None` = identical machines). When
    /// set, the length equals `m` and the values are injected into every
    /// cell's [`PolicyCtx::speeds`].
    pub speeds: Option<Vec<f64>>,
    /// Node volatility: when set, cells on this platform run through the
    /// failure-aware online executor ([`des_online_volatile`]) — the
    /// failure trace is regenerated per cell from the workload seed and
    /// the platform name, so replications sweep the failure realization
    /// along with the workload.
    pub volatility: Option<VolatilityCase>,
}

/// Failure regime × recovery policy attached to a platform.
#[derive(Clone, Debug)]
pub struct VolatilityCase {
    /// Failure/repair trace generator.
    pub trace: FailureTraceSpec,
    /// What happens to killed jobs.
    pub policy: FailurePolicy,
}

impl PlatformCase {
    /// A named `m`-processor identical machine.
    pub fn new(name: impl Into<String>, m: usize) -> PlatformCase {
        PlatformCase {
            name: name.into(),
            m,
            speeds: None,
            volatility: None,
        }
    }

    /// A named uniform machine with one processor per speed entry.
    pub fn uniform(name: impl Into<String>, speeds: Vec<f64>) -> PlatformCase {
        assert!(
            !speeds.is_empty() && speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speeds must be non-empty, positive and finite"
        );
        PlatformCase {
            name: name.into(),
            m: speeds.len(),
            speeds: Some(speeds),
            volatility: None,
        }
    }

    /// This platform with node volatility attached.
    pub fn with_volatility(mut self, trace: FailureTraceSpec, policy: FailurePolicy) -> Self {
        self.volatility = Some(VolatilityCase { trace, policy });
        self
    }
}

/// A workload generator: machine size + seeded RNG in, jobs out.
/// `Send + Sync` so workload cases can sit in a runner shared across the
/// worker pool (generators are pure functions of their captured spec).
pub type WorkloadGen = Box<dyn Fn(usize, &mut SimRng) -> Vec<Job> + Send + Sync>;

/// A named, seeded workload generator. Generation receives the machine
/// size so widths can be drawn relative to the platform.
pub struct WorkloadCase {
    /// Display/CSV name of the workload family.
    pub name: String,
    /// Seed (also a CSV column, so multi-seed sweeps stay one schema).
    pub seed: u64,
    gen: WorkloadGen,
}

impl WorkloadCase {
    /// A workload from an arbitrary generator function.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        gen: impl Fn(usize, &mut SimRng) -> Vec<Job> + Send + Sync + 'static,
    ) -> WorkloadCase {
        WorkloadCase {
            name: name.into(),
            seed,
            gen: Box::new(gen),
        }
    }

    /// A workload from a [`WorkloadSpec`].
    pub fn from_spec(name: impl Into<String>, seed: u64, spec: WorkloadSpec) -> WorkloadCase {
        WorkloadCase::new(name, seed, move |m, rng| spec.generate(m, rng))
    }

    /// A fixed job list (seed recorded but unused).
    pub fn fixed(name: impl Into<String>, seed: u64, jobs: Vec<Job>) -> WorkloadCase {
        WorkloadCase::new(name, seed, move |_m, _rng| jobs.clone())
    }

    /// A real-trace workload read from a Standard Workload Format file
    /// (`lsps_workload::swf::from_swf`). The trace is parsed eagerly, so
    /// I/O and format errors surface at construction, not mid-sweep; the
    /// seed is recorded for the CSV but the jobs are the trace's.
    pub fn from_swf_file(
        name: impl Into<String>,
        seed: u64,
        path: impl AsRef<Path>,
    ) -> Result<WorkloadCase, TraceLoadError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(TraceLoadError::Io)?;
        let jobs = lsps_workload::swf::from_swf(&text).map_err(TraceLoadError::Parse)?;
        Ok(WorkloadCase::fixed(name, seed, jobs))
    }

    /// A real-trace workload read from a JSON-lines file
    /// (`lsps_workload::swf::from_jsonl`) — the workspace's lossless native
    /// interchange format, so moldable profiles survive the round trip.
    pub fn from_jsonl_file(
        name: impl Into<String>,
        seed: u64,
        path: impl AsRef<Path>,
    ) -> Result<WorkloadCase, TraceLoadError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(TraceLoadError::Io)?;
        let jobs = lsps_workload::swf::from_jsonl(&text).map_err(TraceLoadError::Parse)?;
        Ok(WorkloadCase::fixed(name, seed, jobs))
    }

    /// Generate the jobs for machine size `m`.
    pub fn generate(&self, m: usize) -> Vec<Job> {
        let mut rng = SimRng::seed_from(self.seed);
        (self.gen)(m, &mut rng)
    }
}

/// Why a trace-backed [`WorkloadCase`] could not be built.
#[derive(Debug)]
pub enum TraceLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file's content did not parse as the expected trace format.
    Parse(lsps_workload::swf::ParseError),
}

impl fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLoadError::Io(e) => write!(f, "trace file unreadable: {e}"),
            TraceLoadError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TraceLoadError {}

/// How a cell is executed and its completion records extracted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Executor {
    /// Batch-schedule once, read records straight off the assignments.
    #[default]
    Direct,
    /// Batch-schedule once, then replay the finished schedule through the
    /// `lsps-des` engine: completions are collected at simulated event
    /// times, cross-checking the static view against the event-driven one.
    DesReplay,
    /// Drive the policy online: jobs arrive at their release dates and
    /// every arrival/completion instant re-invokes
    /// [`Policy::schedule_pending`] over the current timeline. The only
    /// executor in which *when* the policy learns a job exists matters.
    DesOnline,
}

impl Executor {
    /// Every executor, in comparison-sweep order.
    pub const ALL: [Executor; 3] = [Executor::Direct, Executor::DesReplay, Executor::DesOnline];

    /// Stable identifier (CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            Executor::Direct => "direct",
            Executor::DesReplay => "des-replay",
            Executor::DesOnline => "des-online",
        }
    }

    /// Can this executor run a policy of the given [`OutcomeKind`]?
    ///
    /// `direct` consumes every outcome through the uniform
    /// [`Outcome::completed`] interface; the DES executors replay or drive
    /// *rectangles* — a trial outcome's burnt machine time and a uniform
    /// outcome's speed-scaled spans have no event representation there, so
    /// those pairs are rejected (by campaign validation up front, and by a
    /// loud panic in [`ExperimentRunner::run_cells`] for direct API users).
    pub fn supports(self, kind: OutcomeKind) -> bool {
        matches!(self, Executor::Direct) || kind == OutcomeKind::Rect
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An executor name that matched nothing in [`Executor::ALL`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownExecutor(pub String);

impl fmt::Display for UnknownExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown executor `{}` (expected one of: direct, des-replay, des-online)",
            self.0
        )
    }
}

impl std::error::Error for UnknownExecutor {}

impl FromStr for Executor {
    type Err = UnknownExecutor;

    /// Parse the stable [`Executor::name`] identifiers, so campaign specs
    /// and CLI flags name executors without each binary re-rolling the
    /// mapping.
    fn from_str(s: &str) -> Result<Executor, UnknownExecutor> {
        Executor::ALL
            .into_iter()
            .find(|e| e.name() == s)
            .ok_or_else(|| UnknownExecutor(s.to_string()))
    }
}

/// One (policy × workload × platform) outcome. Serializable so the
/// campaign cache can persist cells as shards and replay them byte-for-byte
/// (`f64` values round-trip exactly through the JSON layer).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Policy name (registry identifier).
    pub policy: String,
    /// Executor that produced the records ([`Executor::name`]).
    pub executor: String,
    /// Workload family name.
    pub workload: String,
    /// Workload seed.
    pub seed: u64,
    /// Platform name.
    pub platform: String,
    /// Machine size.
    pub m: usize,
    /// Number of jobs scheduled.
    pub n: usize,
    /// All §3 criteria.
    pub criteria: Criteria,
    /// Makespan over the certified `Cmax` lower bound.
    pub cmax_ratio: f64,
    /// `Σ Ci` over its lower bound.
    pub csum_ratio: f64,
    /// `Σ ωi Ci` over its lower bound.
    pub wsum_ratio: f64,
    /// Machine utilization in `[0, 1]`.
    pub utilization: f64,
    /// Trials started (non-clairvoyant outcomes only; `None` — an empty
    /// aggregate-CSV column — for rectangle and uniform outcomes).
    pub trials: Option<u64>,
    /// Trials killed at their estimate.
    pub kills: Option<u64>,
    /// CPU-ticks burnt on killed trials — the price of non-clairvoyance.
    pub wasted_ticks: Option<u64>,
    /// Open-arrival cells only: the stream's class names, indexed by the
    /// `class` field of [`responses`](Cell::responses). `None` for finite
    /// (closed) cells.
    pub class_names: Option<Vec<String>>,
    /// Open-arrival cells only: per-class post-warmup response-time
    /// distributions (mean/p50/p95/p99, max slowdown, batch-means CI).
    pub responses: Option<Vec<ClassResponse>>,
    /// Failure-aware cells only: goodput, wasted proc-ticks, resubmit
    /// counts and interrupted-job slowdown (`None` — empty aggregate
    /// columns — for reliable-platform cells, which keep today's output
    /// byte-identical).
    pub failures: Option<FailureStats>,
}

/// The one CSV schema every runner-based binary emits.
pub const CSV_HEADER: &str = "policy,executor,workload,seed,platform,m,n,cmax_s,cmax_ratio,\
                              csum_ratio,wsum_ratio,mean_flow_s,max_flow_s,utilization";

impl Cell {
    /// Render as a [`CSV_HEADER`] row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            self.policy,
            self.executor,
            self.workload,
            self.seed,
            self.platform,
            self.m,
            self.n,
            self.criteria.cmax,
            self.cmax_ratio,
            self.csum_ratio,
            self.wsum_ratio,
            self.criteria.mean_flow,
            self.criteria.max_flow,
            self.utilization,
        )
    }
}

/// Render cells as the standard CSV document.
pub fn to_csv(cells: &[Cell]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for c in cells {
        out.push_str(&c.csv_row());
        out.push('\n');
    }
    out
}

/// Print cells as a fixed-width table on stdout.
pub fn print_cells(cells: &[Cell]) {
    let mut table = Table::new(&[
        "policy",
        "executor",
        "workload",
        "seed",
        "platform",
        "Cmax ratio",
        "sC ratio",
        "sWC ratio",
        "mean flow (s)",
        "max flow (s)",
        "util %",
    ]);
    for c in cells {
        table.row(vec![
            c.policy.clone(),
            c.executor.clone(),
            c.workload.clone(),
            c.seed.to_string(),
            c.platform.clone(),
            format!("{:.3}", c.cmax_ratio),
            format!("{:.3}", c.csum_ratio),
            format!("{:.3}", c.wsum_ratio),
            format!("{:.1}", c.criteria.mean_flow),
            format!("{:.1}", c.criteria.max_flow),
            format!("{:.1}", c.utilization * 100.0),
        ]);
    }
    table.print();
}

/// Aggregate a cell metric over seeds, grouped by `key`. Returns groups in
/// first-seen order.
pub fn summarize_by<K: Eq + std::hash::Hash + Clone>(
    cells: &[Cell],
    key: impl Fn(&Cell) -> K,
    metric: impl Fn(&Cell) -> f64,
) -> Vec<(K, Summary)> {
    let mut order: Vec<K> = Vec::new();
    let mut groups: HashMap<K, Summary> = HashMap::new();
    for c in cells {
        let k = key(c);
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Summary::new()
            })
            .add(metric(c));
    }
    order
        .into_iter()
        .map(|k| {
            let s = groups.remove(&k).expect("group exists");
            (k, s)
        })
        .collect()
}

/// The declarative experiment: run every policy over every workload over
/// every platform through one code path.
pub struct ExperimentRunner {
    /// Policies under comparison.
    pub policies: Vec<Box<dyn Policy>>,
    /// Workload cases (family × seed).
    pub workloads: Vec<WorkloadCase>,
    /// Platforms.
    pub platforms: Vec<PlatformCase>,
    /// Shared scheduling context.
    pub ctx: PolicyCtx,
    /// Completion-record extraction mode.
    pub executor: Executor,
    /// Worker-pool size for [`run`](ExperimentRunner::run): `0` (the
    /// default) means one thread per available core, `1` forces the
    /// sequential path. Output is byte-identical regardless of the value.
    pub threads: usize,
}

impl ExperimentRunner {
    /// A runner over the given policies with default context, one platform
    /// to be added via the struct fields.
    pub fn new(policies: Vec<Box<dyn Policy>>) -> ExperimentRunner {
        ExperimentRunner {
            policies,
            workloads: Vec::new(),
            platforms: Vec::new(),
            ctx: PolicyCtx::default(),
            executor: Executor::Direct,
            threads: 0,
        }
    }

    /// The canonical cell order of the full cross product:
    /// platform-major, then workload, then policy. Each task is a
    /// `(platform, workload, policy)` index triple accepted by
    /// [`run_cells`](ExperimentRunner::run_cells) — callers that skip cells
    /// (the campaign cache) filter this list and still get byte-identical
    /// output for the cells they do run.
    pub fn cell_order(&self) -> Vec<(usize, usize, usize)> {
        let mut tasks =
            Vec::with_capacity(self.platforms.len() * self.workloads.len() * self.policies.len());
        for pi in 0..self.platforms.len() {
            for wi in 0..self.workloads.len() {
                for ki in 0..self.policies.len() {
                    tasks.push((pi, wi, ki));
                }
            }
        }
        tasks
    }

    /// Run the full cross product ([`cell_order`](ExperimentRunner::cell_order)).
    /// Every schedule is validated against the policy's as-scheduled job
    /// view — a policy bug fails loudly instead of producing flattering
    /// numbers.
    pub fn run(&self) -> Vec<Cell> {
        self.run_cells(&self.cell_order())
    }

    /// Run exactly the given `(platform, workload, policy)` cells, in the
    /// given order.
    ///
    /// Cells are independent, so they are fanned out over
    /// [`threads`](ExperimentRunner::threads) workers; each worker claims
    /// the next cell index off a shared counter and writes its result into
    /// that cell's dedicated slot, so the returned order and every byte of
    /// downstream CSV are identical to a sequential run.
    pub fn run_cells(&self, tasks: &[(usize, usize, usize)]) -> Vec<Cell> {
        // Workloads are generated once per referenced (platform, workload)
        // pair on the calling thread: each case seeds a fresh RNG, so the
        // jobs are a pure function of (case, m) no matter which subset of
        // cells runs, and doing it up front keeps the workers pure
        // functions of their task.
        let mut jobs: HashMap<(usize, usize), Vec<Job>> = HashMap::new();
        for &(pi, wi, _) in tasks {
            jobs.entry((pi, wi))
                .or_insert_with(|| self.workloads[wi].generate(self.platforms[pi].m));
        }
        let run_task = |&(pi, wi, ki): &(usize, usize, usize)| {
            self.run_cell(
                self.policies[ki].as_ref(),
                &self.workloads[wi],
                &self.platforms[pi],
                &jobs[&(pi, wi)],
            )
        };
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        }
        .min(tasks.len().max(1));
        if threads <= 1 {
            return tasks.iter().map(run_task).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Cell>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let cell = run_task(task);
                    *slots[i].lock().expect("result slot") = Some(cell);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    fn run_cell(
        &self,
        policy: &dyn Policy,
        workload: &WorkloadCase,
        platform: &PlatformCase,
        jobs: &[Job],
    ) -> Cell {
        let cell_id = || {
            format!(
                "{} on {}/{} (m={}, {})",
                policy.name(),
                workload.name,
                workload.seed,
                platform.m,
                self.executor.name()
            )
        };
        // Per-cell context: a speeded platform injects its machine model.
        let ctx: Cow<'_, PolicyCtx> = match &platform.speeds {
            None => Cow::Borrowed(&self.ctx),
            Some(speeds) => Cow::Owned(PolicyCtx {
                speeds: speeds.clone(),
                ..self.ctx.clone()
            }),
        };
        // Volatile platforms run the failure-aware online driver. No
        // retained-schedule validation: killed attempts are not part of
        // any final rectangle schedule — overlap safety is enforced per
        // commitment by the dispatcher's timelines instead.
        if let Some(vol) = &platform.volatility {
            assert!(
                matches!(self.executor, Executor::DesOnline),
                "{}: a volatile platform requires the des-online executor",
                cell_id()
            );
            // Failure realization: a pure function of (platform name,
            // workload seed), so replications resample the failure trace
            // along with the workload.
            let trace_seed = crate::spec::splitmix64(
                workload.seed ^ crate::spec::fnv64(platform.name.as_bytes()),
            );
            let outages = vol
                .trace
                .generate(platform.m, &mut SimRng::seed_from(trace_seed));
            let plan = FailurePlan {
                outages,
                policy: vol.policy,
            };
            let out = des_online_volatile(policy, jobs, platform.m, &ctx, &plan, true);
            let criteria = Criteria::evaluate(&out.records);
            let (cmax_lb, csum_lb, wsum_lb) = (
                cmax_lower_bound(&out.jobs, platform.m).as_secs_f64(),
                csum_lower_bound(&out.jobs, platform.m),
                wsum_lower_bound(&out.jobs, platform.m),
            );
            return Cell {
                policy: policy.name().to_string(),
                executor: self.executor.name().to_string(),
                workload: workload.name.clone(),
                seed: workload.seed,
                platform: platform.name.clone(),
                m: platform.m,
                n: out.jobs.len(),
                utilization: criteria.utilization(platform.m),
                cmax_ratio: criteria.cmax / cmax_lb.max(f64::MIN_POSITIVE),
                csum_ratio: criteria.sum_completion / csum_lb.max(f64::MIN_POSITIVE),
                wsum_ratio: criteria.weighted_sum_completion / wsum_lb.max(f64::MIN_POSITIVE),
                criteria,
                trials: None,
                kills: None,
                wasted_ticks: None,
                class_names: None,
                responses: None,
                failures: Some(out.failures),
            };
        }
        let (orun, mut records) = match self.executor {
            Executor::Direct => {
                // The generalized path: every outcome kind (rectangle,
                // trial-annotated, uniform-machine) extracts through the
                // one `Outcome::completed` interface.
                let orun = policy.run_outcome(jobs, platform.m, &ctx);
                orun.validate()
                    .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", cell_id()));
                let records = orun.outcome.completed(&orun.jobs);
                (orun, records)
            }
            Executor::DesReplay | Executor::DesOnline => {
                // Validated capability check: the DES executors stay
                // rectangle-only.
                assert!(
                    self.executor.supports(policy.outcome_kind()),
                    "{}: policy produces `{}` outcomes, which executor `{}` \
                     cannot replay or drive — run it under `direct`",
                    cell_id(),
                    policy.outcome_kind(),
                    self.executor.name()
                );
                assert!(
                    ctx.is_identical_machine(),
                    "{}: a speeded machine needs a uniform-capable policy \
                     under the `direct` executor",
                    cell_id()
                );
                let validate = |run: &PolicyRun| {
                    run.validate()
                        .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", cell_id()))
                };
                let (run, records) = match self.executor {
                    Executor::DesReplay => {
                        let run = policy.run(jobs, platform.m, &ctx);
                        // Validate before handing the rectangles to the
                        // event engine: a policy bug must fail with cell
                        // context, not deep inside the replay.
                        validate(&run);
                        let records = des_replay(&run.schedule, &run.jobs);
                        (run, records)
                    }
                    _ => {
                        let online = des_online(policy, jobs, platform.m, &ctx);
                        validate(&online.run);
                        (online.run, online.records)
                    }
                };
                let orun = OutcomeRun {
                    outcome: Outcome::Rect(run.schedule),
                    jobs: run.jobs,
                };
                (orun, records)
            }
        };
        // Canonical record order (job id) so every executor feeds Criteria
        // the same summation order — the online-equivalence tests assert
        // *bit*-identical metrics across executors.
        records.sort_by_key(|r| r.id);
        let criteria = Criteria::evaluate(&records);
        // Bounds on the as-scheduled jobs: policies that strip releases or
        // rigidify are measured against the instance they actually solved —
        // on the machine model they actually solved it for (speed-aware
        // bounds for uniform outcomes).
        let (cmax_lb, csum_lb, wsum_lb) = match orun.outcome.speeds() {
            Some(speeds) => (
                uniform_cmax_lower_bound(&orun.jobs, speeds),
                uniform_csum_lower_bound(&orun.jobs, speeds),
                uniform_wsum_lower_bound(&orun.jobs, speeds),
            ),
            None => (
                cmax_lower_bound(&orun.jobs, platform.m).as_secs_f64(),
                csum_lower_bound(&orun.jobs, platform.m),
                wsum_lower_bound(&orun.jobs, platform.m),
            ),
        };
        let stats = orun.outcome.trial_stats();
        Cell {
            policy: policy.name().to_string(),
            executor: self.executor.name().to_string(),
            workload: workload.name.clone(),
            seed: workload.seed,
            platform: platform.name.clone(),
            m: platform.m,
            n: orun.jobs.len(),
            utilization: criteria.utilization(platform.m),
            cmax_ratio: criteria.cmax / cmax_lb.max(f64::MIN_POSITIVE),
            csum_ratio: criteria.sum_completion / csum_lb.max(f64::MIN_POSITIVE),
            wsum_ratio: criteria.weighted_sum_completion / wsum_lb.max(f64::MIN_POSITIVE),
            criteria,
            trials: stats.map(|s| s.trials),
            kills: stats.map(|s| s.kills),
            wasted_ticks: stats.map(|s| s.wasted_ticks),
            class_names: None,
            responses: None,
            failures: None,
        }
    }
}

struct ReplayModel {
    jobs: HashMap<JobId, Job>,
    records: Vec<CompletedJob>,
}

enum ReplayEvent {
    Finish {
        job: JobId,
        start: Time,
        procs: usize,
    },
}

impl Model for ReplayModel {
    type Event = ReplayEvent;

    fn handle(&mut self, now: Time, event: ReplayEvent, _ctx: &mut Ctx<'_, ReplayEvent>) {
        let ReplayEvent::Finish { job, start, procs } = event;
        let j = self.jobs.get(&job).expect("replayed job exists");
        self.records
            .push(CompletedJob::from_job(j, start, now, procs));
    }
}

/// Replay a schedule through the DES engine: one completion event per
/// assignment, records collected at simulated event times. The outcome is
/// identical to [`Schedule::completed`] up to record order (events fire in
/// time order) — asserting that equivalence is exactly the point.
pub fn des_replay(schedule: &Schedule, jobs: &[Job]) -> Vec<CompletedJob> {
    let model = ReplayModel {
        jobs: jobs.iter().map(|j| (j.id, j.clone())).collect(),
        records: Vec::new(),
    };
    let mut sim = Simulation::new(model);
    for a in schedule.assignments() {
        sim.schedule_at(
            a.end,
            ReplayEvent::Finish {
                job: a.job,
                start: a.start,
                procs: a.procs.len(),
            },
        );
    }
    let events = schedule.len() as u64 + 1;
    sim.run_to_completion(events);
    let mut records = sim.into_model().records;
    records.sort_by_key(|r| r.id);
    records
}

/// The [`lsps_des::Dispatcher`] that turns a [`Policy`] into an online
/// decision procedure.
///
/// Pinned-capable policies (backfilling) decide at every event: the whole
/// pending set plus the still-live commitments go to
/// [`Policy::schedule_pending`] and the result is committed in full. Any
/// other policy cannot fill holes around running work, so arrivals
/// *accumulate* while commitments are live and the batch is scheduled when
/// the machine drains — the paper's §4.2 online batch transformation, with
/// the drain instant delivered by the completion event instead of a
/// hand-rolled loop.
struct PolicyDispatch<'a> {
    policy: &'a dyn Policy,
    m: usize,
    ctx: &'a PolicyCtx,
    /// Live commitments, tracked on a real availability [`Timeline`]: the
    /// long-running loop garbage-collects completed work out of the
    /// profile every decision instant, so a multi-day trace never
    /// accumulates dead bookings. The policy still sees plain
    /// exact-processor [`PinnedBooking`]s.
    committed: Timeline,
    /// Aggregate of every commitment, for end-of-run validation. `None`
    /// on the open (steady-state) path, where retaining one assignment
    /// per job would grow without bound over an unbounded stream.
    schedule: Option<Schedule>,
    /// Persistent incremental planner, when the policy offers one
    /// ([`Policy::incremental_planner`]). Its placements are bit-identical
    /// to the full-replan path below — the differential tests in this
    /// module drive both and compare — but each event costs O(batch)
    /// instead of an O(live) availability rebuild, and the planner's own
    /// expiry heap subsumes the `committed` bookkeeping entirely.
    planner: Option<Box<dyn IncrementalPlanner>>,
    /// Scratch schedule the planner fills each decision — cleared and
    /// reused so the per-event path performs no allocation.
    plan_scratch: Schedule,
    /// Failure bookkeeping, present only on the volatile path
    /// ([`des_online_volatile`]). Tracks the booking behind every live
    /// commitment so a node failure can evict exactly the affected work,
    /// and accumulates the recovery accounting.
    volatile: Option<VolatileState>,
}

/// The booking a live commitment occupies, for targeted eviction on kill.
struct LiveBooking {
    booking: BookingId,
    procs: ProcSet,
}

/// Per-run failure bookkeeping of [`PolicyDispatch`].
struct VolatileState {
    /// Checkpoint interval in ticks (`None` = resubmit from scratch).
    checkpoint: Option<Dur>,
    /// Original (full-length, original-release) prepared job shapes — the
    /// reference for recovery accounting and completion records.
    originals: HashMap<JobId, Job>,
    /// Booking behind every committed-but-unfinished job.
    live: HashMap<JobId, LiveBooking>,
    /// Proc-ticks executed by killed attempts and not saved by a
    /// checkpoint.
    wasted_ticks: u64,
    /// Jobs interrupted at least once.
    interrupted: HashSet<JobId>,
}

impl Dispatcher for PolicyDispatch<'_> {
    type Job = Job;

    fn decide(&mut self, now: Time, pending: &mut Vec<Job>, out: &mut Vec<Commitment<Job>>) {
        // Drain the job a (known-valid) assignment names out of `pending`
        // by linear scan — decision batches are dirty windows of a handful
        // of jobs, so a scan beats building a `HashMap` per decision (the
        // allocation that used to sit on every event of the open path).
        fn drain_job(pending: &mut Vec<Job>, id: JobId, policy: &str) -> Job {
            match pending.iter().position(|j| j.id == id) {
                Some(i) => pending.swap_remove(i),
                None => panic!("{policy}: scheduled unknown job {id}"),
            }
        }
        if let Some(planner) = self.planner.as_deref_mut() {
            planner.advance(now);
            self.plan_scratch.clear();
            planner.plan(pending, now, &mut self.plan_scratch);
            if let Some(vol) = &mut self.volatile {
                // Remember which planner booking backs each commitment so
                // a later node failure can evict exactly the killed work.
                let created = planner.last_created();
                assert_eq!(
                    created.len(),
                    self.plan_scratch.assignments().len(),
                    "planner bookings must align 1:1 with placements"
                );
                for (a, &(bk, _)) in self.plan_scratch.assignments().iter().zip(created) {
                    vol.live.insert(
                        a.job,
                        LiveBooking {
                            booking: bk,
                            procs: a.procs.clone(),
                        },
                    );
                }
            }
            for a in self.plan_scratch.assignments() {
                let job = drain_job(pending, a.job, self.policy.name());
                if let Some(s) = &mut self.schedule {
                    s.push(a.clone());
                }
                out.push(Commitment {
                    job,
                    start: a.start,
                    end: a.end,
                });
            }
            assert!(
                pending.is_empty(),
                "{}: planner left {} pending jobs unscheduled",
                self.policy.name(),
                pending.len()
            );
            return;
        }
        // Completed commitments no longer constrain placement.
        self.committed.gc(now);
        if self.committed.n_bookings() > 0 && !self.policy.supports_pinned() {
            // Hole-blind policy with work still running: keep accumulating.
            // The final completion of the running batch re-invokes us with
            // an empty commitment set.
            return;
        }
        let live: Vec<PinnedBooking> = self
            .committed
            .bookings()
            .map(|(_, b)| PinnedBooking {
                start: b.start,
                end: b.end,
                procs: b.procs.clone(),
            })
            .collect();
        let placed = self
            .policy
            .schedule_pending(pending, self.m, now, &live, self.ctx);
        for a in placed.assignments() {
            let job = drain_job(pending, a.job, self.policy.name());
            let bk = self
                .committed
                .try_book(a.start, a.end, a.procs.clone(), BookingKind::Job)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: commitment for job {} collides with running work: {e}",
                        self.policy.name(),
                        a.job
                    )
                });
            if let Some(vol) = &mut self.volatile {
                vol.live.insert(
                    a.job,
                    LiveBooking {
                        booking: bk,
                        procs: a.procs.clone(),
                    },
                );
            }
            if let Some(s) = &mut self.schedule {
                s.push(a.clone());
            }
            out.push(Commitment {
                job,
                start: a.start,
                end: a.end,
            });
        }
        assert!(
            pending.is_empty(),
            "{}: left {} pending jobs unscheduled",
            self.policy.name(),
            pending.len()
        );
    }

    fn node_down(
        &mut self,
        now: Time,
        node: u32,
        up: Time,
        running: &[Option<Commitment<Job>>],
        kill: &mut Vec<usize>,
        resubmit: &mut Vec<Job>,
    ) {
        let vol = self
            .volatile
            .as_mut()
            .expect("volatility events reached a reliable-platform dispatcher");
        let node_idx = node as usize;
        // Victims in slot order (deterministic, shared by the planner and
        // full-replan paths): every commitment holding the failed node over
        // part of the outage window. `end == now` survives — the FIFO
        // tie-break fires this NodeDown before the same-instant Finish, and
        // a job that completed the instant the node died lost nothing.
        for (slot, c) in running.iter().enumerate() {
            let Some(c) = c else { continue };
            let holds_node = vol
                .live
                .get(&c.job.id)
                .expect("running commitment has a live booking")
                .procs
                .contains(node_idx);
            if !holds_node || c.end <= now || c.start >= up {
                continue;
            }
            let lb = vol.live.remove(&c.job.id).expect("checked above");
            match self.planner.as_deref_mut() {
                Some(planner) => planner.invalidate(lb.booking),
                None => {
                    self.committed
                        .remove(lb.booking)
                        .expect("killed booking still present");
                }
            }
            kill.push(slot);
            // Recovery accounting, in ticks. The commitment's span is the
            // job's *current* (possibly checkpoint-trimmed) length, so the
            // original length splits into work already checkpointed before
            // this attempt plus this attempt's span.
            let orig = &vol.originals[&c.job.id];
            let (q, orig_len) = match orig.kind {
                JobKind::Rigid { procs, len } => (procs, len.ticks()),
                _ => unreachable!("volatile driver prepares rigid jobs"),
            };
            let attempt = (c.end - c.start).ticks();
            let done_before = orig_len - attempt;
            let work_this = now.saturating_sub(c.start).ticks();
            let cum = done_before + work_this;
            let kept = match vol.checkpoint {
                None => 0,
                Some(p) => cum / p.ticks() * p.ticks(),
            };
            debug_assert!(
                kept <= cum && cum < orig_len,
                "kill implies unfinished work"
            );
            vol.wasted_ticks += (cum - kept) * q as u64;
            vol.interrupted.insert(c.job.id);
            let mut job = orig.clone();
            job.release = now;
            job.kind = JobKind::Rigid {
                procs: q,
                len: Dur::from_ticks(orig_len - kept),
            };
            resubmit.push(job);
        }
        // The node is gone until `up`: pin the outage window so every
        // subsequent placement (the resubmits included) plans around it.
        // It expires off the profile at the repair instant exactly like a
        // completed commitment, on both paths.
        match self.planner.as_deref_mut() {
            Some(planner) => planner.add_outage(node, now, up),
            None => {
                self.committed
                    .try_book(
                        now,
                        up,
                        ProcSet::from_indices([node_idx]),
                        BookingKind::Reservation,
                    )
                    .unwrap_or_else(|e| panic!("outage on node {node} collides: {e:?}"));
            }
        }
    }
}

/// Outcome of one event-driven online execution.
pub struct OnlineRun {
    /// The aggregate of all committed assignments plus the as-scheduled job
    /// view — validates exactly like a batch [`PolicyRun`].
    pub run: PolicyRun,
    /// Completion records, collected at simulated event times and sorted by
    /// job id.
    pub records: Vec<CompletedJob>,
    /// Engine counters (arrivals + decisions + completions).
    pub stats: RunStats,
    /// Jobs the incremental planner examined over the whole run, when one
    /// was active (`None` on the full-replan path) — the instrumentation
    /// the O(dirty) regression tests read.
    pub replan_touched: Option<u64>,
}

/// Drive `policy` through the event engine: every job arrives at its
/// release date (at time zero under [`ReleaseMode::Offline`]), arrivals at
/// the same instant coalesce into one decision, and each decision commits
/// the pending set via [`Policy::schedule_pending`] around the live
/// commitments. Completions fire as events; nothing is ever started before
/// its arrival, so the execution is honestly online.
///
/// With exact runtimes and all-zero releases the single decision at time
/// zero *is* the batch schedule, so the outcome is bit-identical to
/// [`Executor::Direct`] — the equivalence the test suite pins for every
/// registry policy.
pub fn des_online(policy: &dyn Policy, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> OnlineRun {
    des_online_impl(policy, jobs, m, ctx, true)
}

/// [`des_online`] with the incremental planner disabled: every decision
/// goes through the full-replan `schedule_pending` path. This is the
/// differential *oracle* — slower but independently derived — that the
/// planner's bit-identity tests compare against.
pub fn des_online_full_replan(
    policy: &dyn Policy,
    jobs: &[Job],
    m: usize,
    ctx: &PolicyCtx,
) -> OnlineRun {
    des_online_impl(policy, jobs, m, ctx, false)
}

fn des_online_impl(
    policy: &dyn Policy,
    jobs: &[Job],
    m: usize,
    ctx: &PolicyCtx,
    use_planner: bool,
) -> OnlineRun {
    // The as-scheduled view (rigidified, possibly release-stripped) fixes
    // the job shapes once, against the full instance — re-preparing inside
    // each decision would let allotments drift with the pending count.
    let prepared = policy.prepare(jobs, m, ctx).into_owned();
    // Arrival instants come from the *input* releases: offline-only
    // policies strip releases from their job view (their documented head
    // start on the clock they are measured against), but information still
    // reaches the scheduler only at the true release date.
    let arrivals: HashMap<JobId, Time> = jobs
        .iter()
        .map(|j| {
            let at = match ctx.release_mode {
                ReleaseMode::Offline => Time::ZERO,
                ReleaseMode::Online => j.release,
            };
            (j.id, at)
        })
        .collect();
    let machine = OnlineMachine::new(PolicyDispatch {
        policy,
        m,
        ctx,
        committed: Timeline::with_procs(m),
        schedule: Some(Schedule::new(m)),
        planner: if use_planner {
            policy.incremental_planner(m, ctx)
        } else {
            None
        },
        plan_scratch: Schedule::new(m),
        volatile: None,
    });
    let mut sim = Simulation::new(machine);
    for job in &prepared {
        sim.schedule_at(arrivals[&job.id], OnlineEvent::Arrive(job.clone()));
    }
    // n arrivals + n completions + at most one decision per event.
    let stats = sim.run_to_completion(4 * prepared.len() as u64 + 8);
    let (dispatch, completed, still_pending) = sim.into_model().into_parts();
    assert!(
        still_pending.is_empty(),
        "{}: {} jobs never committed",
        policy.name(),
        still_pending.len()
    );
    let schedule = dispatch.schedule.expect("finite path retains the schedule");
    let procs: HashMap<JobId, usize> = schedule
        .assignments()
        .iter()
        .map(|a| (a.job, a.procs.len()))
        .collect();
    let mut records: Vec<CompletedJob> = completed
        .iter()
        .map(|c| CompletedJob::from_job(&c.job, c.start, c.end, procs[&c.job.id]))
        .collect();
    records.sort_by_key(|r| r.id);
    let replan_touched = dispatch.planner.as_ref().map(|p| p.touched());
    OnlineRun {
        run: PolicyRun {
            schedule,
            jobs: prepared,
        },
        records,
        stats,
        replan_touched,
    }
}

/// Failure realization + recovery policy for one volatile run.
pub struct FailurePlan {
    /// Concrete outages (already generated from a
    /// [`FailureTraceSpec`]), every node `< m`.
    pub outages: Vec<Outage>,
    /// What happens to a commitment killed mid-flight.
    pub policy: FailurePolicy,
}

/// Outcome of one failure-aware online execution
/// ([`des_online_volatile`]).
pub struct VolatileOutcome {
    /// Completion records against the **original** job shapes (original
    /// release, full length) with the final attempt's start/end — a killed
    /// job's flow includes every lost attempt. Sorted by job id.
    pub records: Vec<CompletedJob>,
    /// Engine counters.
    pub stats: RunStats,
    /// Kill/waste/goodput accounting for the aggregate CSV.
    pub failures: FailureStats,
    /// The prepared (as-scheduled) job view, for lower bounds.
    pub jobs: Vec<Job>,
    /// Planner instrumentation (`None` on the full-replan oracle path).
    pub replan_touched: Option<u64>,
}

/// Drive `policy` through the event engine over a *volatile* platform:
/// nodes fail and recover per `plan`, every failure kills the commitments
/// running on the node, and killed jobs come back per the recovery policy
/// (resubmitted from scratch, or from the last checkpoint). This is the
/// explicit relaxation of the "commitments are final" invariant — a kill
/// evicts the commitment's booking and the outage window is pinned as a
/// reservation until repair, so all replanning (incremental or full) packs
/// around the hole.
///
/// Restrictions (asserted): pinned-capable policy, [`ReleaseMode::Online`],
/// identical machines, no reservations or pinned bookings. With
/// `use_planner` both the incremental planner and the full-replan oracle
/// run the same kill rule, so the two paths stay bit-identical — the
/// differential property the failure proptests pin down.
pub fn des_online_volatile(
    policy: &dyn Policy,
    jobs: &[Job],
    m: usize,
    ctx: &PolicyCtx,
    plan: &FailurePlan,
    use_planner: bool,
) -> VolatileOutcome {
    assert!(
        policy.supports_pinned(),
        "{}: volatility needs a pinned-capable policy (it must plan around outage windows)",
        policy.name()
    );
    assert!(
        matches!(ctx.release_mode, ReleaseMode::Online),
        "volatility is an online phenomenon; offline release stripping is meaningless"
    );
    assert!(
        ctx.reservations.is_empty() && ctx.pinned.is_empty() && ctx.is_identical_machine(),
        "volatile runs support neither reservations, pinned bookings nor speeds"
    );
    for o in &plan.outages {
        assert!(
            (o.node as usize) < m && o.end > o.start,
            "outage {o:?} does not fit an {m}-processor machine"
        );
    }
    let prepared = policy.prepare(jobs, m, ctx).into_owned();
    let mut originals = HashMap::with_capacity(prepared.len());
    let mut useful_area = 0u64;
    for j in &prepared {
        let JobKind::Rigid { procs, len } = j.kind else {
            panic!(
                "volatile driver expects prepared rigid jobs; job {} is not",
                j.id
            )
        };
        assert!(len.ticks() >= 1, "job {} has zero length", j.id);
        useful_area += len.ticks() * procs as u64;
        originals.insert(j.id, j.clone());
    }
    let machine = OnlineMachine::new(PolicyDispatch {
        policy,
        m,
        ctx,
        committed: Timeline::with_procs(m),
        // No end-of-run Schedule: a killed job commits more than once, so
        // the one-assignment-per-job rectangle validation does not apply —
        // overlap safety is enforced per commitment by the timelines.
        schedule: None,
        planner: if use_planner {
            policy.incremental_planner(m, ctx)
        } else {
            None
        },
        plan_scratch: Schedule::new(m),
        volatile: Some(VolatileState {
            checkpoint: plan.policy.checkpoint_period(),
            originals,
            live: HashMap::new(),
            wasted_ticks: 0,
            interrupted: HashSet::new(),
        }),
    });
    let mut sim = Simulation::new(machine);
    for job in &prepared {
        sim.schedule_at(job.release, OnlineEvent::Arrive(job.clone()));
    }
    // Failure events are seeded before the run, so the FIFO tie-break fires
    // a NodeDown *before* any same-instant Finish (scheduled later, at
    // commit time): a job ending exactly when its node dies has already
    // finished and is not killed.
    for o in &plan.outages {
        sim.schedule_at(
            o.start,
            OnlineEvent::NodeDown {
                node: o.node,
                up: o.end,
            },
        );
        sim.schedule_at(o.end, OnlineEvent::NodeUp { node: o.node });
    }
    // Budget: every job arrives once and can be killed at most once per
    // outage (a kill needs a node to go down), plus two events per outage;
    // ×4 covers the decision fan-out, +16 is slack.
    let n = prepared.len() as u64;
    let k = plan.outages.len() as u64;
    let stats = sim.run_to_completion(4 * (n + n * k + 2 * k) + 16);
    let (kills, resubmits) = (sim.model().kills(), sim.model().resubmits());
    let (dispatch, completed, still_pending) = sim.into_model().into_parts();
    assert!(
        still_pending.is_empty(),
        "{}: {} jobs never committed",
        policy.name(),
        still_pending.len()
    );
    let replan_touched = dispatch.planner.as_ref().map(|p| p.touched());
    let vol = dispatch.volatile.expect("volatile driver keeps its state");
    let mut records: Vec<CompletedJob> = completed
        .iter()
        .map(|c| {
            let orig = &vol.originals[&c.job.id];
            CompletedJob::from_job(orig, c.start, c.end, orig.min_procs())
        })
        .collect();
    records.sort_by_key(|r| r.id);
    assert_eq!(
        records.len(),
        prepared.len(),
        "every job must complete exactly once"
    );
    debug_assert!(
        records.windows(2).all(|w| w[0].id < w[1].id),
        "duplicate completion records"
    );
    // Interrupted-job slowdowns in sorted-id order: deterministic, and
    // identical across the planner and oracle paths.
    let slowdowns: Vec<f64> = records
        .iter()
        .filter(|r| vol.interrupted.contains(&r.id))
        .map(|r| {
            let len = match vol.originals[&r.id].kind {
                JobKind::Rigid { len, .. } => len.ticks(),
                _ => unreachable!(),
            };
            r.flow().ticks() as f64 / len as f64
        })
        .collect();
    let failures =
        FailureStats::evaluate(useful_area, vol.wasted_ticks, kills, resubmits, &slowdowns);
    VolatileOutcome {
        records,
        stats,
        failures,
        jobs: prepared,
        replan_touched,
    }
}

/// Outcome of one open-arrival (steady-state) drive: streaming criteria
/// over every counted completion, per-class post-warmup response
/// distributions, and the bounded-memory witnesses.
pub struct OpenOutcome {
    /// §3 criteria over *all* counted completions (warmup included — the
    /// criteria describe the run; the response distributions describe the
    /// steady state).
    pub criteria: Criteria,
    /// Per-class post-warmup response distributions.
    pub responses: Vec<ClassResponse>,
    /// Arrivals fed into the machine.
    pub arrivals: u64,
    /// Completions counted (= the stopping target unless a feed horizon
    /// drained the stream first).
    pub completions: u64,
    /// High-water mark of live (pending + running) jobs — the witness that
    /// memory tracked queue depth, not stream length.
    pub max_live: usize,
    /// Leading completions the warmup rule discarded.
    pub warmup_cut: usize,
}

/// Drive `policy` over an unbounded open-arrival stream until the entry's
/// stopping rule fires: the steady-state sibling of [`des_online`].
///
/// Arrivals are pulled one ahead from the seeded stream (the event queue
/// never holds more than one future arrival), finished commitments are
/// folded into streaming accumulators by the machine's sink instead of
/// being retained, and the policy plans through the same
/// `PolicyDispatch` paths as the finite driver — minus the end-of-run
/// schedule aggregate, which would grow with the stream. Memory is
/// `O(live jobs + counted completions)`.
///
/// Slowdown here is `flow / runtime` (runtime = completion − start), the
/// open-queueing convention: over a stream there is no fixed instance to
/// normalize against, and for rigid jobs runtime is the natural service
/// denominator.
pub fn des_online_open(
    policy: &dyn Policy,
    open: &OpenEntry,
    m: usize,
    ctx: &PolicyCtx,
    seed: u64,
) -> OpenOutcome {
    assert_eq!(
        policy.outcome_kind(),
        OutcomeKind::Rect,
        "{}: the open driver is rectangle-only, like every DES executor",
        policy.name()
    );
    assert_eq!(
        ctx.release_mode,
        ReleaseMode::Online,
        "an open stream needs honest online releases"
    );
    let mut stream = open.stream.stream(m, SimRng::seed_from(seed));
    let source = std::iter::from_fn(move || {
        // The class index rides along inside the job as its `user` tag.
        let (_class, job) = stream.next_job();
        Some((job.release, job))
    });
    // The sink is owned by the machine; shared cells hand the accumulators
    // back to this frame after the drive.
    let folded = std::rc::Rc::new(std::cell::RefCell::new((
        SteadyState::new(),
        CriteriaAcc::new(),
    )));
    let sink = {
        let folded = std::rc::Rc::clone(&folded);
        move |c: Commitment<Job>| {
            // Open streams are rigid, so the allotment is the job's own.
            let rec = CompletedJob::from_job(&c.job, c.start, c.end, c.job.min_procs());
            let flow = rec.flow().as_secs_f64();
            let runtime = c.end.saturating_sub(c.start).as_secs_f64();
            let slowdown = if runtime > 0.0 { flow / runtime } else { 1.0 };
            let (steady, crit) = &mut *folded.borrow_mut();
            steady.record(c.job.user.0, flow, slowdown);
            crit.push(&rec);
        }
    };
    let feed_until = open.horizon_s.map_or(Time::MAX, Time::from_secs_f64);
    let mut machine = OpenOnlineMachine::new(
        PolicyDispatch {
            policy,
            m,
            ctx,
            committed: Timeline::with_procs(m),
            schedule: None,
            planner: policy.incremental_planner(m, ctx),
            plan_scratch: Schedule::new(m),
            volatile: None,
        },
        source,
        feed_until,
        sink,
    );
    let first = machine.first_arrival();
    let mut sim = Simulation::new(machine);
    if let Some((t, job)) = first {
        sim.schedule_at(t, OnlineEvent::Arrive(job));
    }
    // The stopping rule lives here, not in the machine: step until the
    // completion target is met or the (horizon-bounded) stream drains.
    while sim.model().completions() < open.stop_completions && sim.step() {}
    let machine = sim.into_model();
    let (arrivals, completions, max_live) = (
        machine.arrivals(),
        machine.completions(),
        machine.max_live(),
    );
    assert!(
        completions > 0,
        "open stream produced no completions (horizon {:?} s admitted nothing)",
        open.horizon_s
    );
    drop(machine); // releases the sink's clone of `folded`
    let (steady, crit) = std::rc::Rc::try_unwrap(folded)
        .expect("sink dropped with the machine")
        .into_inner();
    let cut = steady.warmup_cut(open.warmup);
    OpenOutcome {
        criteria: crit.finish(),
        responses: steady.per_class(cut, open.batches),
        arrivals,
        completions,
        max_live,
        warmup_cut: cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_core::policy::registry;
    use lsps_des::Dur;

    /// The policies the DES executors can run (see [`Executor::supports`]).
    fn rect_registry() -> Vec<Box<dyn Policy>> {
        registry()
            .into_iter()
            .filter(|p| p.outcome_kind() == OutcomeKind::Rect)
            .collect()
    }

    fn runner() -> ExperimentRunner {
        let mut r = ExperimentRunner::new(rect_registry());
        r.workloads = vec![
            WorkloadCase::from_spec("fig2-par", 7, WorkloadSpec::fig2_parallel(30)),
            WorkloadCase::from_spec("fig2-seq", 7, WorkloadSpec::fig2_sequential(30)),
        ];
        r.platforms = vec![PlatformCase::new("m32", 32)];
        r
    }

    #[test]
    fn full_registry_cross_product_runs() {
        // Under `direct`, *every* registry policy — all three outcome
        // kinds — runs through the one code path. (The fig2 workloads are
        // moldable/sequential, inside every policy's domain.)
        let mut r = runner();
        r.policies = registry();
        let cells = r.run();
        assert_eq!(cells.len(), registry().len() * 2);
        for c in &cells {
            assert!(c.cmax_ratio >= 1.0 - 1e-9, "{}: beats the LB?", c.policy);
            assert!(c.utilization <= 1.0 + 1e-9, "{}", c.policy);
            assert_eq!(c.n, 30);
        }
        // Trial cells carry counters; everything else leaves them empty.
        for c in &cells {
            let has_stats = c.trials.is_some();
            assert_eq!(
                has_stats,
                c.policy == "nonclairvoyant-exp-trial",
                "{}",
                c.policy
            );
            assert_eq!(c.kills.is_some(), has_stats, "{}", c.policy);
            assert_eq!(c.wasted_ticks.is_some(), has_stats, "{}", c.policy);
        }
    }

    #[test]
    fn uniform_cells_run_on_speeded_platforms() {
        let mut r = ExperimentRunner::new(vec![lsps_core::policy::by_name("uniform-mct").unwrap()]);
        r.workloads = vec![WorkloadCase::from_spec(
            "fig2-seq",
            7,
            WorkloadSpec::fig2_sequential(30),
        )];
        // Two CPU generations in one cluster (§2.2 weak heterogeneity).
        let speeds: Vec<f64> = (0..16).map(|i| if i < 8 { 1.0 } else { 0.55 }).collect();
        r.platforms = vec![PlatformCase::uniform("two-gen", speeds)];
        let cells = r.run();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.m, 16);
        assert_eq!(c.n, 30);
        assert!(c.cmax_ratio >= 1.0 - 1e-9, "speed-aware LB holds");
        assert_eq!(c.trials, None, "uniform outcomes carry no trial counters");
    }

    #[test]
    #[should_panic(expected = "cannot replay or drive")]
    fn des_executors_reject_non_rect_policies() {
        let mut r =
            ExperimentRunner::new(vec![
                lsps_core::policy::by_name("nonclairvoyant-exp-trial").unwrap()
            ]);
        r.workloads = vec![WorkloadCase::from_spec(
            "fig2-seq",
            7,
            WorkloadSpec::fig2_sequential(10),
        )];
        r.platforms = vec![PlatformCase::new("m8", 8)];
        r.executor = Executor::DesOnline;
        r.run();
    }

    #[test]
    fn des_replay_matches_direct_extraction() {
        let mut r = runner();
        r.workloads.truncate(1);
        let direct = r.run();
        r.executor = Executor::DesReplay;
        let replayed = r.run();
        assert_eq!(direct.len(), replayed.len());
        for (a, b) in direct.iter().zip(&replayed) {
            assert_eq!(a.policy, b.policy);
            assert!((a.criteria.cmax - b.criteria.cmax).abs() < 1e-12);
            assert!((a.criteria.mean_flow - b.criteria.mean_flow).abs() < 1e-12);
            assert!(
                (a.criteria.weighted_sum_completion - b.criteria.weighted_sum_completion).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn csv_schema_is_stable() {
        let mut r = runner();
        r.workloads.truncate(1);
        r.policies = vec![lsps_core::policy::by_name("list-fcfs").expect("registered")];
        let cells = r.run();
        let csv = to_csv(&cells);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().expect("one data row");
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        assert!(row.starts_with("list-fcfs,direct,fig2-par,7,m32,32,30,"));
    }

    #[test]
    fn des_online_commits_everything_and_respects_arrivals() {
        let mut r = runner();
        r.workloads.truncate(1);
        r.executor = Executor::DesOnline;
        let cells = r.run();
        assert_eq!(cells.len(), rect_registry().len());
        for c in &cells {
            assert_eq!(c.n, 30, "{}", c.policy);
            assert_eq!(c.executor, "des-online");
            assert!(c.cmax_ratio >= 1.0 - 1e-9, "{}", c.policy);
        }
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        for executor in Executor::ALL {
            let mut r = runner();
            r.executor = executor;
            r.threads = 1;
            let sequential = to_csv(&r.run());
            r.threads = 4;
            let parallel = to_csv(&r.run());
            assert_eq!(sequential, parallel, "{}", executor.name());
        }
    }

    #[test]
    fn executor_names_round_trip_through_fromstr_and_display() {
        for e in Executor::ALL {
            assert_eq!(e.to_string().parse::<Executor>(), Ok(e));
            assert_eq!(e.name().parse::<Executor>(), Ok(e));
        }
        let err = "batch".parse::<Executor>().unwrap_err();
        assert_eq!(err, UnknownExecutor("batch".into()));
        assert!(err.to_string().contains("des-online"));
        // Strict: the mapping is the stable CSV identifier, nothing looser.
        assert!("Direct".parse::<Executor>().is_err());
    }

    fn fixture(name: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/data")
            .join(name)
    }

    #[test]
    fn swf_file_workload_feeds_the_runner() {
        let case = WorkloadCase::from_swf_file("trace", 5, fixture("sample_trace.swf"))
            .expect("fixture parses");
        let jobs = case.generate(16);
        assert_eq!(jobs.len(), 10);
        assert!(jobs.iter().all(|j| j.min_procs() <= 8));
        // Submits are staggered: the trace exercises the release-date path.
        assert!(jobs.last().unwrap().release > Time::ZERO);
        let mut r = ExperimentRunner::new(vec![lsps_core::policy::by_name("list-fcfs").unwrap()]);
        r.workloads = vec![case];
        r.platforms = vec![PlatformCase::new("m16", 16)];
        let cells = r.run();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].n, 10);
        assert!(cells[0].cmax_ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn jsonl_file_workload_round_trips_profiles() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let jobs = vec![
            Job::rigid(1, 4, Dur::from_ticks(100)),
            Job::moldable(
                2,
                MoldableProfile::from_model(Dur::from_ticks(500), &SpeedupModel::Linear, 8),
            ),
        ];
        let dir = std::env::temp_dir().join(format!("lsps-jsonl-case-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, lsps_workload::swf::to_jsonl(&jobs)).unwrap();
        let case = WorkloadCase::from_jsonl_file("jsonl", 3, &path).expect("round-trips");
        assert_eq!(case.generate(16), jobs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_load_errors_are_reported() {
        let missing = WorkloadCase::from_swf_file("x", 0, "/nonexistent/trace.swf");
        assert!(matches!(missing, Err(TraceLoadError::Io(_))));
        let dir = std::env::temp_dir().join(format!("lsps-bad-swf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.swf");
        std::fs::write(&path, "1 2 3\n").unwrap();
        let bad = WorkloadCase::from_swf_file("x", 0, &path);
        assert!(matches!(bad, Err(TraceLoadError::Parse(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_cells_subset_matches_full_run() {
        let r = runner();
        let full = r.run();
        let order = r.cell_order();
        // Every other cell, out of their cross-product positions.
        let subset: Vec<_> = order.iter().copied().step_by(2).collect();
        let partial = r.run_cells(&subset);
        assert_eq!(partial.len(), subset.len());
        for (cell, &(pi, wi, ki)) in partial.iter().zip(&subset) {
            let i = order.iter().position(|t| *t == (pi, wi, ki)).unwrap();
            assert_eq!(cell.csv_row(), full[i].csv_row());
        }
    }

    #[test]
    fn summarize_groups_in_first_seen_order() {
        let mk = |policy: &str, v: f64| Cell {
            policy: policy.into(),
            executor: "direct".into(),
            workload: "w".into(),
            seed: 0,
            platform: "p".into(),
            m: 1,
            n: 1,
            criteria: Criteria::evaluate(&[CompletedJob::from_job(
                &Job::sequential(1, Dur::from_ticks(1)),
                Time::ZERO,
                Time::from_ticks(1),
                1,
            )]),
            cmax_ratio: v,
            csum_ratio: v,
            wsum_ratio: v,
            utilization: 1.0,
            trials: None,
            kills: None,
            wasted_ticks: None,
            class_names: None,
            responses: None,
            failures: None,
        };
        let cells = vec![mk("b", 1.0), mk("a", 2.0), mk("b", 3.0)];
        let grouped = summarize_by(&cells, |c| c.policy.clone(), |c| c.cmax_ratio);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "b");
        assert_eq!(grouped[0].1.mean(), 2.0);
        assert_eq!(grouped[1].0, "a");
    }
}

#[cfg(test)]
mod replan_tests {
    //! Differential tests for the incremental planner: the retained
    //! full-replan `schedule_pending` path is the oracle, and the planner
    //! must be bit-identical to it — assignments (starts, ends, exact
    //! processor sets), committed intervals and completion records alike.

    use super::*;
    use lsps_core::backfill::Reservation;
    use lsps_core::policy::Backfilling;
    use lsps_des::{Dur, SimRng};
    use proptest::prelude::*;

    use crate::families::large_scale_instance;

    fn online_ctx(factor: f64) -> PolicyCtx {
        PolicyCtx {
            release_mode: ReleaseMode::Online,
            estimate_factor: factor,
            ..PolicyCtx::default()
        }
    }

    proptest! {
        /// Incremental vs full-replan over random arrival/length/width
        /// interleavings, all three estimate regimes, both flavours, with
        /// and without an advance reservation in the way.
        #[test]
        fn planner_matches_full_replan_oracle(
            specs in prop::collection::vec((1usize..6, 1u64..40, 0u64..80), 1..30),
            factor_pick in 0usize..3,
            easy in any::<bool>(),
            with_resv in any::<bool>(),
            resv_spec in (0u64..50, 1u64..25, 1usize..3),
        ) {
            let m = 5;
            let jobs: Vec<Job> = specs.iter().enumerate()
                .map(|(i, &(q, len, rel))| {
                    Job::rigid(i as u64, q.min(m), Dur::from_ticks(len))
                        .released_at(Time::from_ticks(rel))
                })
                .collect();
            let mut ctx = online_ctx([1.0, 1.3, 2.0][factor_pick]);
            if with_resv {
                let (start, len, procs) = resv_spec;
                ctx.reservations.push(Reservation {
                    start: Time::from_ticks(start),
                    end: Time::from_ticks(start + len),
                    procs,
                });
            }
            let policy: Box<dyn Policy> = if easy {
                Box::new(Backfilling::easy())
            } else {
                Box::new(Backfilling::conservative())
            };
            let fast = des_online(policy.as_ref(), &jobs, m, &ctx);
            let slow = des_online_full_replan(policy.as_ref(), &jobs, m, &ctx);
            prop_assert!(fast.replan_touched.is_some(), "planner must be active");
            prop_assert!(slow.replan_touched.is_none(), "oracle must not use the planner");
            prop_assert_eq!(
                fast.run.schedule.assignments(),
                slow.run.schedule.assignments(),
                "placements diverged"
            );
            prop_assert_eq!(&fast.records, &slow.records, "records diverged");
        }

        /// Failure-aware planner vs the naive kill-and-rerun oracle (full
        /// replan, no persistent state) over random failure interleavings:
        /// records, kill counts and waste accounting must all agree, under
        /// both recovery policies and all estimate regimes.
        #[test]
        fn volatile_planner_matches_kill_and_rerun_oracle(
            specs in prop::collection::vec((1usize..4, 1u64..40, 0u64..80), 1..20),
            raw_outages in prop::collection::vec((0u32..4, 0u64..150, 1u64..40), 0..10),
            factor_pick in 0usize..3,
            easy in any::<bool>(),
            checkpoint_ticks in 0u64..25,
        ) {
            let m = 4;
            let jobs: Vec<Job> = specs.iter().enumerate()
                .map(|(i, &(q, len, rel))| {
                    Job::rigid(i as u64, q.min(m), Dur::from_ticks(len))
                        .released_at(Time::from_ticks(rel))
                })
                .collect();
            // Raw draws → per-node non-overlapping outages: sort by
            // (node, start) and drop any outage starting inside its
            // predecessor's repair window.
            let mut sorted = raw_outages.clone();
            sorted.sort_by_key(|&(node, start, _)| (node, start));
            let mut outages: Vec<Outage> = Vec::new();
            let mut last_end = HashMap::new();
            for (node, start, len) in sorted {
                let start = Time::from_ticks(start);
                if last_end.get(&node).is_some_and(|&e| start < e) {
                    continue;
                }
                let end = start + Dur::from_ticks(len);
                last_end.insert(node, end);
                outages.push(Outage { node, start, end });
            }
            outages.sort_by_key(|o| (o.start, o.node));
            let plan = FailurePlan {
                outages,
                // 0 = resubmit-from-scratch; otherwise checkpoint every
                // `checkpoint_ticks` ticks.
                policy: match checkpoint_ticks {
                    0 => FailurePolicy::Resubmit,
                    t => FailurePolicy::Checkpoint { period_s: t as f64 / 1000.0 },
                },
            };
            let ctx = online_ctx([1.0, 1.3, 2.0][factor_pick]);
            let policy: Box<dyn Policy> = if easy {
                Box::new(Backfilling::easy())
            } else {
                Box::new(Backfilling::conservative())
            };
            let fast = des_online_volatile(policy.as_ref(), &jobs, m, &ctx, &plan, true);
            let slow = des_online_volatile(policy.as_ref(), &jobs, m, &ctx, &plan, false);
            prop_assert!(fast.replan_touched.is_some(), "planner must be active");
            prop_assert!(slow.replan_touched.is_none(), "oracle must not use the planner");
            prop_assert_eq!(&fast.records, &slow.records, "records diverged");
            prop_assert_eq!(&fast.failures, &slow.failures, "failure accounting diverged");
            prop_assert_eq!(fast.records.len(), jobs.len(), "every job completes once");
            prop_assert!(fast.failures.goodput > 0.0 && fast.failures.goodput <= 1.0);
        }
    }

    /// A failure landing exactly on a commitment boundary: the job that
    /// ends at the failure instant has already completed (the NodeDown is
    /// seeded first and the FIFO tie-break fires it before the same-instant
    /// Finish, but `end == now` is not a victim), so nothing is killed,
    /// nothing double-killed, and no booking leaks — later work still plans
    /// cleanly around the outage window on both paths.
    #[test]
    fn failure_at_commitment_boundary_neither_double_kills_nor_leaks_a_booking() {
        use lsps_workload::{FailureRegime, ScriptedOutage};
        let jobs = vec![
            Job::rigid(0, 1, Dur::from_secs(10)),
            Job::rigid(1, 1, Dur::from_secs(2)).released_at(Time::from_secs(11)),
        ];
        let trace = FailureTraceSpec {
            regime: FailureRegime::Scripted {
                outages: vec![ScriptedOutage {
                    node: 0,
                    down_s: 10.0, // exactly job 0's completion instant
                    up_s: 15.0,
                }],
            },
            repair_s: lsps_workload::DistSpec::Fixed(1.0),
            horizon_s: 100.0,
        };
        let plan = FailurePlan {
            outages: trace.generate(1, &mut SimRng::seed_from(0)),
            policy: FailurePolicy::Resubmit,
        };
        let ctx = online_ctx(1.0);
        let policy = Backfilling::easy();
        for use_planner in [true, false] {
            let out = des_online_volatile(&policy, &jobs, 1, &ctx, &plan, use_planner);
            assert_eq!(out.failures.kills, 0, "boundary completion must survive");
            assert_eq!(out.failures.resubmits, 0);
            assert_eq!(out.failures.wasted_ticks, 0);
            assert_eq!(out.failures.goodput, 1.0);
            assert_eq!(out.records.len(), 2);
            assert_eq!(out.records[0].completion, Time::from_secs(10));
            // Job 1 arrives mid-outage: it must wait for the repair — the
            // outage window is booked, not leaked, on both paths.
            assert_eq!(out.records[1].start, Time::from_secs(15));
            assert_eq!(out.records[1].completion, Time::from_secs(17));
        }
    }

    /// Deterministic recovery accounting on one machine: a kill 4 s into a
    /// 10 s job wastes 4 s under resubmit, but only 1 s under 3 s
    /// checkpointing (the last completed checkpoint at 3 s survives).
    #[test]
    fn checkpoint_policy_trims_the_rerun_and_the_waste() {
        use lsps_workload::{FailureRegime, ScriptedOutage};
        let jobs = vec![Job::rigid(0, 1, Dur::from_secs(10))];
        let trace = FailureTraceSpec {
            regime: FailureRegime::Scripted {
                outages: vec![ScriptedOutage {
                    node: 0,
                    down_s: 4.0,
                    up_s: 6.0,
                }],
            },
            repair_s: lsps_workload::DistSpec::Fixed(1.0),
            horizon_s: 100.0,
        };
        let outages = trace.generate(1, &mut SimRng::seed_from(0));
        let ctx = online_ctx(1.0);
        let policy = Backfilling::conservative();
        let resubmit = des_online_volatile(
            &policy,
            &jobs,
            1,
            &ctx,
            &FailurePlan {
                outages: outages.clone(),
                policy: FailurePolicy::Resubmit,
            },
            true,
        );
        assert_eq!(resubmit.failures.kills, 1);
        assert_eq!(resubmit.failures.resubmits, 1);
        assert_eq!(resubmit.failures.wasted_ticks, Dur::from_secs(4).ticks());
        // Restart from scratch at repair: [6, 16).
        assert_eq!(resubmit.records[0].start, Time::from_secs(6));
        assert_eq!(resubmit.records[0].completion, Time::from_secs(16));
        let ckpt = des_online_volatile(
            &policy,
            &jobs,
            1,
            &ctx,
            &FailurePlan {
                outages,
                policy: FailurePolicy::Checkpoint { period_s: 3.0 },
            },
            true,
        );
        assert_eq!(ckpt.failures.kills, 1);
        // 4 s of work, checkpoint at 3 s → 1 s lost, 7 s left: [6, 13).
        assert_eq!(ckpt.failures.wasted_ticks, Dur::from_secs(1).ticks());
        assert_eq!(ckpt.records[0].start, Time::from_secs(6));
        assert_eq!(ckpt.records[0].completion, Time::from_secs(13));
        assert_eq!(ckpt.failures.interrupted_slowdown, Some(1.3));
        assert!(ckpt.failures.goodput > resubmit.failures.goodput);
    }

    fn sample_open_entry(rho: f64, stop: u64) -> OpenEntry {
        use lsps_metrics::WarmupSpec;
        use lsps_workload::{DistSpec, JobClass, OpenArrival, OpenStreamSpec};
        OpenEntry {
            stream: OpenStreamSpec {
                rho,
                arrival: OpenArrival::Poisson,
                classes: vec![
                    JobClass {
                        name: "narrow".into(),
                        mix: 3.0,
                        width: DistSpec::Fixed(1.0),
                        service_s: DistSpec::Exp(120.0),
                    },
                    JobClass {
                        name: "wide".into(),
                        mix: 1.0,
                        width: DistSpec::Uniform(2.0, 6.0),
                        service_s: DistSpec::Exp(300.0),
                    },
                ],
            },
            stop_completions: stop,
            horizon_s: None,
            warmup: WarmupSpec::Fraction(0.2),
            batches: 10,
        }
    }

    #[test]
    fn open_drive_hits_the_completion_target_in_bounded_memory() {
        let policy = lsps_core::policy::by_name("backfill-easy").unwrap();
        let ctx = PolicyCtx::default();
        let open = sample_open_entry(0.7, 600);
        let out = des_online_open(policy.as_ref(), &open, 16, &ctx, 11);
        assert_eq!(out.completions, 600);
        assert!(out.arrivals >= 600);
        assert_eq!(
            out.criteria.n, 600,
            "criteria fold every counted completion"
        );
        // The live-set high water tracks queue depth, not stream length.
        assert!(
            out.max_live < 600,
            "max_live {} ~ stream length",
            out.max_live
        );
        // Warmup applies before the class stats.
        assert_eq!(out.warmup_cut, 120);
        let n_post: usize = out.responses.iter().map(|r| r.n).sum();
        assert_eq!(n_post, 600 - out.warmup_cut);
        // Both classes completed, reported in index order with ordered
        // percentiles and slowdown ≥ 1 (a started job never beats its own
        // runtime).
        let classes: Vec<u32> = out.responses.iter().map(|r| r.class).collect();
        assert_eq!(classes, vec![0, 1]);
        for r in &out.responses {
            assert!(r.mean_flow_s > 0.0);
            assert!(r.p50_flow_s <= r.p95_flow_s && r.p95_flow_s <= r.p99_flow_s);
            assert!(r.max_slowdown >= 1.0);
        }
    }

    #[test]
    fn open_drive_is_bit_reproducible_per_seed() {
        let policy = lsps_core::policy::by_name("backfill-conservative").unwrap();
        let ctx = PolicyCtx::default();
        let open = sample_open_entry(0.8, 300);
        let a = des_online_open(policy.as_ref(), &open, 8, &ctx, 42);
        let b = des_online_open(policy.as_ref(), &open, 8, &ctx, 42);
        assert_eq!(a.criteria, b.criteria);
        assert_eq!(a.responses, b.responses);
        assert_eq!((a.arrivals, a.max_live), (b.arrivals, b.max_live));
        let c = des_online_open(policy.as_ref(), &open, 8, &ctx, 43);
        assert_ne!(
            a.criteria.mean_flow, c.criteria.mean_flow,
            "different seeds sample different paths"
        );
    }

    #[test]
    fn open_drive_horizon_drains_instead_of_hitting_the_target() {
        let policy = lsps_core::policy::by_name("backfill-easy").unwrap();
        let ctx = PolicyCtx::default();
        let mut open = sample_open_entry(0.5, 1_000_000);
        open.horizon_s = Some(4.0 * 3600.0);
        let out = des_online_open(policy.as_ref(), &open, 16, &ctx, 7);
        assert!(
            out.completions < 1_000_000,
            "four stream-hours cannot yield a million jobs"
        );
        // Everything admitted before the horizon drained to completion.
        assert_eq!(out.completions, out.arrivals);
    }

    /// With exact estimates every completion lands exactly on its booking
    /// end, so each decision's dirty window is the new arrivals and
    /// nothing else: the planner must examine each job exactly once over
    /// the whole run — O(dirty), not O(pending) per event.
    #[test]
    fn planner_touches_each_job_once_with_exact_estimates() {
        let n = 400;
        let m = 64;
        let jobs = large_scale_instance(&mut SimRng::seed_from(3), n, m);
        let ctx = online_ctx(1.0);
        for policy in [Backfilling::conservative(), Backfilling::easy()] {
            let run = des_online(&policy, &jobs, m, &ctx);
            let touched = run.replan_touched.expect("planner active");
            assert_eq!(
                touched,
                n as u64,
                "{}: planner touched {touched} jobs for {n} arrivals",
                policy.name()
            );
            assert_eq!(run.records.len(), n);
        }
    }
}
