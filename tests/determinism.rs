//! Reproducibility: every layer of the stack must produce bit-identical
//! results from the same seed — the property EXPERIMENTS.md relies on.

use lsps::core::policy::registry;
use lsps::dlt::selfsched::best_chunk;
use lsps::grid::cigri::run_cigri;
use lsps::grid::exchange::{run_exchange, ExchangeParams};
use lsps::grid::scenario::{ciment_locals, ciment_scenario, ScenarioParams};
use lsps::platform::presets;
use lsps::prelude::*;
use lsps_bench::runner::{to_csv, Executor, ExperimentRunner, PlatformCase, WorkloadCase};

#[test]
fn workload_generation_is_deterministic() {
    let spec = WorkloadSpec::fig2_parallel(100);
    let a = spec.generate(100, &mut SimRng::seed_from(9));
    let b = spec.generate(100, &mut SimRng::seed_from(9));
    assert_eq!(a, b);
}

#[test]
fn policies_are_deterministic() {
    let jobs = WorkloadSpec::fig2_parallel(80).generate(64, &mut SimRng::seed_from(4));
    let a = bicriteria_schedule(&jobs, 64, BiCriteriaParams::default());
    let b = bicriteria_schedule(&jobs, 64, BiCriteriaParams::default());
    assert_eq!(a, b);

    let zeroed: Vec<Job> = jobs
        .iter()
        .map(|j| {
            let mut c = j.clone();
            c.release = Time::ZERO;
            c
        })
        .collect();
    let a = mrt_schedule(&zeroed, 64, MrtParams::default());
    let b = mrt_schedule(&zeroed, 64, MrtParams::default());
    assert_eq!(a, b);
}

#[test]
fn grid_simulations_are_deterministic() {
    let p = presets::ciment();
    let mk = || ciment_locals(&p, 10, &mut SimRng::seed_from(2));
    let c = Campaign::new(1, 200, Dur::from_secs(60));
    let a = run_cigri(&p, mk(), vec![c.clone()], Dur::from_secs(30), true);
    let b = run_cigri(&p, mk(), vec![c], Dur::from_secs(30), true);
    assert_eq!(a.local_records, b.local_records);
    assert_eq!(a.kills, b.kills);
    assert_eq!(a.be_completed, b.be_completed);
    assert_eq!(a.campaign_done_at, b.campaign_done_at);
}

#[test]
fn exchange_simulation_is_deterministic() {
    let p = presets::ciment();
    let mk = || -> Vec<(usize, Job)> {
        (0..40)
            .map(|i| (0usize, Job::sequential(i, Dur::from_secs(100 + i))))
            .collect()
    };
    let a = run_exchange(&p, mk(), ExchangeParams::default());
    let b = run_exchange(&p, mk(), ExchangeParams::default());
    assert_eq!(a.records, b.records);
    assert_eq!(a.migrations, b.migrations);
}

#[test]
fn online_executor_is_deterministic_including_the_parallel_runner() {
    // Two full sweeps of the same seeded workload through the online
    // event-driven executor must render byte-identical CSV — and the
    // worker-pool fan-out must not perturb a single byte either, whatever
    // the thread count. This is the guard against ordering nondeterminism
    // in the pool (results are slot-indexed, not completion-ordered).
    let mk = |threads: usize| {
        // DesOnline drives rectangle policies only (capability check).
        let rect: Vec<_> = registry()
            .into_iter()
            .filter(|p| p.outcome_kind() == lsps::core::OutcomeKind::Rect)
            .collect();
        let mut r = ExperimentRunner::new(rect);
        r.workloads = vec![
            WorkloadCase::from_spec("fig2-par", 11, WorkloadSpec::fig2_parallel(40)),
            WorkloadCase::from_spec("fig2-seq", 11, WorkloadSpec::fig2_sequential(40)),
        ];
        r.platforms = vec![PlatformCase::new("m32", 32)];
        r.executor = Executor::DesOnline;
        r.threads = threads;
        r
    };
    let sequential = to_csv(&mk(1).run());
    let sequential_again = to_csv(&mk(1).run());
    assert_eq!(sequential, sequential_again, "two seeded runs diverged");
    for threads in [2, 4, 0] {
        let parallel = to_csv(&mk(threads).run());
        assert_eq!(
            sequential, parallel,
            "worker pool (threads = {threads}) perturbed the output"
        );
    }
}

#[test]
fn dlt_sweeps_are_deterministic() {
    let ws: Vec<Worker> = (0..12)
        .map(|i| Worker::new(1.0 + (i % 3) as f64 * 0.2, 5.0, 0.01))
        .collect();
    let (c1, p1) = best_chunk(5_000.0, &ws);
    let (c2, p2) = best_chunk(5_000.0, &ws);
    assert_eq!(c1, c2);
    assert_eq!(p1, p2);
}

#[test]
fn full_scenario_is_deterministic() {
    let params = ScenarioParams {
        local_jobs_per_cluster: 8,
        campaign_runs: 100,
        ..Default::default()
    };
    let a = ciment_scenario(params);
    let b = ciment_scenario(params);
    assert_eq!(a.with_grid.local_records, b.with_grid.local_records);
    assert!((a.fairness - b.fairness).abs() < 1e-15);
}
