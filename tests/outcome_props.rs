//! Property coverage of the outcome layer beyond rectangles:
//!
//! * the `UniformSchedule` validator *rejects* every overlap, early-start
//!   and wrong-shape mutation of a valid MCT schedule — the experiments'
//!   "fail loudly instead of reporting flattering garbage" contract holds
//!   for the uniform-machine representation too;
//! * the exponential-trial doubling's total processing per job respects
//!   the classical `4·p + 2·e` bound, and the reported `TrialStats` are
//!   exactly the closed-form trial/kill/waste counts the doubling implies
//!   (`wasted_ticks` consistent with `kills`, `trials = n + kills`).

use lsps::core::nonclairvoyant::exponential_trial_schedule;
use lsps::core::uniform::{uniform_list_schedule, UniformError, UniformSchedule};
use lsps::prelude::*;
use proptest::prelude::*;

fn seq_jobs(lens: &[u64], releases: &[u64]) -> Vec<Job> {
    lens.iter()
        .zip(releases)
        .enumerate()
        .map(|(i, (&len, &rel))| {
            Job::sequential(i as u64, Dur::from_ticks(len)).released_at(Time::from_ticks(rel))
        })
        .collect()
}

/// Closed-form kill count of the doubling: the smallest `k` with
/// `2^k · e ≥ p` (zero when the first estimate already covers the job).
fn expected_kills(p: u64, e: u64) -> u32 {
    let mut k = 0u32;
    let mut estimate = e as u128;
    while estimate < p as u128 {
        estimate *= 2;
        k += 1;
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A valid uniform MCT schedule validates; pushing any assignment one
    /// tick before its release is an `EarlyStart`, perturbing any span is
    /// a `WrongShape`, and stacking two jobs on one machine is an
    /// `Overlap` — each caught as *that* error.
    #[test]
    fn uniform_validation_rejects_every_mutation(
        lens in prop::collection::vec(1u64..1_000, 2..24),
        speeds in prop::collection::vec(0.25f64..4.0, 1..6),
        victim_seed in 0usize..1024,
    ) {
        let releases: Vec<u64> = (0..lens.len() as u64).map(|i| 1 + 37 * i).collect();
        let jobs = seq_jobs(&lens, &releases);
        let sched = uniform_list_schedule(&jobs, &speeds, JobOrder::Lpt);
        prop_assert_eq!(sched.validate(&jobs), Ok(()));
        let victim = victim_seed % sched.assignments().len();

        // Early start: one tick before the release (every release is ≥ 1).
        let mut mutated = sched.assignments().to_vec();
        let job = jobs.iter().find(|j| j.id == mutated[victim].job).unwrap();
        let span = mutated[victim].end - mutated[victim].start;
        mutated[victim].start = Time::from_ticks(job.release.ticks() - 1);
        mutated[victim].end = mutated[victim].start + span;
        let early = UniformSchedule::from_parts(speeds.clone(), mutated);
        prop_assert_eq!(early.validate(&jobs), Err(UniformError::EarlyStart(job.id)));

        // Wrong shape: the span no longer matches ⌈len / speed⌉.
        let mut mutated = sched.assignments().to_vec();
        mutated[victim].end += Dur::from_ticks(1);
        let warped = UniformSchedule::from_parts(speeds.clone(), mutated);
        prop_assert_eq!(
            warped.validate(&jobs),
            Err(UniformError::WrongShape(sched.assignments()[victim].job))
        );
    }

    /// Overlap mutation, isolated on a single machine with zero releases
    /// so no other validation rule can fire first: two assignments forced
    /// onto the same interval must be rejected as an `Overlap`.
    #[test]
    fn uniform_validation_rejects_overlap(
        lens in prop::collection::vec(1u64..1_000, 2..24),
        speed in 0.25f64..4.0,
    ) {
        let releases = vec![0u64; lens.len()];
        let jobs = seq_jobs(&lens, &releases);
        let sched = uniform_list_schedule(&jobs, &[speed], JobOrder::Fcfs);
        prop_assert_eq!(sched.validate(&jobs), Ok(()));
        // Slide the second assignment onto the first's start, span kept.
        let mut mutated = sched.assignments().to_vec();
        let span = mutated[1].end - mutated[1].start;
        mutated[1].start = mutated[0].start;
        mutated[1].end = mutated[1].start + span;
        let stacked = UniformSchedule::from_parts(vec![speed], mutated);
        prop_assert!(matches!(
            stacked.validate(&jobs),
            Err(UniformError::Overlap(_, _))
        ));
    }

    /// The doubling's ledger: `trials = n + kills`, `kills` and
    /// `wasted_ticks` equal their closed forms, waste is zero exactly when
    /// kills are, and every job's total processing (waste + true run,
    /// processor-weighted) respects the `4·p + 2·e` bound.
    #[test]
    fn exponential_trial_overhead_is_bounded_and_consistent(
        shapes in prop::collection::vec((1u64..2_000, 1usize..4), 1..30),
        estimate in 1u64..500,
        m in 4usize..9,
    ) {
        let jobs: Vec<Job> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(len, w))| Job::rigid(i as u64, w.min(m), Dur::from_ticks(len)))
            .collect();
        let e = Dur::from_ticks(estimate);
        let (sched, stats) = exponential_trial_schedule(&jobs, m, e);
        prop_assert_eq!(sched.validate(&jobs), Ok(()));

        // Closed-form ledger, job by job.
        let mut kills = 0u64;
        let mut wasted = 0u64;
        let mut bound_ok = true;
        for j in &jobs {
            let p = j.time_on(j.min_procs()).ticks();
            let q = j.min_procs() as u64;
            let k = expected_kills(p, estimate);
            kills += k as u64;
            // Killed trials burn e + 2e + … + 2^(k-1)·e = e·(2^k − 1) on
            // q processors each.
            let wasted_j = estimate * ((1u64 << k) - 1);
            wasted += wasted_j * q;
            // Total processing ≤ 4p + 2e, processor-weighted.
            bound_ok &= (wasted_j + p) * q <= (4 * p + 2 * estimate) * q;
        }
        prop_assert!(bound_ok, "a job exceeded the 4p + 2e bound");
        prop_assert_eq!(stats.trials, jobs.len() as u64 + kills, "trials = n + kills");
        prop_assert_eq!(stats.kills, kills);
        prop_assert_eq!(stats.wasted_ticks, wasted);
        prop_assert_eq!(stats.kills == 0, stats.wasted_ticks == 0);
        // Aggregate form of the bound, as the module docs state it.
        let total_work: u64 = jobs
            .iter()
            .map(|j| j.time_on(j.min_procs()).ticks() * j.min_procs() as u64)
            .sum();
        let n = jobs.len() as u64;
        prop_assert!(
            stats.wasted_ticks + total_work
                <= 4 * total_work + 2 * estimate * n * m as u64,
            "aggregate 4p + 2e bound"
        );
    }
}
