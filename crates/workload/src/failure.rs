//! Machine failure traces: deterministic per-node volatility.
//!
//! The paper's large-scale platform (CiGri harvesting idle cluster nodes
//! with best-effort jobs, §5) lives in a regime where machines come and
//! go; the related grid literature (Yildiz et al.'s "Merit of Simple
//! Policies", Legrand & Touati's volatile bag-of-tasks settings) sweeps
//! policies *against* that churn. This module turns reliability into a
//! first-class workload axis: a [`FailureTraceSpec`] describes per-node
//! failure/repair behaviour declaratively, and [`FailureTraceSpec::generate`]
//! expands it into a concrete, sorted list of [`Outage`]s.
//!
//! Determinism: all draws flow from the [`SimRng`] handed to `generate` in
//! a fixed order — nodes `0..m` sequentially, and per node an alternating
//! (uptime, repair) sequence until the horizon — so a given
//! (spec, m, seed) triple always produces the identical trace. That is the
//! property the campaign cache keys rely on, exactly as for
//! [`crate::open::OpenStreamSpec`].
//!
//! What happens to a job caught by an outage is *not* decided here: that
//! is the executor's [`FailurePolicy`] (kill-and-resubmit from scratch, or
//! restart from the last checkpoint interval).

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, SimRng, Time};

use crate::gen::DistSpec;

/// Per-node uptime law: how long a node runs between repair completion
/// and its next failure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailureRegime {
    /// Memoryless failures: uptimes are exponential with the given mean
    /// time between failures, seconds.
    Exponential {
        /// Mean uptime (MTBF), seconds.
        mtbf_s: f64,
    },
    /// Weibull uptimes — the classic empirical fit for cluster node
    /// failures (shape < 1: infant mortality / bursty; shape > 1: aging).
    Weibull {
        /// Scale parameter λ, seconds (≈ characteristic life).
        scale_s: f64,
        /// Shape parameter k (> 0).
        shape: f64,
    },
    /// Fully scripted outages — no draws at all; the repair distribution
    /// is ignored. Useful for regression tests and worked examples.
    Scripted {
        /// The literal outage list (validated non-overlapping per node).
        outages: Vec<ScriptedOutage>,
    },
}

/// One scripted node outage, in seconds since the simulation epoch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScriptedOutage {
    /// Node index (validated against the platform size at campaign level).
    pub node: u32,
    /// Failure instant, seconds.
    pub down_s: f64,
    /// Repair-complete instant, seconds (strictly after `down_s`).
    pub up_s: f64,
}

/// Declarative failure trace: uptime regime, repair-time law, and the
/// horizon after which no *new* failures are injected (outages already in
/// progress still run to their repair).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureTraceSpec {
    /// Per-node uptime law.
    pub regime: FailureRegime,
    /// Repair (downtime) distribution, seconds. Ignored for
    /// [`FailureRegime::Scripted`].
    pub repair_s: DistSpec,
    /// No failure *starts* at or after this instant, seconds.
    pub horizon_s: f64,
}

/// What the online executor does with a job killed by a node failure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Best-effort semantics (the CiGri model): all work is lost, the job
    /// is resubmitted at its full length.
    Resubmit,
    /// Coordinated checkpointing every `period_s` seconds of execution:
    /// the resubmitted job only re-runs the work since its last completed
    /// checkpoint. (Checkpoint cost itself is modelled as zero — the knob
    /// isolates the *restart* semantics.)
    Checkpoint {
        /// Checkpoint interval, seconds (> 0).
        period_s: f64,
    },
}

impl FailurePolicy {
    /// Check the policy parameters; returns the problems found (empty =
    /// valid).
    pub fn validate(&self) -> Vec<String> {
        match *self {
            FailurePolicy::Resubmit => Vec::new(),
            FailurePolicy::Checkpoint { period_s } => {
                if period_s > 0.0 && period_s.is_finite() {
                    Vec::new()
                } else {
                    vec![format!("checkpoint period {period_s} must be positive")]
                }
            }
        }
    }

    /// The checkpoint interval in ticks, if any.
    pub fn checkpoint_period(&self) -> Option<Dur> {
        match *self {
            FailurePolicy::Resubmit => None,
            FailurePolicy::Checkpoint { period_s } => {
                Some(Dur::from_secs_f64(period_s).max(Dur::from_ticks(1)))
            }
        }
    }
}

/// One concrete node outage: the node is unavailable on `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// Node index in `0..m`.
    pub node: u32,
    /// Failure instant (ticks).
    pub start: Time,
    /// Repair-complete instant (ticks, strictly after `start`).
    pub end: Time,
}

impl FailureTraceSpec {
    /// Check the spec is realizable; returns the problems found (empty =
    /// valid). Collect-all like the campaign validator so one pass reports
    /// every mistake. Node indices of scripted outages are validated
    /// against the platform size at campaign level (see [`Self::max_node`]).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if !(self.horizon_s > 0.0 && self.horizon_s.is_finite()) {
            errs.push(format!(
                "failure horizon {} must be positive and finite",
                self.horizon_s
            ));
        }
        match &self.regime {
            FailureRegime::Exponential { mtbf_s } => {
                if !(*mtbf_s > 0.0 && mtbf_s.is_finite()) {
                    errs.push(format!("MTBF {mtbf_s} must be positive and finite"));
                }
            }
            FailureRegime::Weibull { scale_s, shape } => {
                if !(*scale_s > 0.0 && scale_s.is_finite()) {
                    errs.push(format!(
                        "Weibull scale {scale_s} must be positive and finite"
                    ));
                }
                if !(*shape > 0.0 && shape.is_finite()) {
                    errs.push(format!("Weibull shape {shape} must be positive and finite"));
                }
            }
            FailureRegime::Scripted { outages } => {
                for (i, o) in outages.iter().enumerate() {
                    if !(o.down_s >= 0.0 && o.down_s.is_finite() && o.up_s.is_finite()) {
                        errs.push(format!(
                            "scripted outage {i}: non-finite or negative instant"
                        ));
                    } else if o.up_s <= o.down_s {
                        errs.push(format!(
                            "scripted outage {i}: up {} must follow down {}",
                            o.up_s, o.down_s
                        ));
                    }
                }
                // Per-node non-overlap: a node cannot fail while down.
                let mut by_node: Vec<&ScriptedOutage> = outages.iter().collect();
                by_node
                    .sort_by(|a, b| (a.node, a.down_s).partial_cmp(&(b.node, b.down_s)).unwrap());
                for w in by_node.windows(2) {
                    if w[0].node == w[1].node && w[1].down_s < w[0].up_s {
                        errs.push(format!(
                            "node {}: scripted outages overlap ([{}, {}) and [{}, {}))",
                            w[0].node, w[0].down_s, w[0].up_s, w[1].down_s, w[1].up_s
                        ));
                    }
                }
            }
        }
        if !matches!(self.regime, FailureRegime::Scripted { .. }) {
            let mean = self.repair_s.mean();
            if !(mean > 0.0 && mean.is_finite()) {
                errs.push(format!(
                    "mean repair time {mean} must be positive and finite"
                ));
            }
        }
        errs
    }

    /// Largest node index a scripted trace touches (None for stochastic
    /// regimes, which adapt to any platform size).
    pub fn max_node(&self) -> Option<u32> {
        match &self.regime {
            FailureRegime::Scripted { outages } => outages.iter().map(|o| o.node).max(),
            _ => None,
        }
    }

    /// Expand the spec into a concrete outage list for an `m`-node
    /// platform. Outages are non-overlapping per node, every outage has
    /// `end > start`, no outage *starts* at or after the horizon, and the
    /// result is sorted by `(start, node)` — the injection order the
    /// online executor schedules events in.
    pub fn generate(&self, m: usize, rng: &mut SimRng) -> Vec<Outage> {
        let mut out = Vec::new();
        let horizon = Time::from_secs_f64(self.horizon_s);
        match &self.regime {
            FailureRegime::Scripted { outages } => {
                for o in outages {
                    let start = Time::from_secs_f64(o.down_s);
                    let dur = Dur::from_secs_f64(o.up_s - o.down_s).max(Dur::from_ticks(1));
                    out.push(Outage {
                        node: o.node,
                        start,
                        end: start + dur,
                    });
                }
            }
            regime => {
                for node in 0..m as u32 {
                    let mut t = Time::ZERO;
                    loop {
                        let uptime_s = match regime {
                            FailureRegime::Exponential { mtbf_s } => rng.exp(*mtbf_s),
                            FailureRegime::Weibull { scale_s, shape } => {
                                rng.weibull(*shape, *scale_s)
                            }
                            FailureRegime::Scripted { .. } => unreachable!("handled above"),
                        };
                        // A failure at the very instant of repair would be a
                        // zero-length uptime; advance at least one tick so the
                        // per-node sequence strictly progresses.
                        let down = (t + Dur::from_secs_f64(uptime_s)).max(t + Dur::from_ticks(1));
                        if down >= horizon {
                            break;
                        }
                        let repair =
                            Dur::from_secs_f64(self.repair_s.sample(rng)).max(Dur::from_ticks(1));
                        out.push(Outage {
                            node,
                            start: down,
                            end: down + repair,
                        });
                        t = down + repair;
                    }
                }
            }
        }
        out.sort_by_key(|o| (o.start, o.node));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_spec() -> FailureTraceSpec {
        FailureTraceSpec {
            regime: FailureRegime::Exponential { mtbf_s: 3600.0 },
            repair_s: DistSpec::Exp(600.0),
            horizon_s: 86_400.0,
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = exp_spec();
        let a = spec.generate(8, &mut SimRng::seed_from(42));
        let b = spec.generate(8, &mut SimRng::seed_from(42));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a day at 1h MTBF on 8 nodes must fail");
        let c = spec.generate(8, &mut SimRng::seed_from(43));
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn outages_are_per_node_disjoint_and_inside_horizon() {
        for (name, spec) in [
            ("exp", exp_spec()),
            (
                "weibull",
                FailureTraceSpec {
                    regime: FailureRegime::Weibull {
                        scale_s: 3600.0,
                        shape: 0.7,
                    },
                    repair_s: DistSpec::Uniform(60.0, 1200.0),
                    horizon_s: 86_400.0,
                },
            ),
        ] {
            let spec: FailureTraceSpec = spec;
            let horizon = Time::from_secs(86_400);
            let outages = spec.generate(4, &mut SimRng::seed_from(7));
            assert!(outages.windows(2).all(|w| w[0].start <= w[1].start));
            for o in &outages {
                assert!(o.end > o.start, "{name}: empty outage");
                assert!(o.start < horizon, "{name}: outage starts past horizon");
            }
            for node in 0..4u32 {
                let mut per: Vec<_> = outages.iter().filter(|o| o.node == node).collect();
                per.sort_by_key(|o| o.start);
                for w in per.windows(2) {
                    assert!(w[1].start >= w[0].end, "{name}: node {node} overlaps");
                }
            }
        }
    }

    #[test]
    fn scripted_trace_is_literal() {
        let spec = FailureTraceSpec {
            regime: FailureRegime::Scripted {
                outages: vec![
                    ScriptedOutage {
                        node: 1,
                        down_s: 10.0,
                        up_s: 20.0,
                    },
                    ScriptedOutage {
                        node: 0,
                        down_s: 5.0,
                        up_s: 6.0,
                    },
                ],
            },
            repair_s: DistSpec::Fixed(1.0),
            horizon_s: 100.0,
        };
        assert!(spec.validate().is_empty());
        assert_eq!(spec.max_node(), Some(1));
        let outages = spec.generate(4, &mut SimRng::seed_from(0));
        assert_eq!(
            outages,
            vec![
                Outage {
                    node: 0,
                    start: Time::from_secs(5),
                    end: Time::from_secs(6),
                },
                Outage {
                    node: 1,
                    start: Time::from_secs(10),
                    end: Time::from_secs(20),
                },
            ]
        );
    }

    #[test]
    fn validate_collects_all_problems() {
        let spec = FailureTraceSpec {
            regime: FailureRegime::Weibull {
                scale_s: 0.0,
                shape: -1.0,
            },
            repair_s: DistSpec::Fixed(0.0),
            horizon_s: -5.0,
        };
        let errs = spec.validate();
        assert_eq!(errs.len(), 4, "{errs:?}");

        let overlapping = FailureTraceSpec {
            regime: FailureRegime::Scripted {
                outages: vec![
                    ScriptedOutage {
                        node: 2,
                        down_s: 0.0,
                        up_s: 10.0,
                    },
                    ScriptedOutage {
                        node: 2,
                        down_s: 5.0,
                        up_s: 15.0,
                    },
                ],
            },
            repair_s: DistSpec::Fixed(1.0),
            horizon_s: 100.0,
        };
        let errs = overlapping.validate();
        assert!(
            errs.iter().any(|e| e.contains("overlap")),
            "expected overlap error, got {errs:?}"
        );
    }

    #[test]
    fn checkpoint_policy_knobs() {
        assert!(FailurePolicy::Resubmit.validate().is_empty());
        assert_eq!(FailurePolicy::Resubmit.checkpoint_period(), None);
        let cp = FailurePolicy::Checkpoint { period_s: 300.0 };
        assert!(cp.validate().is_empty());
        assert_eq!(cp.checkpoint_period(), Some(Dur::from_secs(300)));
        assert!(!FailurePolicy::Checkpoint { period_s: 0.0 }
            .validate()
            .is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let spec = exp_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: FailureTraceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let pol = FailurePolicy::Checkpoint { period_s: 120.0 };
        let json = serde_json::to_string(&pol).unwrap();
        let back: FailurePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(pol, back);
    }
}
