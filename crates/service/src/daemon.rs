//! The `lsps-campaignd` state machine: campaign submission, the spec
//! journal, cache probing, least-loaded sharding over supervised worker
//! processes, and the HTTP query API.
//!
//! ## Lifecycle of a campaign
//!
//! `POST /campaigns` parses and expands the spec through
//! [`CampaignPlan::expand`] (rejecting invalid specs synchronously), then
//! derives the campaign id from the FNV-64 hash of the *canonical* spec
//! JSON — resubmitting the same spec (any key order) is idempotent. The
//! canonical JSON is journaled to `journal_dir/<id>.json` before the
//! submission returns, so a daemon restart replays every accepted
//! campaign. Each cell is probed against the content-addressed cell cache
//! (`Cached` on hit) and the misses are queued.
//!
//! ## Sharding and supervision
//!
//! Queued cells are dispatched to the least-loaded live worker, ties
//! broken by the cell's *home slot* — `fnv64(cache key) % workers` — so
//! equal-load assignment is deterministic and sticky by content. Each
//! worker holds at most [`INFLIGHT_CAP`] outstanding cells. A supervisor
//! thread ticks every ~50 ms: a worker with outstanding work but no
//! activity past the per-cell timeout is killed; dead workers have their
//! in-flight cells requeued (up to [`DaemonConfig::max_attempts`], then
//! `Failed`) and are respawned with a clean environment. Respawns back
//! off exponentially per slot (deterministic jitter, see
//! [`respawn_delay`]) and the whole fleet is capped at
//! [`DaemonConfig::max_respawns_per_min`] — a worker binary that dies on
//! startup costs a bounded trickle of spawns, not a fork bomb. Fresh
//! results are stored back into the cell cache, which is what makes
//! restart resume free: the replayed campaign finds every completed cell
//! already cached.
//!
//! ## Shutdown
//!
//! [`Daemon::drain`] is the graceful path (the `lsps-campaignd` binary
//! wires it to SIGTERM): new `POST /campaigns` submissions are refused
//! with 503, no further queued cells are dispatched, and in-flight cells
//! get a bounded grace period to finish — each completion is persisted to
//! the cell cache as it lands, so whatever the grace period covers is
//! progress a restart never recomputes. [`Daemon::shutdown`] is the
//! immediate path (kill the fleet); the journal and cache make even that
//! safe to resume from.
//!
//! Completed campaigns serve `GET /campaigns/{id}/aggregate` (and
//! `.../raw`, the per-cell rows) with the exact bytes
//! [`lsps_scenario::run_campaign`] would produce: cells come back from
//! workers through the lossless JSON round-trip and are reassembled in
//! canonical plan order before aggregation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsps_scenario::cache::CellCache;
use lsps_scenario::campaign::aggregate_csv;
use lsps_scenario::runner::to_csv;
use lsps_scenario::spec::fnv64;
use lsps_scenario::{write_file_atomic, CampaignOptions, CampaignPlan, Cell};
use serde::Value;

use crate::http::{read_request, respond, Request};
use crate::protocol::{FromWorker, ToWorker};

/// Maximum cells outstanding per worker process: enough to hide dispatch
/// latency, small enough that a worker death costs little rework.
pub const INFLIGHT_CAP: usize = 2;

/// Everything the daemon needs to run.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Worker-process count.
    pub workers: usize,
    /// A worker with outstanding cells but no completions for this long is
    /// considered wedged, killed, and its cells reassigned.
    pub cell_timeout: Duration,
    /// Dispatch attempts per cell before it is marked `Failed`.
    pub max_attempts: usize,
    /// Content-addressed cell cache directory (shared with
    /// `lsps-campaign`).
    pub cache_dir: PathBuf,
    /// Spec journal directory; replayed on startup.
    pub journal_dir: PathBuf,
    /// Directory relative trace paths resolve against.
    pub base_dir: Option<PathBuf>,
    /// Path to the `lsps-worker` binary.
    pub worker_cmd: PathBuf,
    /// Extra environment for *first-generation* workers only — the
    /// fault-injection hook. Respawned workers always run clean.
    pub worker_env: Vec<(String, String)>,
    /// Base delay before respawning a dead worker; doubles per
    /// consecutive failure of the same slot (capped, jittered — see
    /// [`respawn_delay`]).
    pub respawn_backoff: Duration,
    /// Hard ceiling on fleet-wide respawns per rolling minute; a slot
    /// that would exceed it stays down until the window frees.
    pub max_respawns_per_min: usize,
}

impl DaemonConfig {
    /// Defaults for a daemon driving `worker_cmd`.
    pub fn new(worker_cmd: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            workers: 2,
            cell_timeout: Duration::from_secs(120),
            max_attempts: 3,
            cache_dir: PathBuf::from("results/cache"),
            journal_dir: PathBuf::from("results/journal"),
            base_dir: None,
            worker_cmd: worker_cmd.into(),
            worker_env: Vec::new(),
            respawn_backoff: Duration::from_millis(100),
            max_respawns_per_min: 60,
        }
    }
}

/// Delay before respawning slot `widx` after its `failures`-th
/// consecutive loss: `base × 2^(failures−1)` capped at 64×, plus a
/// deterministic jitter of up to 25% derived from the slot and failure
/// count — slots that die together come back staggered, and the schedule
/// is reproducible run to run.
pub fn respawn_delay(widx: usize, failures: u32, base: Duration) -> Duration {
    let exp = failures.saturating_sub(1).min(6);
    let backoff = base.saturating_mul(1u32 << exp);
    let mut tag = [0u8; 12];
    tag[..8].copy_from_slice(&(widx as u64).to_le_bytes());
    tag[8..].copy_from_slice(&failures.to_le_bytes());
    let quarter = (backoff.as_nanos() / 4).min(u64::MAX as u128) as u64;
    let jitter = if quarter == 0 {
        0
    } else {
        fnv64(&tag) % quarter
    };
    backoff
        .checked_add(Duration::from_nanos(jitter))
        .unwrap_or(backoff)
}

/// Where one cell of a tracked campaign stands.
#[derive(Clone, Debug, PartialEq)]
enum CellState {
    /// Waiting for a worker slot.
    Queued,
    /// Dispatched to worker `worker`.
    Running {
        /// Worker slot index the cell was dispatched to.
        worker: usize,
    },
    /// Served from the cell cache at submission.
    Cached,
    /// Computed by a worker this run.
    Done,
    /// Exhausted its attempts.
    Failed,
}

/// One tracked campaign.
struct CampaignState {
    plan: CampaignPlan,
    states: Vec<CellState>,
    results: Vec<Option<Cell>>,
    attempts: Vec<usize>,
    /// First failure rendering, for the aggregate endpoint's error body.
    error: Option<String>,
}

impl CampaignState {
    /// (queued, running, cached, done, failed) counts.
    fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for s in &self.states {
            match s {
                CellState::Queued => c.0 += 1,
                CellState::Running { .. } => c.1 += 1,
                CellState::Cached => c.2 += 1,
                CellState::Done => c.3 += 1,
                CellState::Failed => c.4 += 1,
            }
        }
        c
    }

    /// No cell is queued or running.
    fn complete(&self) -> bool {
        !self
            .states
            .iter()
            .any(|s| matches!(s, CellState::Queued | CellState::Running { .. }))
    }
}

/// One supervised worker process.
struct WorkerSlot {
    child: Child,
    stdin: ChildStdin,
    /// Monotonic spawn counter; reader threads tag messages with the
    /// generation they were spawned for, so a stale reader can never
    /// mutate the slot's replacement.
    generation: u64,
    /// `(campaign id, cell index)` dispatched and not yet answered.
    inflight: Vec<(String, usize)>,
    /// Campaign ids already `Load`ed into this process.
    loaded: HashSet<String>,
    /// Last dispatch or completion; staleness past the cell timeout with
    /// a non-empty `inflight` means the worker is wedged.
    last_activity: Instant,
    /// Set once the worker is known lost; the supervisor respawns it.
    dead: bool,
}

struct Shared {
    campaigns: HashMap<String, CampaignState>,
    /// `None` until the initial spawn; `Some` thereafter (dead or alive).
    workers: Vec<Option<WorkerSlot>>,
    /// Queued `(campaign id, cell index)` in dispatch order.
    queue: VecDeque<(String, usize)>,
    /// Next worker generation.
    next_gen: u64,
    /// Set by [`Daemon::shutdown`]; readers stop requeueing.
    stopping: bool,
    /// Lifetime respawn count per slot (first spawns not counted).
    respawns: Vec<u64>,
    /// Consecutive losses per slot since its last completed cell; drives
    /// the exponential backoff, reset on any successful completion.
    consecutive_failures: Vec<u32>,
    /// Earliest instant the supervisor may respawn each slot.
    next_spawn_at: Vec<Instant>,
    /// Fleet-wide respawn timestamps inside the rolling rate window.
    respawn_times: VecDeque<Instant>,
    /// Edge detector so the rate-cap warning fires once per episode.
    rate_capped: bool,
}

/// The campaign service. Cheap to share: all state lives behind one
/// mutex, and every public method locks internally.
pub struct Daemon {
    cfg: DaemonConfig,
    cache: CellCache,
    shared: Mutex<Shared>,
    stop: AtomicBool,
    /// Set by [`Daemon::begin_drain`]: refuse new campaigns, stop
    /// dispatching queued cells, let in-flight cells finish.
    draining: AtomicBool,
}

impl Daemon {
    /// Build the service: create the cache and journal directories, spawn
    /// the worker fleet, replay the journal, start the supervisor.
    pub fn start(cfg: DaemonConfig) -> io::Result<Arc<Daemon>> {
        assert!(cfg.workers > 0, "daemon needs at least one worker");
        let cache = CellCache::new(&cfg.cache_dir)?;
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let daemon = Arc::new(Daemon {
            shared: Mutex::new(Shared {
                campaigns: HashMap::new(),
                workers: (0..cfg.workers).map(|_| None).collect(),
                queue: VecDeque::new(),
                next_gen: 0,
                stopping: false,
                respawns: vec![0; cfg.workers],
                consecutive_failures: vec![0; cfg.workers],
                next_spawn_at: vec![Instant::now(); cfg.workers],
                respawn_times: VecDeque::new(),
                rate_capped: false,
            }),
            cache,
            cfg,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });
        {
            let mut sh = daemon.shared.lock().expect("daemon state");
            for w in 0..daemon.cfg.workers {
                daemon.spawn_worker(&mut sh, w, true)?;
            }
        }
        daemon.replay_journal();
        let sup = Arc::clone(&daemon);
        std::thread::spawn(move || sup.supervise());
        Ok(daemon)
    }

    /// Re-submit every journaled spec (sorted for a deterministic replay
    /// order); completed campaigns resume entirely from the cache. Replay
    /// is tolerant of torn entries: a shard that is not valid JSON —
    /// e.g. a write truncated by power loss on a filesystem that fsyncs
    /// lazily — is skipped with a warning instead of aborting the replay,
    /// and every *parseable* campaign still resumes.
    fn replay_journal(self: &Arc<Daemon>) {
        let mut names = lsps_scenario::list_file_names(&self.cfg.journal_dir);
        names.sort();
        for name in names.iter().filter(|n| n.ends_with(".json")) {
            let path = self.cfg.journal_dir.join(name);
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    if serde_json::from_str::<Value>(&text).is_err() {
                        eprintln!(
                            "[campaignd] journal {name}: torn or truncated entry, skipping \
                             (resubmit the spec to re-journal it)"
                        );
                        continue;
                    }
                    if let Err(e) = self.submit(&text) {
                        eprintln!("[campaignd] journal {name}: {e}");
                    }
                }
                Err(e) => eprintln!("[campaignd] journal {name}: {e}"),
            }
        }
    }

    /// Accept a campaign spec (JSON text). Returns the campaign id;
    /// resubmitting an equivalent spec returns the existing id without
    /// touching its state.
    pub fn submit(&self, spec_text: &str) -> Result<String, String> {
        let spec: lsps_scenario::CampaignSpec =
            serde_json::from_str(spec_text).map_err(|e| format!("spec: {e}"))?;
        let opts = CampaignOptions {
            cache_dir: None,
            threads: 1,
            base_dir: self.cfg.base_dir.clone(),
        };
        let plan = CampaignPlan::expand(&spec, &opts).map_err(|e| e.to_string())?;
        let canonical = plan.canonical_spec_json();
        let id = format!("{:016x}", fnv64(canonical.as_bytes()));
        let mut sh = self.shared.lock().expect("daemon state");
        if sh.campaigns.contains_key(&id) {
            return Ok(id);
        }
        let n = plan.cells().len();
        let mut states = Vec::with_capacity(n);
        let mut results = Vec::with_capacity(n);
        for cell in plan.cells() {
            match self.cache.load(&cell.key) {
                Some(data) => {
                    states.push(CellState::Cached);
                    results.push(Some(data));
                }
                None => {
                    states.push(CellState::Queued);
                    results.push(None);
                }
            }
        }
        for (i, s) in states.iter().enumerate() {
            if *s == CellState::Queued {
                sh.queue.push_back((id.clone(), i));
            }
        }
        sh.campaigns.insert(
            id.clone(),
            CampaignState {
                plan,
                states,
                results,
                attempts: vec![0; n],
                error: None,
            },
        );
        write_file_atomic(&self.cfg.journal_dir, &format!("{id}.json"), &canonical);
        self.dispatch(&mut sh);
        Ok(id)
    }

    /// Spawn (or respawn) the worker in slot `widx` and its reader thread.
    /// `first` spawns apply [`DaemonConfig::worker_env`].
    fn spawn_worker(
        self: &Arc<Daemon>,
        sh: &mut Shared,
        widx: usize,
        first: bool,
    ) -> io::Result<()> {
        let mut cmd = Command::new(&self.cfg.worker_cmd);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if first {
            for (k, v) in &self.cfg.worker_env {
                cmd.env(k, v);
            }
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let generation = sh.next_gen;
        sh.next_gen += 1;
        sh.workers[widx] = Some(WorkerSlot {
            child,
            stdin,
            generation,
            inflight: Vec::new(),
            loaded: HashSet::new(),
            last_activity: Instant::now(),
            dead: false,
        });
        let daemon = Arc::clone(self);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<FromWorker>(&line) {
                    Ok(msg) => daemon.on_worker_msg(widx, generation, msg),
                    Err(e) => eprintln!("[campaignd] worker {widx}: unparseable reply: {e}"),
                }
            }
            // EOF: the process exited (crash, kill, or shutdown).
            let mut sh = daemon.shared.lock().expect("daemon state");
            daemon.fail_worker(&mut sh, widx, generation);
        });
        Ok(())
    }

    /// Mark the worker lost and requeue its in-flight cells. Idempotent
    /// per generation — the timeout path and the reader's EOF path can
    /// both call it.
    fn fail_worker(&self, sh: &mut Shared, widx: usize, generation: u64) {
        if sh.stopping {
            return;
        }
        let Some(slot) = sh.workers[widx].as_mut() else {
            return;
        };
        if slot.generation != generation || slot.dead {
            return;
        }
        slot.dead = true;
        let _ = slot.child.kill();
        let inflight = std::mem::take(&mut slot.inflight);
        sh.consecutive_failures[widx] = sh.consecutive_failures[widx].saturating_add(1);
        sh.next_spawn_at[widx] = Instant::now()
            + respawn_delay(
                widx,
                sh.consecutive_failures[widx],
                self.cfg.respawn_backoff,
            );
        for (cid, cell) in inflight {
            let Some(camp) = sh.campaigns.get_mut(&cid) else {
                continue;
            };
            camp.attempts[cell] += 1;
            if camp.attempts[cell] >= self.cfg.max_attempts {
                camp.states[cell] = CellState::Failed;
                camp.error
                    .get_or_insert_with(|| format!("cell {cell}: worker died repeatedly"));
            } else {
                camp.states[cell] = CellState::Queued;
                sh.queue.push_back((cid.clone(), cell));
            }
        }
    }

    /// One reply from worker `widx` (generation-tagged; stale readers are
    /// ignored).
    fn on_worker_msg(&self, widx: usize, generation: u64, msg: FromWorker) {
        let mut sh = self.shared.lock().expect("daemon state");
        {
            let Some(slot) = sh.workers[widx].as_mut() else {
                return;
            };
            if slot.generation != generation || slot.dead {
                return;
            }
            slot.last_activity = Instant::now();
        }
        match msg {
            FromWorker::Loaded { id, cells } => {
                if let Some(camp) = sh.campaigns.get(&id) {
                    if camp.plan.cells().len() != cells {
                        eprintln!(
                            "[campaignd] worker {widx}: campaign {id} expanded to {cells} cells, daemon has {}",
                            camp.plan.cells().len()
                        );
                    }
                }
            }
            FromWorker::Done { id, cell, data } => {
                // A completed cell proves the slot healthy; the next loss
                // starts the backoff ladder from the bottom again.
                sh.consecutive_failures[widx] = 0;
                let slot = sh.workers[widx].as_mut().expect("checked above");
                slot.inflight.retain(|(c, i)| !(c == &id && *i == cell));
                if let Some(camp) = sh.campaigns.get_mut(&id) {
                    if matches!(camp.states[cell], CellState::Running { worker } if worker == widx)
                    {
                        self.cache.store(&camp.plan.cells()[cell].key, &data);
                        camp.results[cell] = Some(*data);
                        camp.states[cell] = CellState::Done;
                    }
                }
                self.dispatch(&mut sh);
            }
            FromWorker::Error { id, cell, error } => {
                match cell {
                    Some(cell) => {
                        let slot = sh.workers[widx].as_mut().expect("checked above");
                        slot.inflight.retain(|(c, i)| !(c == &id && *i == cell));
                        if let Some(camp) = sh.campaigns.get_mut(&id) {
                            camp.attempts[cell] += 1;
                            if camp.attempts[cell] >= self.cfg.max_attempts {
                                camp.states[cell] = CellState::Failed;
                                camp.error.get_or_insert(format!("cell {cell}: {error}"));
                            } else {
                                camp.states[cell] = CellState::Queued;
                                sh.queue.push_back((id, cell));
                            }
                        }
                    }
                    None => {
                        // Load failed: the worker cannot run *any* cell of
                        // this campaign (e.g. an unreadable trace file), and
                        // every worker shares the environment — fail the
                        // campaign outright rather than retry in a loop.
                        if let Some(camp) = sh.campaigns.get_mut(&id) {
                            camp.error.get_or_insert(format!("load: {error}"));
                            for s in camp.states.iter_mut() {
                                if matches!(*s, CellState::Queued | CellState::Running { .. }) {
                                    *s = CellState::Failed;
                                }
                            }
                        }
                        sh.queue.retain(|(c, _)| c != &id);
                        for slot in sh.workers.iter_mut().flatten() {
                            slot.inflight.retain(|(c, _)| c != &id);
                        }
                    }
                }
                self.dispatch(&mut sh);
            }
        }
    }

    /// Drain the queue onto available workers: least-loaded live slot
    /// wins, ties broken by the cell's home slot (`fnv64(key) % workers`)
    /// so assignment is deterministic and content-sticky.
    fn dispatch(&self, sh: &mut Shared) {
        if self.draining.load(Ordering::SeqCst) {
            // Draining: in-flight cells finish (and persist to the cell
            // cache), queued cells wait for the journal replay of the
            // next boot.
            return;
        }
        while let Some((cid, cell)) = sh.queue.pop_front() {
            // Skip entries whose cell moved on (requeue dedup, load failure).
            let key = match sh.campaigns.get(&cid) {
                Some(camp) if camp.states[cell] == CellState::Queued => {
                    camp.plan.cells()[cell].key.clone()
                }
                _ => continue,
            };
            let n = sh.workers.len();
            let home = fnv64(key.as_bytes()) as usize % n;
            let mut target: Option<usize> = None;
            for off in 0..n {
                let w = (home + off) % n;
                let Some(slot) = sh.workers[w].as_ref() else {
                    continue;
                };
                if slot.dead || slot.inflight.len() >= INFLIGHT_CAP {
                    continue;
                }
                if target.is_none_or(|t| {
                    slot.inflight.len()
                        < sh.workers[t].as_ref().expect("live target").inflight.len()
                }) {
                    target = Some(w);
                }
            }
            let Some(w) = target else {
                // Every worker is saturated or down; put the cell back and
                // let the next completion or respawn drain it.
                sh.queue.push_front((cid, cell));
                break;
            };
            let load_msg = {
                let slot = sh.workers[w].as_ref().expect("live target");
                let camp = &sh.campaigns[&cid];
                (!slot.loaded.contains(&cid)).then(|| {
                    serde_json::to_string(&ToWorker::Load {
                        id: cid.clone(),
                        spec: Box::new(camp.plan.spec().clone()),
                        base_dir: self
                            .cfg
                            .base_dir
                            .as_ref()
                            .map(|p| p.to_string_lossy().into_owned()),
                    })
                    .expect("requests serialize")
                })
            };
            let run_msg = serde_json::to_string(&ToWorker::Run {
                id: cid.clone(),
                cell,
            })
            .expect("requests serialize");
            let slot = sh.workers[w].as_mut().expect("live target");
            let generation = slot.generation;
            let mut write = || -> io::Result<()> {
                if let Some(m) = &load_msg {
                    writeln!(slot.stdin, "{m}")?;
                }
                writeln!(slot.stdin, "{run_msg}")?;
                slot.stdin.flush()
            };
            match write() {
                Ok(()) => {
                    slot.loaded.insert(cid.clone());
                    slot.inflight.push((cid.clone(), cell));
                    slot.last_activity = Instant::now();
                    let camp = sh.campaigns.get_mut(&cid).expect("campaign exists");
                    camp.states[cell] = CellState::Running { worker: w };
                }
                Err(_) => {
                    // Broken pipe: the worker is gone. Requeue this cell
                    // (it was never dispatched) and fail the slot.
                    sh.queue.push_front((cid, cell));
                    self.fail_worker(sh, w, generation);
                }
            }
        }
    }

    /// Supervisor loop: kill wedged workers, respawn dead ones, keep the
    /// queue draining. Exits on [`Daemon::shutdown`].
    fn supervise(self: Arc<Daemon>) {
        while !self.stop.load(Ordering::SeqCst) {
            {
                let mut sh = self.shared.lock().expect("daemon state");
                for w in 0..sh.workers.len() {
                    let wedged = sh.workers[w].as_ref().is_some_and(|s| {
                        !s.dead
                            && !s.inflight.is_empty()
                            && s.last_activity.elapsed() > self.cfg.cell_timeout
                    });
                    if wedged {
                        let generation = sh.workers[w].as_ref().expect("checked above").generation;
                        eprintln!(
                            "[campaignd] worker {w}: no progress past cell timeout, respawning"
                        );
                        self.fail_worker(&mut sh, w, generation);
                    }
                    let dead = sh.workers[w].as_mut().is_some_and(|s| {
                        if s.dead {
                            let _ = s.child.wait();
                        }
                        s.dead
                    });
                    if dead && !self.draining.load(Ordering::SeqCst) {
                        let now = Instant::now();
                        if now < sh.next_spawn_at[w] {
                            continue; // backoff window still open
                        }
                        let window = Duration::from_secs(60);
                        while sh
                            .respawn_times
                            .front()
                            .is_some_and(|t| now.duration_since(*t) > window)
                        {
                            sh.respawn_times.pop_front();
                        }
                        if sh.respawn_times.len() >= self.cfg.max_respawns_per_min {
                            if !sh.rate_capped {
                                sh.rate_capped = true;
                                eprintln!(
                                    "[campaignd] respawn rate cap hit ({}/min): worker {w} \
                                     stays down until the window frees",
                                    self.cfg.max_respawns_per_min
                                );
                            }
                            continue;
                        }
                        sh.rate_capped = false;
                        sh.respawn_times.push_back(now);
                        sh.respawns[w] += 1;
                        if let Err(e) = self.spawn_worker(&mut sh, w, false) {
                            // Spawn itself failed (missing binary, fd
                            // exhaustion): climb the same backoff ladder
                            // so the retry loop cannot run hot.
                            sh.consecutive_failures[w] =
                                sh.consecutive_failures[w].saturating_add(1);
                            sh.next_spawn_at[w] = now
                                + respawn_delay(
                                    w,
                                    sh.consecutive_failures[w],
                                    self.cfg.respawn_backoff,
                                );
                            eprintln!("[campaignd] worker {w}: respawn failed: {e}");
                        }
                    }
                }
                self.dispatch(&mut sh);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Progress of campaign `id` as a JSON object, or `None` if unknown.
    pub fn status_json(&self, id: &str) -> Option<String> {
        let sh = self.shared.lock().expect("daemon state");
        let camp = sh.campaigns.get(id)?;
        let (queued, running, cached, done, failed) = camp.counts();
        let v = Value::Map(vec![
            ("id".into(), Value::Str(id.into())),
            ("name".into(), Value::Str(camp.plan.spec().name.clone())),
            ("total".into(), Value::UInt(camp.states.len() as u64)),
            ("queued".into(), Value::UInt(queued as u64)),
            ("running".into(), Value::UInt(running as u64)),
            ("cached".into(), Value::UInt(cached as u64)),
            ("done".into(), Value::UInt(done as u64)),
            ("failed".into(), Value::UInt(failed as u64)),
            ("complete".into(), Value::Bool(camp.complete())),
            // Fleet health alongside progress: how often workers had to
            // be respawned (lifetime, across all slots), and whether the
            // daemon is refusing new work.
            (
                "worker_respawns".into(),
                Value::UInt(sh.respawns.iter().sum()),
            ),
            (
                "draining".into(),
                Value::Bool(self.draining.load(Ordering::SeqCst)),
            ),
        ]);
        Some(serde_json::to_string(&v).expect("status serializes"))
    }

    /// The campaign's CSVs, byte-identical to an in-process
    /// [`lsps_scenario::run_campaign`]: `Ok((raw, aggregate))` once every
    /// cell is accounted for, `Err((http status, message))` otherwise.
    pub fn csvs(&self, id: &str) -> Result<(String, String), (u16, String)> {
        let sh = self.shared.lock().expect("daemon state");
        let Some(camp) = sh.campaigns.get(id) else {
            return Err((404, format!("unknown campaign `{id}`\n")));
        };
        if !camp.complete() {
            let (queued, running, ..) = camp.counts();
            return Err((
                409,
                format!("campaign still running ({queued} queued, {running} running)\n"),
            ));
        }
        if let Some(err) = &camp.error {
            return Err((500, format!("campaign failed: {err}\n")));
        }
        let cells: Vec<Cell> = camp
            .results
            .iter()
            .map(|r| r.clone().expect("complete without failures"))
            .collect();
        Ok((to_csv(&cells), aggregate_csv(&cells)))
    }

    /// Serve the HTTP API on `listener` until [`Daemon::shutdown`]. One
    /// thread per connection; the listener polls so shutdown is prompt.
    pub fn serve(self: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = Arc::clone(self);
                    std::thread::spawn(move || daemon.handle_connection(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let req = match read_request(&mut stream) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    &format!("{e}\n"),
                );
                return;
            }
        };
        let _ = self.route(&mut stream, &req);
    }

    fn route(&self, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => respond(stream, 200, "OK", "text/plain", "ok\n"),
            ("POST", "/campaigns") if self.draining.load(Ordering::SeqCst) => respond(
                stream,
                503,
                "Service Unavailable",
                "text/plain",
                "draining: not accepting new campaigns\n",
            ),
            ("POST", "/campaigns") => match self.submit(&req.body) {
                Ok(id) => {
                    let status = self.status_json(&id).expect("just submitted");
                    respond(stream, 202, "Accepted", "application/json", &status)
                }
                Err(e) => respond(stream, 400, "Bad Request", "text/plain", &format!("{e}\n")),
            },
            ("GET", path) => {
                let Some(rest) = path.strip_prefix("/campaigns/") else {
                    return respond(stream, 404, "Not Found", "text/plain", "not found\n");
                };
                let csv = if let Some(id) = rest.strip_suffix("/aggregate") {
                    Some((id, true))
                } else {
                    rest.strip_suffix("/raw").map(|id| (id, false))
                };
                if let Some((id, aggregate)) = csv {
                    match self.csvs(id) {
                        Ok((raw, agg)) => {
                            let body = if aggregate { &agg } else { &raw };
                            respond(stream, 200, "OK", "text/csv", body)
                        }
                        Err((status, msg)) => {
                            let reason = match status {
                                404 => "Not Found",
                                409 => "Conflict",
                                _ => "Internal Server Error",
                            };
                            respond(stream, status, reason, "text/plain", &msg)
                        }
                    }
                } else {
                    match self.status_json(rest) {
                        Some(json) => respond(stream, 200, "OK", "application/json", &json),
                        None => respond(
                            stream,
                            404,
                            "Not Found",
                            "text/plain",
                            &format!("unknown campaign `{rest}`\n"),
                        ),
                    }
                }
            }
            _ => respond(stream, 404, "Not Found", "text/plain", "not found\n"),
        }
    }

    /// Enter drain mode without blocking: refuse new `POST /campaigns`
    /// with 503, stop dispatching queued cells, let in-flight cells run.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the daemon is draining (or already stopped).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: [`Self::begin_drain`], wait up to `grace` for
    /// every in-flight cell to finish (each completion is persisted to
    /// the cell cache as it lands), then [`Self::shutdown`]. Queued cells
    /// are not started — the journal replay of the next boot picks them
    /// up, finding everything the grace period covered already cached.
    /// Returns `true` if the fleet went idle inside the grace period.
    pub fn drain(&self, grace: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + grace;
        let drained = loop {
            let idle = {
                let sh = self.shared.lock().expect("daemon state");
                sh.workers
                    .iter()
                    .flatten()
                    .all(|s| s.dead || s.inflight.is_empty())
            };
            if idle {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        self.shutdown();
        drained
    }

    /// Stop the supervisor and the accept loop, kill the worker fleet.
    /// The journal and cache survive — a new [`Daemon::start`] on the same
    /// directories resumes every campaign from cache.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut sh = self.shared.lock().expect("daemon state");
        sh.stopping = true;
        for slot in sh.workers.iter_mut().flatten() {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if !self.stop.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

/// Resolve a sibling binary of the current executable (`lsps-campaignd` →
/// `lsps-worker` in the same target directory), falling back to `name` on
/// `PATH`.
pub fn sibling_binary(name: &str) -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            let candidate = exe.parent()?.join(name);
            candidate.exists().then_some(candidate)
        })
        .unwrap_or_else(|| PathBuf::from(name))
}

/// Shared CLI default: the worker binary expected next to whichever
/// binary is running. Callers that can degrade gracefully (benches)
/// should check `is_file()` on the result before booting a daemon.
pub fn default_worker_cmd() -> PathBuf {
    sibling_binary(if cfg!(windows) {
        "lsps-worker.exe"
    } else {
        "lsps-worker"
    })
}

/// Spawn-side helper for tests and benches: a config pointed at temp
/// directories under `root`, with `worker_cmd` explicit.
pub fn config_under(root: &Path, worker_cmd: impl Into<PathBuf>) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(worker_cmd);
    cfg.cache_dir = root.join("cache");
    cfg.journal_dir = root.join("journal");
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawn_delay_backs_off_exponentially_and_saturates() {
        let base = Duration::from_millis(100);
        // Jitter adds at most 25%, so consecutive rungs never overlap.
        for failures in 1..=6u32 {
            let d = respawn_delay(0, failures, base);
            let rung = base * (1 << (failures - 1));
            assert!(d >= rung, "failures={failures}: {d:?} < {rung:?}");
            assert!(d < rung + rung / 4 + Duration::from_nanos(1));
        }
        // Past the cap the rung stops growing.
        let capped = base * 64;
        for failures in [7u32, 10, 100, u32::MAX] {
            let d = respawn_delay(0, failures, base);
            assert!(d >= capped && d <= capped + capped / 4);
        }
    }

    #[test]
    fn respawn_delay_is_deterministic_and_staggers_slots() {
        let base = Duration::from_millis(100);
        assert_eq!(respawn_delay(3, 2, base), respawn_delay(3, 2, base));
        // Slots that die together come back at distinct instants.
        let delays: std::collections::HashSet<Duration> =
            (0..8).map(|w| respawn_delay(w, 1, base)).collect();
        assert!(delays.len() > 1, "jitter must separate slots: {delays:?}");
    }

    #[test]
    fn respawn_delay_survives_degenerate_bases() {
        assert_eq!(respawn_delay(0, 1, Duration::ZERO), Duration::ZERO);
        let huge = respawn_delay(0, u32::MAX, Duration::from_secs(u64::MAX / 2));
        assert!(huge >= Duration::from_secs(u64::MAX / 2));
    }
}
