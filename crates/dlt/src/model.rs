//! Worker and plan types shared by every DLT policy.

use serde::{Deserialize, Serialize};

use lsps_platform::Cluster;

/// One computation resource behind a link, as DLT sees it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Compute speed, in load-units per second.
    pub speed: f64,
    /// Link bandwidth, in load-units per second (bytes/s divided by the
    /// bytes-per-unit density of the application).
    pub bandwidth: f64,
    /// Per-message latency of the link, in seconds.
    pub latency: f64,
}

impl Worker {
    /// A worker with the given speed/bandwidth (units/s) and latency (s).
    pub fn new(speed: f64, bandwidth: f64, latency: f64) -> Worker {
        assert!(speed > 0.0 && bandwidth > 0.0 && latency >= 0.0);
        Worker {
            speed,
            bandwidth,
            latency,
        }
    }

    /// Time to receive `units` of load.
    pub fn recv_time(&self, units: f64) -> f64 {
        assert!(units >= 0.0);
        if units == 0.0 {
            0.0
        } else {
            self.latency + units / self.bandwidth
        }
    }

    /// Time to compute `units` of load.
    pub fn compute_time(&self, units: f64) -> f64 {
        assert!(units >= 0.0);
        units / self.speed
    }
}

/// Build DLT workers from a cluster: one worker per CPU, link shared
/// parameters from the cluster interconnect. `bytes_per_unit` converts the
/// application's data density (bytes moved per unit of work) into
/// unit-bandwidth.
pub fn workers_from_cluster(cluster: &Cluster, bytes_per_unit: f64) -> Vec<Worker> {
    assert!(bytes_per_unit > 0.0);
    let bw_units = cluster.interconnect.bandwidth_bps / bytes_per_unit;
    let lat = cluster.interconnect.latency_s;
    (0..cluster.total_procs())
        .map(|i| Worker::new(cluster.proc_speed(i), bw_units, lat))
        .collect()
}

/// The outcome of a distribution policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DltPlan {
    /// Load given to each worker, in units (same order as the input
    /// workers; zero means the worker is not used).
    pub alphas: Vec<f64>,
    /// Completion time of the whole load, in seconds.
    pub makespan: f64,
}

impl DltPlan {
    /// Total load distributed.
    pub fn total(&self) -> f64 {
        self.alphas.iter().sum()
    }

    /// Number of workers actually used.
    pub fn used_workers(&self) -> usize {
        self.alphas.iter().filter(|&&a| a > 0.0).count()
    }

    /// Effective throughput, units per second.
    pub fn throughput(&self) -> f64 {
        assert!(self.makespan > 0.0);
        self.total() / self.makespan
    }

    /// Internal consistency: non-negative chunks summing to `w`.
    pub fn check(&self, w: f64) {
        assert!(self.alphas.iter().all(|&a| a >= -1e-9), "negative chunk");
        let sum = self.total();
        assert!(
            (sum - w).abs() <= 1e-6 * w.max(1.0),
            "chunks sum to {sum}, expected {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_platform::LinkClass;

    #[test]
    fn worker_times() {
        let w = Worker::new(2.0, 10.0, 0.5);
        assert!((w.recv_time(20.0) - 2.5).abs() < 1e-12);
        assert_eq!(w.recv_time(0.0), 0.0, "empty messages cost nothing");
        assert!((w.compute_time(20.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_conversion() {
        let c = Cluster::homogeneous("c", 4, 2, 0.5, LinkClass::new(1e-3, 1e8));
        let ws = workers_from_cluster(&c, 1e6); // 1 MB per unit
        assert_eq!(ws.len(), 8);
        assert!(ws.iter().all(|w| (w.speed - 0.5).abs() < 1e-12));
        assert!(ws.iter().all(|w| (w.bandwidth - 100.0).abs() < 1e-12));
        assert!(ws.iter().all(|w| (w.latency - 1e-3).abs() < 1e-12));
    }

    #[test]
    fn plan_accounting() {
        let plan = DltPlan {
            alphas: vec![3.0, 0.0, 7.0],
            makespan: 5.0,
        };
        assert_eq!(plan.total(), 10.0);
        assert_eq!(plan.used_workers(), 2);
        assert!((plan.throughput() - 2.0).abs() < 1e-12);
        plan.check(10.0);
    }

    #[test]
    #[should_panic]
    fn check_catches_bad_sum() {
        DltPlan {
            alphas: vec![1.0],
            makespan: 1.0,
        }
        .check(2.0);
    }
}
