//! Micro-benchmarks of the simulation kernel: event queue throughput and
//! end-to-end engine dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsps_des::{Ctx, Dur, EventQueue, Model, SimRng, Simulation, Time};

fn queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from(1);
            let times: Vec<Time> = (0..n)
                .map(|_| Time::from_ticks(rng.int_range(0, 1_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut count = 0usize;
                while q.pop().is_some() {
                    count += 1;
                }
                assert_eq!(count, n);
            });
        });
    }
    group.finish();
}

fn engine_dispatch(c: &mut Criterion) {
    struct Chain {
        left: u64,
    }
    impl Model for Chain {
        type Event = ();
        fn handle(&mut self, _: Time, _: (), ctx: &mut Ctx<'_, ()>) {
            if self.left > 0 {
                self.left -= 1;
                ctx.schedule_in(Dur::from_ticks(1), ());
            }
        }
    }
    c.bench_function("engine_100k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Chain { left: 100_000 });
            sim.schedule_at(Time::ZERO, ());
            sim.run_to_completion(200_000)
        });
    });
}

criterion_group!(benches, queue_throughput, engine_dispatch);
criterion_main!(benches);
