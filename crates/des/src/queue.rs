//! Stable, cancellable event queue.
//!
//! A min-heap keyed by `(Time, sequence)`: events scheduled for the same
//! instant pop in the order they were scheduled, which keeps every simulation
//! in the workspace deterministic. Cancellation is lazy — a cancelled key is
//! remembered and its entry silently dropped when it reaches the top.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Time;

/// Opaque handle to a scheduled event, used for cancellation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of timestamped events with FIFO tie-breaking and O(1)
/// lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Keys scheduled and neither popped nor cancelled yet.
    live: HashSet<u64>,
    /// Keys cancelled but whose heap entry has not surfaced yet.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`; returns a key usable with
    /// [`cancel`](Self::cancel).
    pub fn schedule(&mut self, at: Time, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventKey(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the key was
    /// still live (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live.remove(&key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest live event as `(time, key, event)`.
    pub fn pop(&mut self) -> Option<(Time, EventKey, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // was cancelled; drop silently
            }
            self.live.remove(&entry.seq);
            return Some((entry.at, EventKey(entry.seq), entry.event));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Purge cancelled heads so the answer is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
            } else {
                return Some(head.at);
            }
        }
        None
    }

    /// Number of live events (cancelled-but-unpopped entries excluded).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True iff no live event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let _a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        let c = q.schedule(t(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(!q.cancel(c), "cancelling an already-popped key is a no-op");
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        q.schedule(t(1), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        let (at, _, e) = q.pop().unwrap();
        assert_eq!((at, e), (t(10), 1));
        q.schedule(t(5), 2); // scheduling "in the past" is the caller's business
        q.schedule(t(7), 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 3);
    }
}
