//! Integer simulated time.
//!
//! [`Time`] is an absolute instant, [`Dur`] a length of simulated time, both
//! counted in *ticks*. The workspace convention is 1 tick = 1 millisecond of
//! simulated wall-clock, i.e. [`TICKS_PER_SEC`] = 1000. All scheduling
//! algorithms operate on ticks and are therefore exact; only the divisible
//! load closed forms (crate `lsps-dlt`) use `f64` internally and round at the
//! boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of ticks in one simulated second.
pub const TICKS_PER_SEC: u64 = 1_000;

/// An absolute instant of simulated time, in ticks since the simulation
/// epoch (t = 0).
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Time(u64);

/// A length of simulated time, in ticks.
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Time(secs_to_ticks(secs))
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration since the epoch.
    #[inline]
    pub const fn since_epoch(self) -> Dur {
        Dur(self.0)
    }

    /// `self - other` if non-negative, else `None`.
    #[inline]
    pub fn checked_sub(self, other: Time) -> Option<Dur> {
        self.0.checked_sub(other.0).map(Dur)
    }

    /// `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// `self + d`, saturating at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// `self + d` if it fits on the tick axis, else `None`. Use this where
    /// a window end past [`Time::MAX`] means *infeasible* — saturating
    /// would silently shorten the window instead.
    #[inline]
    pub fn checked_add(self, d: Dur) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable duration; used as "infinite".
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Dur(ticks)
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Dur(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Dur(secs_to_ticks(secs))
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True iff zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding up to whole ticks
    /// (conservative for schedule-length guarantees). Panics if `f` is
    /// negative or NaN.
    #[inline]
    pub fn scale_ceil(self, f: f64) -> Dur {
        assert!(f >= 0.0, "Dur::scale_ceil with negative factor {f}");
        Dur((self.0 as f64 * f).ceil() as u64)
    }

    /// `self * k`, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Ceiling division by an integer (used e.g. to split a duration over
    /// `k` processors without under-estimating).
    #[inline]
    pub fn div_ceil(self, k: u64) -> Dur {
        assert!(k > 0, "Dur::div_ceil by zero");
        Dur(self.0.div_ceil(k))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

#[inline]
fn secs_to_ticks(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        0
    } else {
        (secs * TICKS_PER_SEC as f64).round() as u64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Panics on underflow (time never runs backwards in a valid schedule).
    #[inline]
    fn sub(self, other: Time) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, other: Dur) -> Dur {
        Dur(self.0 + other.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, other: Dur) {
        self.0 += other.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Dur) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, other: Dur) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Div<Dur> for Dur {
    type Output = f64;
    /// Ratio of two durations (e.g. measured / lower bound).
    #[inline]
    fn div(self, other: Dur) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, other: Dur) -> Dur {
        Dur(self.0 % other.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_secs(3).ticks(), 3 * TICKS_PER_SEC);
        assert_eq!(Dur::from_secs(2).ticks(), 2 * TICKS_PER_SEC);
        assert_eq!(Time::from_secs_f64(1.5).ticks(), 1500);
        assert_eq!(Dur::from_secs_f64(0.0005).ticks(), 1); // rounds to nearest
        assert_eq!(Time::from_secs_f64(-4.0), Time::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ticks(10);
        let d = Dur::from_ticks(4);
        assert_eq!(t + d, Time::from_ticks(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, Time::from_ticks(6));
        assert_eq!(d * 3, Dur::from_ticks(12));
        assert_eq!(d / 2, Dur::from_ticks(2));
        assert_eq!(Dur::from_ticks(10).div_ceil(3), Dur::from_ticks(4));
        assert_eq!(Dur::from_ticks(9).div_ceil(3), Dur::from_ticks(3));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::ZERO.saturating_sub(Time::from_ticks(5)), Dur::ZERO);
        assert_eq!(Time::MAX.saturating_add(Dur::from_ticks(1)), Time::MAX);
        assert_eq!(
            Dur::from_ticks(3).saturating_sub(Dur::from_ticks(7)),
            Dur::ZERO
        );
        assert_eq!(Dur::MAX.saturating_mul(2), Dur::MAX);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(
            Time::from_ticks(3).checked_add(Dur::from_ticks(4)),
            Some(Time::from_ticks(7))
        );
        // The exact boundary still fits…
        assert_eq!(
            Time::from_ticks(u64::MAX - 5).checked_add(Dur::from_ticks(5)),
            Some(Time::MAX)
        );
        // …one tick past it does not.
        assert_eq!(Time::MAX.checked_add(Dur::from_ticks(1)), None);
        assert_eq!(
            Time::from_ticks(u64::MAX - 5).checked_add(Dur::from_ticks(6)),
            None
        );
    }

    #[test]
    fn scale_ceil_rounds_up() {
        assert_eq!(Dur::from_ticks(10).scale_ceil(1.5), Dur::from_ticks(15));
        assert_eq!(Dur::from_ticks(10).scale_ceil(0.101), Dur::from_ticks(2));
        assert_eq!(Dur::from_ticks(0).scale_ceil(7.0), Dur::ZERO);
    }

    #[test]
    #[should_panic]
    fn scale_ceil_rejects_negative() {
        let _ = Dur::from_ticks(1).scale_ceil(-0.1);
    }

    #[test]
    fn ratio_and_sum() {
        let r = Dur::from_ticks(300) / Dur::from_ticks(200);
        assert!((r - 1.5).abs() < 1e-12);
        let s: Dur = [1u64, 2, 3].iter().map(|&t| Dur::from_ticks(t)).sum();
        assert_eq!(s, Dur::from_ticks(6));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ticks(5);
        let b = Time::from_ticks(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Dur::from_ticks(5).max(Dur::from_ticks(2)),
            Dur::from_ticks(5)
        );
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", Time::from_ticks(1500)), "1.500s");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
        assert_eq!(format!("{:?}", Time::from_ticks(7)), "T7");
    }
}
