//! Open-arrival job streams: unbounded workloads for steady-state
//! (heavy-traffic) simulation.
//!
//! The generators in [`crate::gen`] expand a finite job list up front; the
//! queueing-theory setting of the related work (PAPERS.md: "The Merit of
//! Simple Policies", "Asymptotically Optimal Scheduling of Multiple
//! Parallelizable Job Classes") instead drives the scheduler with an *open*
//! Poisson stream at a target utilization ρ and reads off response-time
//! distributions. [`OpenStreamSpec`] describes such a stream declaratively —
//! an arrival process plus a mixture of rigid job classes — and
//! [`OpenStream`] samples it lazily, one job at a time, so a million-job
//! horizon never materializes a million-job `Vec`.
//!
//! The arrival rate is *derived*, not given: a job of width `w` running for
//! `s` seconds occupies area `w·s` processor-seconds, so on `m` processors
//! a stream with mean area `E[w]·E[s]` (widths and sizes are drawn
//! independently) offers load
//!
//! ```text
//! ρ = λ · Σ_c p_c · E[width_c] · E[service_c] / m
//! ```
//!
//! and the spec's target ρ fixes `λ`. Widths are sampled continuously,
//! rounded and clamped into `[1, m]`, so the realized load tracks the
//! target to the extent the width distribution stays inside the machine.
//!
//! Determinism: all draws flow from the [`SimRng`] handed to
//! [`OpenStreamSpec::stream`] in a fixed order (arrival, class, width,
//! service), so a given (spec, m, seed) triple always produces the
//! identical stream prefix — the property the campaign cache keys rely on.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, SimRng, Time};

use crate::gen::{ArrivalSpec, DistSpec};
use crate::job::{Job, UserId};

/// Arrival process shape of an open stream. The *rate* is derived from the
/// spec's target utilization, so the variants only carry shape parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum OpenArrival {
    /// Homogeneous Poisson.
    Poisson,
    /// Non-homogeneous Poisson with a sinusoidal daily cycle, sampled by
    /// Ogata thinning against the peak intensity `λ0·(1 + amplitude)`
    /// (same mechanism as [`ArrivalSpec::DailyCycle`]); the *mean* rate
    /// over a day still matches the derived λ0.
    Diurnal {
        /// Day/night modulation depth in `[0, 1)`.
        amplitude: f64,
    },
}

/// One rigid, parallelizable job class of the mixture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobClass {
    /// Class label (aggregate CSV rows are keyed by it).
    pub name: String,
    /// Relative mixing weight (normalized over the class list).
    pub mix: f64,
    /// Processors per job; samples are rounded and clamped into `[1, m]`.
    pub width: DistSpec,
    /// Per-processor service time (runtime), seconds.
    pub service_s: DistSpec,
}

/// Declarative open stream: target offered load, arrival shape, and the
/// job-class mixture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenStreamSpec {
    /// Target offered load `ρ = λ·E[area]/m`, in `(0, 1)` — steady state
    /// only exists below saturation.
    pub rho: f64,
    /// Arrival process shape.
    pub arrival: OpenArrival,
    /// Job classes (non-empty; one entry is the single-class stream).
    pub classes: Vec<JobClass>,
}

impl OpenStreamSpec {
    /// Check the spec is realizable; returns the problems found (empty =
    /// valid). Collect-all like the campaign validator so one pass reports
    /// every mistake.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if !(self.rho > 0.0 && self.rho < 1.0) {
            errs.push(format!(
                "rho {} outside (0, 1): steady state needs sub-saturation load",
                self.rho
            ));
        }
        if let OpenArrival::Diurnal { amplitude } = self.arrival {
            if !(0.0..1.0).contains(&amplitude) {
                errs.push(format!("diurnal amplitude {amplitude} outside [0, 1)"));
            }
        }
        if self.classes.is_empty() {
            errs.push("open stream needs at least one job class".into());
        }
        for c in &self.classes {
            if !(c.mix > 0.0 && c.mix.is_finite()) {
                errs.push(format!(
                    "class `{}`: mix {} must be positive",
                    c.name, c.mix
                ));
            }
            if !(c.width.mean() >= 1.0 && c.width.mean().is_finite()) {
                errs.push(format!(
                    "class `{}`: mean width {} below one processor",
                    c.name,
                    c.width.mean()
                ));
            }
            if !(c.service_s.mean() > 0.0 && c.service_s.mean().is_finite()) {
                errs.push(format!(
                    "class `{}`: mean service {} not positive",
                    c.name,
                    c.service_s.mean()
                ));
            }
        }
        errs
    }

    /// Mean job area `Σ p_c·E[width_c]·E[service_c]`, processor-seconds.
    pub fn mean_area(&self) -> f64 {
        let total: f64 = self.classes.iter().map(|c| c.mix).sum();
        self.classes
            .iter()
            .map(|c| c.mix / total * c.width.mean() * c.service_s.mean())
            .sum()
    }

    /// Mean inter-arrival time `1/λ = E[area] / (ρ·m)` on `m` processors.
    pub fn mean_interarrival_s(&self, m: usize) -> f64 {
        self.mean_area() / (self.rho * m as f64)
    }

    /// Start sampling the stream on an `m`-processor machine. Panics on an
    /// invalid spec (campaigns validate first and report nicely).
    pub fn stream(&self, m: usize, rng: SimRng) -> OpenStream {
        let errs = self.validate();
        assert!(errs.is_empty(), "invalid open stream: {errs:?}");
        let mean_interarrival_s = self.mean_interarrival_s(m);
        let arrival = match self.arrival {
            OpenArrival::Poisson => ArrivalSpec::Poisson {
                mean_interarrival_s,
            },
            OpenArrival::Diurnal { amplitude } => ArrivalSpec::DailyCycle {
                mean_interarrival_s,
                amplitude,
            },
        };
        let total_mix: f64 = self.classes.iter().map(|c| c.mix).sum();
        let cum_mix = self
            .classes
            .iter()
            .scan(0.0, |acc, c| {
                *acc += c.mix / total_mix;
                Some(*acc)
            })
            .collect();
        OpenStream {
            spec: self.clone(),
            arrival,
            cum_mix,
            m,
            rng,
            clock_s: 0.0,
            next_id: 0,
        }
    }
}

/// The lazy sampler behind an [`OpenStreamSpec`]: an unbounded,
/// deterministic job sequence with nondecreasing releases. O(1) memory —
/// this is what lets the des-online executor replay millions of jobs
/// without ever holding them all.
pub struct OpenStream {
    spec: OpenStreamSpec,
    arrival: ArrivalSpec,
    /// Normalized cumulative mixing weights, aligned with `spec.classes`.
    cum_mix: Vec<f64>,
    m: usize,
    rng: SimRng,
    clock_s: f64,
    next_id: u64,
}

impl OpenStream {
    /// The spec this stream samples.
    pub fn spec(&self) -> &OpenStreamSpec {
        &self.spec
    }

    /// Jobs drawn so far (also the next job id).
    pub fn drawn(&self) -> u64 {
        self.next_id
    }

    /// Draw the next job: `(class index, job)`. Releases are
    /// nondecreasing; the class index is also recorded as the job's
    /// [`UserId`] so per-class metrics survive the trip through the
    /// scheduler. Draw order per job is fixed — arrival, class, width,
    /// service — which makes streams bit-reproducible per seed.
    pub fn next_job(&mut self) -> (usize, Job) {
        self.clock_s = self.arrival.next_after(self.clock_s, &mut self.rng);
        let u = self.rng.f64();
        let class = self
            .cum_mix
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.spec.classes.len() - 1);
        let spec = &self.spec.classes[class];
        let width =
            (spec.width.sample(&mut self.rng).round() as i64).clamp(1, self.m as i64) as usize;
        let service =
            Dur::from_secs_f64(spec.service_s.sample(&mut self.rng)).max(Dur::from_ticks(1));
        let id = self.next_id;
        self.next_id += 1;
        let job = Job::rigid(id, width, service)
            .released_at(Time::from_secs_f64(self.clock_s))
            .with_user(UserId(class as u32));
        (class, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_spec(rho: f64, arrival: OpenArrival) -> OpenStreamSpec {
        OpenStreamSpec {
            rho,
            arrival,
            classes: vec![
                JobClass {
                    name: "narrow".into(),
                    mix: 3.0,
                    width: DistSpec::Fixed(1.0),
                    service_s: DistSpec::Exp(120.0),
                },
                JobClass {
                    name: "wide".into(),
                    mix: 1.0,
                    width: DistSpec::Uniform(4.0, 16.0),
                    service_s: DistSpec::LogUniform(60.0, 3600.0),
                },
            ],
        }
    }

    #[test]
    fn streams_are_bit_reproducible_per_seed() {
        let spec = two_class_spec(0.9, OpenArrival::Diurnal { amplitude: 0.5 });
        let mut a = spec.stream(64, SimRng::seed_from(42));
        let mut b = spec.stream(64, SimRng::seed_from(42));
        let mut c = spec.stream(64, SimRng::seed_from(43));
        let ja: Vec<_> = (0..1000).map(|_| a.next_job()).collect();
        let jb: Vec<_> = (0..1000).map(|_| b.next_job()).collect();
        let jc: Vec<_> = (0..1000).map(|_| c.next_job()).collect();
        assert_eq!(ja, jb, "same seed, same stream");
        assert_ne!(ja, jc, "different seed, different stream");
        for w in ja.windows(2) {
            assert!(w[0].1.release <= w[1].1.release, "releases nondecreasing");
        }
    }

    #[test]
    fn empirical_rate_matches_the_derived_lambda() {
        // The whole point of the ρ-to-λ derivation: over a long horizon the
        // empirical inter-arrival mean must match `E[area]/(ρ·m)` within
        // normal-approximation CI bounds (exponential gaps: σ = mean, so
        // the sample mean has σ/√n spread; ±5σ/√n keeps flake ~0).
        for arrival in [
            OpenArrival::Poisson,
            OpenArrival::Diurnal { amplitude: 0.8 },
        ] {
            let spec = two_class_spec(0.9, arrival);
            let m = 64;
            let expected = spec.mean_interarrival_s(m);
            let n = 100_000u64;
            let mut s = spec.stream(m, SimRng::seed_from(7));
            let mut last = 0.0;
            for _ in 0..n {
                last = s.next_job().1.release.as_secs_f64();
            }
            let empirical = last / n as f64;
            let tol = 5.0 * expected / (n as f64).sqrt();
            assert!(
                (empirical - expected).abs() < tol,
                "{arrival:?}: empirical {empirical} vs derived {expected} (tol {tol})"
            );
        }
    }

    #[test]
    fn diurnal_thinning_never_exceeds_the_peak_rate() {
        // Thinning accepts with probability λ(t)/λ_max, so no window can
        // sustain more than the peak rate. Bucket a long run into hours and
        // check every bucket against λ_max with a generous Poisson slack
        // (4σ on the busiest bucket's expected count).
        let amplitude = 0.9;
        let spec = two_class_spec(0.8, OpenArrival::Diurnal { amplitude });
        let m = 64;
        let lambda0 = 1.0 / spec.mean_interarrival_s(m);
        let lambda_max = lambda0 * (1.0 + amplitude);
        let mut s = spec.stream(m, SimRng::seed_from(13));
        let bucket_s = 3600.0;
        let mut buckets: Vec<u32> = Vec::new();
        for _ in 0..200_000 {
            let t = s.next_job().1.release.as_secs_f64();
            let b = (t / bucket_s) as usize;
            if b >= buckets.len() {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        let cap = lambda_max * bucket_s;
        let slack = 4.0 * cap.sqrt();
        let worst = *buckets.iter().max().unwrap() as f64;
        assert!(
            worst <= cap + slack,
            "busiest hour saw {worst} arrivals vs thinning cap {cap} (+{slack})"
        );
    }

    #[test]
    fn offered_load_tracks_the_target_rho() {
        let spec = two_class_spec(0.9, OpenArrival::Poisson);
        let m = 256;
        let mut s = spec.stream(m, SimRng::seed_from(5));
        let mut area = 0.0;
        let mut horizon = 0.0;
        for _ in 0..200_000 {
            let (_, job) = s.next_job();
            horizon = job.release.as_secs_f64();
            // Rigid seq_time = width · service: exactly the job's area.
            area += job.seq_time().as_secs_f64();
        }
        let rho = area / (m as f64 * horizon);
        assert!(
            (rho - 0.9).abs() < 0.03,
            "empirical offered load {rho} vs target 0.9"
        );
    }

    #[test]
    fn class_mixture_respects_the_mix_weights() {
        let spec = two_class_spec(0.7, OpenArrival::Poisson);
        let mut s = spec.stream(64, SimRng::seed_from(3));
        let n = 40_000;
        let mut counts = [0usize; 2];
        for _ in 0..n {
            let (class, job) = s.next_job();
            counts[class] += 1;
            assert_eq!(
                job.user,
                UserId(class as u32),
                "class tag rides the user id"
            );
        }
        // mix 3:1 → 75% / 25%, binomial σ ≈ 0.22%·n.
        let frac = counts[0] as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "narrow fraction {frac}");
    }

    #[test]
    fn validation_collects_every_problem() {
        let mut spec = two_class_spec(1.2, OpenArrival::Diurnal { amplitude: 1.5 });
        spec.classes[0].mix = 0.0;
        spec.classes[1].service_s = DistSpec::Fixed(0.0);
        let errs = spec.validate();
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(two_class_spec(0.9, OpenArrival::Poisson)
            .validate()
            .is_empty());
    }
}
