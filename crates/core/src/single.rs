//! Single-machine scheduling rules (§4.3 of the paper).
//!
//! "The single machine problem has a polynomial optimal solution which
//! consists of sorting the tasks with increasing sizes and schedule them in
//! this order. In the weighted case […] the scheduling is made according to
//! the ratio time/weight."
//!
//! These rules are the substrate of the shelf-based algorithms: SMART orders
//! its shelves exactly by the weighted Smith rule, treating each shelf as a
//! single-machine task.

use lsps_des::Time;
use lsps_platform::ProcSet;
use lsps_workload::Job;

use crate::schedule::Schedule;

/// Sequencing rules on one machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SingleRule {
    /// First-come first-served (by release, then id).
    Fcfs,
    /// Shortest processing time — optimal for `Σ Ci` without releases.
    Spt,
    /// Weighted shortest processing time (Smith's rule: increasing
    /// `p/w`) — optimal for `Σ ωi Ci` without releases.
    Wspt,
}

/// Schedule sequential jobs (`min_procs() == 1` required) on one machine.
/// Release dates are honoured by inserting idle time; `Spt`/`Wspt`
/// optimality statements hold for the all-released-at-zero case.
pub fn single_machine(jobs: &[Job], rule: SingleRule) -> Schedule {
    assert!(
        jobs.iter().all(|j| j.min_procs() == 1),
        "single_machine: all jobs must fit one processor"
    );
    let mut order: Vec<&Job> = jobs.iter().collect();
    match rule {
        SingleRule::Fcfs => order.sort_by_key(|j| (j.release, j.id)),
        SingleRule::Spt => order.sort_by_key(|j| (j.time_on(1), j.id)),
        SingleRule::Wspt => order.sort_by(|a, b| {
            let ra = a.time_on(1).ticks() as f64 / a.weight.max(f64::MIN_POSITIVE);
            let rb = b.time_on(1).ticks() as f64 / b.weight.max(f64::MIN_POSITIVE);
            ra.partial_cmp(&rb)
                .expect("finite ratio")
                .then(a.id.cmp(&b.id))
        }),
    }
    let mut sched = Schedule::new(1);
    let mut now = Time::ZERO;
    let procs = ProcSet::full(1);
    for j in order {
        let start = now.max(j.release);
        sched.place(j, start, procs.clone());
        now = start + j.time_on(1);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_metrics::Criteria;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn csum(s: &Schedule, jobs: &[Job]) -> f64 {
        Criteria::evaluate(&s.completed(jobs)).sum_completion
    }

    fn wsum(s: &Schedule, jobs: &[Job]) -> f64 {
        Criteria::evaluate(&s.completed(jobs)).weighted_sum_completion
    }

    #[test]
    fn spt_beats_fcfs_on_csum() {
        let jobs = vec![
            Job::sequential(1, d(10_000)),
            Job::sequential(2, d(1_000)),
            Job::sequential(3, d(100)),
        ];
        let spt = single_machine(&jobs, SingleRule::Spt);
        let fcfs = single_machine(&jobs, SingleRule::Fcfs);
        assert!(spt.validate(&jobs).is_ok() && fcfs.validate(&jobs).is_ok());
        assert!(csum(&spt, &jobs) < csum(&fcfs, &jobs));
        // SPT value by hand: 0.1 + 1.1 + 11.1 s.
        assert!((csum(&spt, &jobs) - 12.3).abs() < 1e-9);
    }

    #[test]
    fn wspt_is_optimal_among_permutations() {
        // 4 jobs: brute-force all 24 orders, compare with WSPT.
        let jobs = vec![
            Job::sequential(1, d(3000)).with_weight(1.0),
            Job::sequential(2, d(1000)).with_weight(4.0),
            Job::sequential(3, d(2000)).with_weight(2.0),
            Job::sequential(4, d(500)).with_weight(0.5),
        ];
        let wspt_val = wsum(&single_machine(&jobs, SingleRule::Wspt), &jobs);
        // Enumerate permutations.
        let idx = [0usize, 1, 2, 3];
        let mut best = f64::INFINITY;
        let mut perm = idx;
        // Heap's algorithm, fixed size 4.
        fn heaps(k: usize, arr: &mut [usize; 4], out: &mut Vec<[usize; 4]>) {
            if k == 1 {
                out.push(*arr);
                return;
            }
            for i in 0..k {
                heaps(k - 1, arr, out);
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        let mut perms = Vec::new();
        heaps(4, &mut perm, &mut perms);
        for p in perms {
            let mut t = 0u64;
            let mut v = 0.0;
            for &i in &p {
                t += jobs[i].time_on(1).ticks();
                v += jobs[i].weight * t as f64 / 1000.0;
            }
            best = best.min(v);
        }
        assert!(
            (wspt_val - best).abs() < 1e-9,
            "WSPT {wspt_val} vs brute force {best}"
        );
    }

    #[test]
    fn releases_insert_idle_time() {
        let jobs = vec![
            Job::sequential(1, d(10)).released_at(Time::from_ticks(100)),
            Job::sequential(2, d(10)),
        ];
        let s = single_machine(&jobs, SingleRule::Fcfs);
        assert!(s.validate(&jobs).is_ok());
        let a: Vec<_> = s.assignments().to_vec();
        assert_eq!(a[0].job, lsps_workload::JobId(2));
        assert_eq!(a[1].start, Time::from_ticks(100));
    }

    #[test]
    #[should_panic]
    fn parallel_jobs_rejected() {
        single_machine(&[Job::rigid(1, 2, d(5))], SingleRule::Fcfs);
    }
}
