//! Micro-benchmarks of the availability timeline — the backfilling and
//! hole-filling workhorse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsps_des::{Dur, SimRng, Time};
use lsps_platform::{BookingKind, ProcSet, Timeline};

fn loaded_timeline(m: usize, bookings: usize, rng: &mut SimRng) -> Timeline {
    let mut tl = Timeline::with_procs(m);
    let mut placed = 0;
    while placed < bookings {
        let q = rng.int_range(1, (m as u64 / 4).max(1)) as usize;
        let len = Dur::from_ticks(rng.int_range(10, 500));
        let (start, procs) = tl
            .earliest_slot(Time::from_ticks(rng.int_range(0, 50_000)), len, q)
            .expect("fits");
        tl.book(start, start + len, procs, BookingKind::Job);
        placed += 1;
    }
    tl
}

fn timeline_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // 8000 live bookings was firmly quadratic territory for the full-scan
    // timeline; the availability profile keeps every query sublinear.
    for &bookings in &[100usize, 500, 2000, 8000] {
        let mut rng = SimRng::seed_from(3);
        let tl = loaded_timeline(128, bookings, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("earliest_slot", bookings),
            &bookings,
            |b, _| {
                b.iter(|| {
                    tl.earliest_slot(Time::from_ticks(10_000), Dur::from_ticks(100), 16)
                        .expect("fits")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("free_profile_10k", bookings),
            &bookings,
            |b, _| {
                b.iter(|| tl.free_profile(Time::ZERO, Time::from_ticks(10_000)));
            },
        );
        group.bench_with_input(BenchmarkId::new("free_at", bookings), &bookings, |b, _| {
            b.iter(|| tl.free_at(Time::from_ticks(25_000)));
        });
        group.bench_with_input(
            BenchmarkId::new("free_during_1k", bookings),
            &bookings,
            |b, _| {
                b.iter(|| tl.free_during(Time::from_ticks(20_000), Time::from_ticks(21_000)));
            },
        );
    }
    // Booking churn: book + remove cycles.
    group.bench_function("book_remove_cycle", |b| {
        let mut tl = Timeline::with_procs(64);
        b.iter(|| {
            let id = tl.book(
                Time::from_ticks(100),
                Time::from_ticks(200),
                ProcSet::range(0, 8),
                BookingKind::Job,
            );
            tl.remove(id).expect("present");
        });
    });
    group.finish();
}

criterion_group!(benches, timeline_ops);
criterion_main!(benches);
