//! The decentralized vision (§5.2): "all jobs — grid and local ones — are
//! submitted to local scheduling systems. These systems then have the
//! possibility to exchange work in order to balance the load."
//!
//! The protocol here is the threshold flavour the paper sketches: every
//! exchange period, the most backlogged cluster ships queued jobs to the
//! least backlogged one whenever the imbalance exceeds a factor, paying a
//! WAN migration delay per job. Fairness ("making \[resources\] available to
//! others does not make them loose too much") is measured per community by
//! the caller through the returned records.

use std::collections::VecDeque;

use lsps_des::{Ctx, Dur, Model, Simulation, Time};
use lsps_metrics::{CompletedJob, Criteria};
use lsps_platform::Platform;
use lsps_workload::{Job, JobKind};

/// How clusters decide what to exchange (§5.2 lists both directions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// Move work from the most to the least backlogged cluster whenever
    /// the imbalance exceeds the configured factor.
    Threshold,
    /// "An economical approach which would have each cluster try to
    /// optimize its own jobs": each queued job of the most backlogged
    /// cluster is auctioned — it migrates only when some cluster's bid
    /// (expected completion there, including the migration delay) beats
    /// the home bid.
    Auction,
}

/// Tuning of the exchange protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExchangeParams {
    /// How often clusters compare backlogs.
    pub period: Dur,
    /// Threshold mode: migrate only when
    /// `max_backlog > factor · min_backlog` (factor > 1).
    pub imbalance_factor: f64,
    /// Delay added to each migrated job (WAN latency + data staging).
    pub migration_cost: Dur,
    /// Master switch — `false` gives the isolated-clusters baseline.
    pub enabled: bool,
    /// What drives migrations.
    pub strategy: ExchangeStrategy,
}

impl Default for ExchangeParams {
    fn default() -> Self {
        ExchangeParams {
            period: Dur::from_secs(60),
            imbalance_factor: 1.5,
            migration_cost: Dur::from_secs(10),
            enabled: true,
            strategy: ExchangeStrategy::Threshold,
        }
    }
}

/// Events of the exchange simulation.
#[derive(Debug)]
pub enum ExchangeEvent {
    /// A job arrives at a cluster's queue (fresh or migrated).
    Submit {
        /// Target cluster.
        cluster: usize,
        /// The (sequential) job.
        job: Job,
        /// True when this is a migration re-submission (already counted).
        migrated: bool,
    },
    /// A running job completes on the cluster.
    JobEnd {
        /// Cluster index.
        cluster: usize,
        /// The job and its start time (for the completion record).
        job: Box<(Job, Time)>,
    },
    /// Periodic backlog comparison.
    Balance,
}

struct ClusterQueue {
    procs: usize,
    speed: f64,
    running: usize,
    queue: VecDeque<Job>,
    migrated_in: u64,
}

/// The decentralized load-exchange model.
pub struct ExchangeSim {
    clusters: Vec<ClusterQueue>,
    params: ExchangeParams,
    completed: Vec<CompletedJob>,
    migrations: u64,
    outstanding: usize,
    balance_scheduled: bool,
}

impl ExchangeSim {
    /// Build from a platform: one FCFS queue per cluster; jobs must be
    /// sequential (the §5.2 discussion is about sequential community jobs).
    pub fn new(platform: &Platform, params: ExchangeParams) -> ExchangeSim {
        assert!(params.imbalance_factor > 1.0);
        ExchangeSim {
            clusters: platform
                .clusters
                .iter()
                .map(|c| ClusterQueue {
                    procs: c.total_procs(),
                    speed: c.mean_speed(),
                    running: 0,
                    queue: VecDeque::new(),
                    migrated_in: 0,
                })
                .collect(),
            params,
            completed: Vec::new(),
            migrations: 0,
            outstanding: 0,
            balance_scheduled: false,
        }
    }

    fn scaled_len(&self, c: usize, job: &Job) -> Dur {
        job.time_on(1)
            .scale_ceil(1.0 / self.clusters[c].speed)
            .max(Dur::from_ticks(1))
    }

    fn try_start(&mut self, now: Time, c: usize, ctx: &mut Ctx<'_, ExchangeEvent>) {
        while self.clusters[c].running < self.clusters[c].procs {
            let Some(job) = self.clusters[c].queue.pop_front() else {
                break;
            };
            let len = self.scaled_len(c, &job);
            self.clusters[c].running += 1;
            ctx.schedule_at(
                now + len,
                ExchangeEvent::JobEnd {
                    cluster: c,
                    job: Box::new((job, now)),
                },
            );
        }
    }

    /// Backlog in reference-CPU seconds per unit of capacity.
    fn backlog(&self, c: usize) -> f64 {
        let q: f64 = self.clusters[c]
            .queue
            .iter()
            .map(|j| j.time_on(1).as_secs_f64())
            .sum();
        q / (self.clusters[c].procs as f64 * self.clusters[c].speed)
    }

    fn balance(&mut self, now: Time, ctx: &mut Ctx<'_, ExchangeEvent>) {
        match self.params.strategy {
            ExchangeStrategy::Threshold => self.balance_threshold(now, ctx),
            ExchangeStrategy::Auction => self.balance_auction(now, ctx),
        }
    }

    /// Expected completion of one more `work_s`-second job on cluster `c`:
    /// time to drain the current backlog plus the job's own scaled run
    /// time on one of the cluster's processors.
    fn bid(&self, c: usize, work_s: f64) -> f64 {
        self.backlog(c) + work_s / self.clusters[c].speed
    }

    /// Auction mode: the most backlogged donor offers its queue tail; a job
    /// moves only when a foreign bid (including the migration delay) beats
    /// staying home.
    fn balance_auction(&mut self, now: Time, ctx: &mut Ctx<'_, ExchangeEvent>) {
        let n = self.clusters.len();
        if n < 2 {
            return;
        }
        let donor = (0..n)
            .max_by(|&a, &b| {
                self.backlog(a)
                    .partial_cmp(&self.backlog(b))
                    .expect("finite backlogs")
            })
            .expect("n >= 2");
        let mig_s = self.params.migration_cost.as_secs_f64();
        // Offer at most the current queue (avoid churn loops).
        let mut offers = self.clusters[donor].queue.len();
        while offers > 1 {
            offers -= 1;
            let Some(job) = self.clusters[donor].queue.back() else {
                break;
            };
            let work_s = job.time_on(1).as_secs_f64();
            let home = self.bid(donor, work_s);
            let best = (0..n)
                .filter(|&c| c != donor)
                .map(|c| (self.bid(c, work_s) + mig_s, c))
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bids"))
                .expect("n >= 2");
            if best.0 >= home {
                break; // the cheapest foreign bid loses: keep the job
            }
            let job = self.clusters[donor]
                .queue
                .pop_back()
                .expect("checked non-empty");
            self.migrations += 1;
            self.clusters[best.1].migrated_in += 1;
            ctx.schedule_at(
                now + self.params.migration_cost,
                ExchangeEvent::Submit {
                    cluster: best.1,
                    job,
                    migrated: true,
                },
            );
        }
    }

    /// Threshold mode (see [`ExchangeStrategy::Threshold`]).
    fn balance_threshold(&mut self, now: Time, ctx: &mut Ctx<'_, ExchangeEvent>) {
        loop {
            let (mut hi, mut lo) = (0usize, 0usize);
            for c in 1..self.clusters.len() {
                if self.backlog(c) > self.backlog(hi) {
                    hi = c;
                }
                if self.backlog(c) < self.backlog(lo) {
                    lo = c;
                }
            }
            let (bhi, blo) = (self.backlog(hi), self.backlog(lo));
            // Move one job per iteration while imbalanced; stop when the
            // donor queue is nearly empty or balance is restored.
            if hi == lo
                || self.clusters[hi].queue.len() <= 1
                || bhi <= self.params.imbalance_factor * blo.max(1e-9)
            {
                break;
            }
            // Migrate from the tail (newest waiting work travels).
            let job = self.clusters[hi]
                .queue
                .pop_back()
                .expect("donor queue checked non-empty");
            self.migrations += 1;
            self.clusters[lo].migrated_in += 1;
            ctx.schedule_at(
                now + self.params.migration_cost,
                ExchangeEvent::Submit {
                    cluster: lo,
                    job,
                    migrated: true,
                },
            );
        }
    }
}

impl Model for ExchangeSim {
    type Event = ExchangeEvent;

    fn handle(&mut self, now: Time, event: ExchangeEvent, ctx: &mut Ctx<'_, ExchangeEvent>) {
        match event {
            ExchangeEvent::Submit {
                cluster,
                job,
                migrated,
            } => {
                assert!(
                    matches!(job.kind, JobKind::Rigid { procs: 1, .. }),
                    "exchange model handles sequential jobs"
                );
                if !migrated {
                    self.outstanding += 1;
                }
                self.clusters[cluster].queue.push_back(job);
                self.try_start(now, cluster, ctx);
                if self.params.enabled && !self.balance_scheduled {
                    self.balance_scheduled = true;
                    ctx.schedule_in(self.params.period, ExchangeEvent::Balance);
                }
            }
            ExchangeEvent::JobEnd { cluster, job } => {
                let (job, start) = *job;
                self.clusters[cluster].running -= 1;
                self.outstanding -= 1;
                self.completed
                    .push(CompletedJob::from_job(&job, start.max(job.release), now, 1));
                self.try_start(now, cluster, ctx);
            }
            ExchangeEvent::Balance => {
                self.balance(now, ctx);
                let any_queued = self.clusters.iter().any(|c| !c.queue.is_empty());
                if self.params.enabled && (any_queued || self.outstanding > 0) {
                    ctx.schedule_in(self.params.period, ExchangeEvent::Balance);
                } else {
                    self.balance_scheduled = false;
                }
            }
        }
    }
}

/// Outcome of an exchange simulation.
#[derive(Clone, Debug)]
pub struct ExchangeReport {
    /// §3 criteria over all jobs.
    pub overall: Criteria,
    /// Jobs migrated between clusters.
    pub migrations: u64,
    /// The raw records (community fairness is computed from these).
    pub records: Vec<CompletedJob>,
}

/// Run the decentralized simulation over `(cluster, job)` submissions.
pub fn run_exchange(
    platform: &Platform,
    submissions: Vec<(usize, Job)>,
    params: ExchangeParams,
) -> ExchangeReport {
    let mut sim = Simulation::new(ExchangeSim::new(platform, params));
    for (cluster, job) in submissions {
        let at = job.release;
        sim.schedule_at(
            at,
            ExchangeEvent::Submit {
                cluster,
                job,
                migrated: false,
            },
        );
    }
    sim.run_to_completion(20_000_000);
    let model = sim.into_model();
    assert_eq!(model.outstanding, 0, "every job must complete");
    ExchangeReport {
        overall: Criteria::evaluate(&model.completed),
        migrations: model.migrations,
        records: model.completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_platform::{Cluster, LinkClass, NetworkModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }
    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    fn platform() -> Platform {
        Platform::new(
            "x",
            vec![
                Cluster::homogeneous("a", 2, 1, 1.0, LinkClass::gige()),
                Cluster::homogeneous("b", 2, 1, 1.0, LinkClass::gige()),
            ],
            NetworkModel::light_grid_default(),
        )
    }

    fn lopsided_submissions(n: usize) -> Vec<(usize, Job)> {
        // Everything lands on cluster 0; cluster 1 idles unless exchange
        // kicks in.
        (0..n)
            .map(|i| (0usize, Job::sequential(i as u64, d(100))))
            .collect()
    }

    #[test]
    fn no_exchange_baseline_serializes_on_one_cluster() {
        let report = run_exchange(
            &platform(),
            lopsided_submissions(8),
            ExchangeParams {
                enabled: false,
                ..Default::default()
            },
        );
        assert_eq!(report.migrations, 0);
        // 8×100 on 2 procs = 400 ticks.
        assert!((report.overall.cmax - 0.4).abs() < 1e-9);
    }

    #[test]
    fn exchange_offloads_and_speeds_up() {
        let params = ExchangeParams {
            period: d(30),
            imbalance_factor: 1.2,
            migration_cost: d(5),
            enabled: true,
            strategy: ExchangeStrategy::Threshold,
        };
        let balanced = run_exchange(&platform(), lopsided_submissions(8), params);
        assert!(balanced.migrations > 0, "work must move");
        let baseline = run_exchange(
            &platform(),
            lopsided_submissions(8),
            ExchangeParams {
                enabled: false,
                ..params
            },
        );
        assert!(
            balanced.overall.cmax < baseline.overall.cmax,
            "exchange {} vs isolated {}",
            balanced.overall.cmax,
            baseline.overall.cmax
        );
    }

    #[test]
    fn migration_cost_delays_moved_jobs() {
        // With an enormous migration cost, exchange must not fire the
        // moment the imbalance is tiny — and if it does fire, migrated
        // jobs arrive late. Here we just verify completion despite costs.
        let params = ExchangeParams {
            period: d(50),
            imbalance_factor: 1.1,
            migration_cost: d(10_000),
            enabled: true,
            strategy: ExchangeStrategy::Threshold,
        };
        let report = run_exchange(&platform(), lopsided_submissions(6), params);
        assert_eq!(report.overall.n, 6, "all jobs complete eventually");
    }

    #[test]
    fn balanced_load_triggers_no_migration() {
        let subs: Vec<(usize, Job)> = (0..8)
            .map(|i| ((i % 2) as usize, Job::sequential(i as u64, d(100))))
            .collect();
        let report = run_exchange(&platform(), subs, ExchangeParams::default());
        assert_eq!(report.migrations, 0);
    }

    #[test]
    fn auction_offloads_when_profitable() {
        let params = ExchangeParams {
            period: d(30),
            migration_cost: d(5),
            strategy: ExchangeStrategy::Auction,
            ..Default::default()
        };
        let balanced = run_exchange(&platform(), lopsided_submissions(12), params);
        assert!(balanced.migrations > 0, "profitable moves must happen");
        let baseline = run_exchange(
            &platform(),
            lopsided_submissions(12),
            ExchangeParams {
                enabled: false,
                ..params
            },
        );
        assert!(balanced.overall.cmax < baseline.overall.cmax);
    }

    #[test]
    fn auction_refuses_unprofitable_moves() {
        // Migration dwarfs any queueing benefit: the economic rule keeps
        // everything home, while the threshold rule would still ship jobs.
        let huge_cost = ExchangeParams {
            period: d(30),
            imbalance_factor: 1.1,
            migration_cost: Dur::from_ticks(10_000_000),
            enabled: true,
            strategy: ExchangeStrategy::Auction,
        };
        let auction = run_exchange(&platform(), lopsided_submissions(8), huge_cost);
        assert_eq!(auction.migrations, 0, "no bid can beat home");
        let threshold = run_exchange(
            &platform(),
            lopsided_submissions(8),
            ExchangeParams {
                strategy: ExchangeStrategy::Threshold,
                ..huge_cost
            },
        );
        assert!(threshold.migrations > 0, "threshold ignores the cost");
        // …and pays dearly for it.
        assert!(threshold.overall.cmax > auction.overall.cmax);
    }

    #[test]
    fn staggered_releases_handled() {
        let subs: Vec<(usize, Job)> = (0..10)
            .map(|i| {
                (
                    0usize,
                    Job::sequential(i as u64, d(50)).released_at(t(i as u64 * 20)),
                )
            })
            .collect();
        let report = run_exchange(&platform(), subs, ExchangeParams::default());
        assert_eq!(report.overall.n, 10);
    }
}
