//! The checked-in volatile campaign end to end: the `failures` axis runs
//! cold and warm (100% cache hits, byte-identical CSVs), the aggregate
//! grows the failure columns, and the zero-failure entries reproduce the
//! reliable campaign's rows byte for byte.

use std::fs;
use std::path::{Path, PathBuf};

use lsps_scenario::campaign::{aggregate_header, aggregate_header_for};
use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec, FailureEntry};

fn example_spec() -> (CampaignSpec, PathBuf) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/volatile_campaign.json");
    let text = fs::read_to_string(&path).expect("checked-in example spec");
    let spec: CampaignSpec = serde_json::from_str(&text).expect("example spec parses");
    (spec, path.parent().expect("spec dir").to_path_buf())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-volatile-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(base_dir: &Path, cache: Option<PathBuf>) -> CampaignOptions {
    CampaignOptions {
        cache_dir: cache,
        threads: 0,
        base_dir: Some(base_dir.to_path_buf()),
    }
}

#[test]
fn checked_in_volatile_spec_parses_validates_and_counts() {
    let (spec, _) = example_spec();
    spec.validate().expect("valid");
    assert!(spec.is_volatile());
    // 2 policies × 1 executor × (1 platform × 5 failure entries) × 1
    // workload × 2 replications.
    assert_eq!(spec.cell_count(), 20);
    // Round-trip through canonical JSON keeps the axis.
    let back: CampaignSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(back, spec);
}

#[test]
fn volatile_warm_rerun_is_fully_cached_and_byte_identical() {
    let (spec, base) = example_spec();
    let cache = temp_dir("warm");
    let cold = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("cold run");
    assert_eq!(cold.total, spec.cell_count());
    assert_eq!(cold.cache_hits, 0, "cold cache serves nothing");
    let warm = run_campaign(&spec, &opts(&base, Some(cache.clone()))).expect("warm run");
    assert_eq!(warm.cache_hits, warm.total, "every cell cached");
    assert_eq!(cold.raw_csv, warm.raw_csv, "raw CSV byte-identical");
    assert_eq!(
        cold.aggregate_csv, warm.aggregate_csv,
        "aggregate CSV byte-identical"
    );
    // The cache is an accelerator, not an input: an uncached run agrees.
    let uncached = run_campaign(&spec, &opts(&base, None)).expect("uncached run");
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(cold.raw_csv, uncached.raw_csv);
    assert_eq!(cold.aggregate_csv, uncached.aggregate_csv);
    fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn aggregate_grows_failure_columns_and_reliable_rows_match_baseline() {
    let (spec, base) = example_spec();
    let volatile = run_campaign(&spec, &opts(&base, None)).expect("volatile run");

    // The aggregate header carries the failure block; the per-entry rows
    // land under suffixed platform names.
    let mut lines = volatile.aggregate_csv.lines();
    let header = lines.next().expect("header");
    assert_eq!(header, aggregate_header_for(true));
    for col in ["fail_goodput", "fail_wasted_ticks", "fail_resubmits"] {
        assert!(header.split(',').any(|c| c == col), "missing column {col}");
    }
    let goodput_col = header
        .split(',')
        .position(|c| c == "fail_goodput")
        .expect("col");
    let resub_col = header
        .split(',')
        .position(|c| c == "fail_resubmits")
        .expect("col");
    let plat_col = header
        .split(',')
        .position(|c| c == "platform")
        .expect("col");
    let rows: Vec<&str> = lines.collect();
    // 2 policies × (1 reliable + 4 volatile) platform rows.
    assert_eq!(rows.len(), 10, "one row per (policy, platform): {rows:?}");
    let mut total_resubmits = 0.0;
    for row in &rows {
        let cols: Vec<&str> = row.split(',').collect();
        if cols[plat_col].contains('+') {
            let goodput: f64 = cols[goodput_col].parse().expect("non-empty goodput");
            assert!(goodput > 0.0 && goodput <= 1.0, "goodput in (0,1]: {row}");
            total_resubmits += cols[resub_col].parse::<f64>().expect("non-empty resubmits");
        } else {
            assert!(cols[goodput_col].is_empty(), "reliable rows leave it blank");
        }
    }
    assert!(
        total_resubmits > 0.0,
        "the regimes actually kill jobs somewhere in the grid"
    );

    // Dropping the axis reproduces today's campaign byte for byte: same
    // raw rows (the reliable subset) and the pre-axis aggregate header.
    let mut baseline_spec = spec.clone();
    baseline_spec.failures = vec![FailureEntry::reliable()];
    let baseline = run_campaign(&baseline_spec, &opts(&base, None)).expect("baseline run");
    assert!(baseline.aggregate_csv.starts_with(&aggregate_header()));
    let reliable_rows: Vec<&str> = volatile
        .raw_csv
        .lines()
        .filter(|l| !l.split(',').nth(4).is_some_and(|p| p.contains('+')))
        .collect();
    assert_eq!(
        reliable_rows,
        baseline.raw_csv.lines().collect::<Vec<_>>(),
        "zero-failure cells reproduce the reliable campaign's raw rows"
    );
    // Aggregate: the reliable group's row is the baseline row plus the
    // empty failure block.
    let empty_block = ",".repeat(4);
    for b in baseline.aggregate_csv.lines().skip(1) {
        let expected = format!("{b}{empty_block}");
        assert!(
            volatile.aggregate_csv.lines().any(|l| l == expected),
            "baseline aggregate row survives under the axis: {b}"
        );
    }
}
