//! The unified `Policy` abstraction — "which policy" as a first-class value.
//!
//! The paper's whole programme is *comparing* scheduling policies across
//! application models. Before this module, every comparison was wired by
//! hand: each algorithm is a differently-shaped free function and every
//! experiment re-implemented its own policy × workload loop. [`Policy`]
//! gives all of them one shape:
//!
//! * [`Policy::schedule`] — jobs in, validated-rectangle [`Schedule`] out,
//!   under a shared [`PolicyCtx`] carrying reservations, the release-date
//!   mode and the clairvoyance knob;
//! * [`Policy::prepare`] — the *as-scheduled* job view. Policies that only
//!   handle rigid jobs rigidify moldable ones (via [`crate::allot`]),
//!   off-line-only policies strip release dates (documented as an
//!   *advantage* they are granted — they still lose where the paper says
//!   they should). Consumers validate and evaluate against this view,
//!   exactly as the hand-written experiment loops did;
//! * [`registry`] — every paper policy as a boxed, named instance, so
//!   experiment binaries, the grid layer and tests iterate one list
//!   instead of hard-coding dispatch.
//!
//! The trait is deliberately object-safe: the experiment runner
//! (`lsps_bench::runner`), the CiGri cluster scheduler
//! (`lsps_grid::cigri`) and the advisor
//! ([`crate::advisor::PolicyChoice::instantiate`]) all traffic in
//! `Box<dyn Policy>`.
//!
//! # Incremental replanning
//!
//! [`Policy::schedule_pending`] is a *full replan*: every call rebuilds
//! the availability state from the committed set before scheduling the
//! batch. Event-driven callers that decide at every arrival/completion
//! can instead ask for a persistent [`Policy::incremental_planner`],
//! which keeps one timeline alive across decisions and does per-event
//! work proportional to the **dirty window** — the new batch and the
//! bookings that actually changed — instead of to everything live. The
//! dirty-window invariant and the bit-identity argument live in
//! [`crate::replan`]; the full-replan path stays as the differential
//! oracle.

use std::borrow::Cow;

use lsps_des::{Dur, Time};
use lsps_platform::{BookingKind, ProcSet, Timeline};
use lsps_workload::{Job, JobKind};

use crate::allot::{choose_allotment, AllotRule};
use crate::backfill::{backfill_on_timeline, book_reservations, BackfillPolicy, Reservation};
use crate::batch::{batch_online, batch_online_avoiding};
use crate::bicriteria::{bicriteria_schedule, BiCriteriaParams};
use crate::list::{list_schedule_allotted, JobOrder};
use crate::malleable::{deq_schedule, MalleableSchedule};
use crate::mrt::{mrt_schedule, MrtParams};
use crate::nonclairvoyant::exponential_trial_schedule;
use crate::outcome::{Outcome, OutcomeKind, OutcomeRun};
use crate::replan::{BackfillPlanner, IncrementalPlanner};
use crate::schedule::{Assignment, Schedule};
use crate::shelf::{shelf_schedule, ShelfAlgo};
use crate::smart::smart_schedule;
use crate::uniform::uniform_list_schedule;

/// How release dates reach the policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReleaseMode {
    /// Jobs arrive over time; policies that understand release dates
    /// honour them, off-line-only policies strip them (their documented
    /// head start).
    #[default]
    Online,
    /// Zero every release date first: the pure off-line comparison.
    Offline,
}

/// What the policy knows about runtimes when a job arrives (§4.2): the
/// clairvoyant/non-clairvoyant split of on-line algorithms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Knowledge {
    /// Execution times are known on arrival (every classical policy here).
    #[default]
    Clairvoyant,
    /// Execution times are *unknown*: trial-based policies seed their
    /// kill-and-resubmit doubling from `initial_estimate`. Clairvoyant
    /// policies ignore the knob — the non-clairvoyant bridge is the
    /// [`NonclairvoyantExpTrial`] policy.
    NonClairvoyant {
        /// First runtime estimate handed to every job.
        initial_estimate: Dur,
    },
}

/// Default first estimate of the exponential-trial doubling (60 s) when
/// neither the policy nor the ctx picks one.
pub const DEFAULT_INITIAL_ESTIMATE: Dur = Dur::from_secs(60);

/// A booking with an exact processor set that the policy must not touch —
/// the incremental/grid form of an advance reservation, where re-fitting a
/// processor *count* first-fit (as [`Reservation`] placement does) would
/// not match the machine's real occupancy.
#[derive(Clone, Debug, PartialEq)]
pub struct PinnedBooking {
    /// Window start.
    pub start: Time,
    /// Window end (exclusive).
    pub end: Time,
    /// Exact processors blocked during the window.
    pub procs: ProcSet,
}

/// Everything a policy may need beyond the jobs and the machine size.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyCtx {
    /// Release-date handling.
    pub release_mode: ReleaseMode,
    /// Advance reservations (§5.1), placed first-fit by processor count.
    pub reservations: Vec<Reservation>,
    /// Exact-processor bookings (grid integration).
    pub pinned: Vec<PinnedBooking>,
    /// Clairvoyance knob: runtime estimates are `true × factor` (≥ 1;
    /// 1.0 = exact). Only estimate-aware policies (backfilling) use it.
    pub estimate_factor: f64,
    /// Allotment rule used when a rigid-only policy must rigidify
    /// moldable jobs.
    pub allot_rule: AllotRule,
    /// Machine model (§2.2): per-processor relative speeds. Empty (the
    /// default) means identical unit-speed processors; non-empty speeds
    /// are only consumed by uniform-capable policies
    /// ([`Policy::outcome_kind`] == [`OutcomeKind::Uniform`]) — every
    /// other policy rejects them instead of silently mis-reading the
    /// machine.
    pub speeds: Vec<f64>,
    /// Knowledge model (§4.2): clairvoyant, or non-clairvoyant with an
    /// initial runtime estimate.
    pub knowledge: Knowledge,
}

impl Default for PolicyCtx {
    fn default() -> Self {
        PolicyCtx {
            release_mode: ReleaseMode::Online,
            reservations: Vec::new(),
            pinned: Vec::new(),
            estimate_factor: 1.0,
            allot_rule: AllotRule::Balanced,
            speeds: Vec::new(),
            knowledge: Knowledge::Clairvoyant,
        }
    }
}

impl PolicyCtx {
    /// Off-line context (all release dates stripped).
    pub fn offline() -> PolicyCtx {
        PolicyCtx {
            release_mode: ReleaseMode::Offline,
            ..PolicyCtx::default()
        }
    }

    fn has_reservations(&self) -> bool {
        !self.reservations.is_empty() || !self.pinned.is_empty()
    }

    /// True iff the machine model is identical processors — no speeds, or
    /// all speeds exactly 1 (the degenerate uniform machine).
    pub fn is_identical_machine(&self) -> bool {
        self.speeds.is_empty() || self.speeds.iter().all(|&s| s == 1.0)
    }
}

/// A schedule together with the as-scheduled job view it is valid against.
#[derive(Clone, Debug)]
pub struct PolicyRun {
    /// The produced schedule.
    pub schedule: Schedule,
    /// The jobs as the policy actually scheduled them (rigidified,
    /// possibly release-stripped).
    pub jobs: Vec<Job>,
}

impl PolicyRun {
    /// Validate the schedule against the as-scheduled jobs.
    pub fn validate(&self) -> Result<(), crate::schedule::ValidationError> {
        self.schedule.validate(&self.jobs)
    }
}

/// A scheduling policy: one shape for every algorithm in the paper.
///
/// `Send + Sync` is a supertrait so `Box<dyn Policy>` values can be shared
/// across the experiment runner's worker threads; every policy is a plain
/// configuration struct, so the bound costs nothing.
pub trait Policy: Send + Sync {
    /// Stable, unique identifier (used in CSV output and lookups).
    fn name(&self) -> &str;

    /// True iff the policy honours release dates natively (otherwise
    /// [`prepare`](Policy::prepare) strips them).
    fn supports_releases(&self) -> bool {
        false
    }

    /// True iff the policy can work around advance reservations.
    fn supports_reservations(&self) -> bool {
        false
    }

    /// True iff the policy honours [`PinnedBooking`]s *exactly* — placing
    /// work around arbitrary, possibly time-overlapping bookings without
    /// touching their processors. This is what incremental callers (the
    /// grid's cluster-level scheduling) need; batch policies that can only
    /// treat reservations as disjoint full-machine blackouts must return
    /// false.
    fn supports_pinned(&self) -> bool {
        false
    }

    /// The job view the policy actually schedules; idempotent. Borrows the
    /// input when no transformation is needed, so trait dispatch adds no
    /// copy on the hot path.
    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]>;

    /// Schedule `jobs` on `m` identical processors. The result validates
    /// against [`prepare`](Policy::prepare)`(jobs, m, ctx)`.
    ///
    /// # Panics
    /// If `ctx` requests a capability the policy lacks (reservations on a
    /// reservation-blind policy), or jobs are outside the PT domain
    /// (divisible loads — route those to `lsps-dlt`).
    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule;

    /// One-call pipeline: schedule plus the matching job view. `prepare`
    /// is idempotent, so scheduling the prepared view skips the second
    /// (potentially cloning) normalisation pass.
    fn run(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> PolicyRun {
        let prepared = self.prepare(jobs, m, ctx).into_owned();
        PolicyRun {
            schedule: self.schedule(&prepared, m, ctx),
            jobs: prepared,
        }
    }

    /// The [`OutcomeKind`] this policy's [`run_outcome`](Policy::run_outcome)
    /// produces — its capability tag. Executors that can only replay or
    /// drive rectangles (`des-replay`, `des-online`) check this before
    /// running the policy, and campaign validation rejects incompatible
    /// (policy, executor) pairs up front.
    fn outcome_kind(&self) -> OutcomeKind {
        OutcomeKind::Rect
    }

    /// The generalized pipeline every executor cell goes through: schedule
    /// plus the matching job view, as an [`Outcome`]. The default wraps
    /// [`run`](Policy::run) in [`Outcome::Rect`], so the fourteen
    /// rectangle policies are untouched; trial- and uniform-outcome
    /// policies override it to carry their richer result.
    ///
    /// # Panics
    /// If `ctx` carries non-identical machine speeds and the policy is not
    /// uniform-capable — a rectangle policy silently ignoring speeds would
    /// mis-report every span.
    fn run_outcome(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> OutcomeRun {
        assert!(
            ctx.is_identical_machine(),
            "{}: heterogeneous machine speeds need a uniform-capable policy \
             (outcome kind `uniform`), e.g. `uniform-mct`",
            self.name()
        );
        let run = self.run(jobs, m, ctx);
        OutcomeRun {
            outcome: Outcome::Rect(run.schedule),
            jobs: run.jobs,
        }
    }

    /// Incremental decision hook: schedule the `pending` jobs (all already
    /// arrived, i.e. every release is `<= now`) around the `committed`
    /// bookings of work that has already been started or promised, no
    /// earlier than `now`. This is the entry point event-driven callers use
    /// — the online executor at every arrival/completion instant, the grid's
    /// cluster-level scheduler per local submission.
    ///
    /// The default implementation re-runs the batch path:
    ///
    /// * a policy that honours [`PinnedBooking`]s schedules the pending jobs
    ///   (releases bumped to `now`) around the still-relevant commitments —
    ///   true hole-filling, exactly what `lsps_grid::cigri` always did;
    /// * any other policy schedules the pending batch on an empty machine
    ///   (releases zeroed — everything pending is available, and keeping
    ///   absolute releases would replay the arrival gaps inside the batch)
    ///   and shifts the result past the last committed completion — the
    ///   paper's online batch transformation (§4.2), priced honestly.
    ///
    /// Either way, with no commitments at `now == 0` the result is
    /// bit-identical to [`schedule`](Policy::schedule) — the property the
    /// online-equivalence tests pin down.
    ///
    /// Under [`ReleaseMode::Online`] every returned start is `>= now`; the
    /// [`ReleaseMode::Offline`] ctx (which strips releases) only makes
    /// sense for a single decision instant at time zero.
    fn schedule_pending(
        &self,
        pending: &[Job],
        m: usize,
        now: Time,
        committed: &[PinnedBooking],
        ctx: &PolicyCtx,
    ) -> Schedule {
        if self.supports_pinned() {
            let mut ctx = ctx.clone();
            // Commitments already over by `now` cannot constrain anything.
            ctx.pinned
                .extend(committed.iter().filter(|p| p.end > now).cloned());
            let bumped: Vec<Job> = pending
                .iter()
                .map(|j| {
                    let mut j = j.clone();
                    j.release = j.release.max(now);
                    j
                })
                .collect();
            self.schedule(&bumped, m, &ctx)
        } else {
            let horizon = committed.iter().map(|p| p.end).fold(now, Time::max);
            let batch: Vec<Job> = pending
                .iter()
                .map(|j| {
                    let mut j = j.clone();
                    j.release = Time::ZERO;
                    j
                })
                .collect();
            // The batch is scheduled in a zero-based frame and shifted by
            // `horizon` afterwards, so any absolute reservation windows in
            // the ctx must be translated into that frame — otherwise the
            // shift would push work *into* the windows it avoided.
            let shift = horizon.since_epoch();
            let to_frame = |t: Time| Time::from_ticks(t.ticks().saturating_sub(shift.ticks()));
            let mut ctx = ctx.clone();
            ctx.reservations.retain(|r| r.end > horizon);
            for r in &mut ctx.reservations {
                r.start = to_frame(r.start);
                r.end = to_frame(r.end);
            }
            ctx.pinned.retain(|p| p.end > horizon);
            for p in &mut ctx.pinned {
                p.start = to_frame(p.start);
                p.end = to_frame(p.end);
            }
            self.schedule(&batch, m, &ctx).shifted(shift)
        }
    }

    /// Persistent incremental planner for event-driven callers, or `None`
    /// (the default) when the policy only supports the full-replan
    /// [`schedule_pending`](Policy::schedule_pending) path. A returned
    /// planner must produce placements bit-identical to the full replan —
    /// it is an accelerator, never a different policy; see
    /// [`crate::replan`] for the invariant.
    fn incremental_planner(
        &self,
        _m: usize,
        _ctx: &PolicyCtx,
    ) -> Option<Box<dyn IncrementalPlanner>> {
        None
    }
}

/// Shared input normalisation. `allot`: when given, moldable/malleable
/// jobs are replaced by rigid ones at the allotment this function chooses.
/// `strip_releases`: zero release dates. Divisible jobs are always
/// rejected, for the whole list, before anything else.
fn normalize<'a>(
    policy_name: &str,
    jobs: &'a [Job],
    ctx: &PolicyCtx,
    allot: Option<&dyn Fn(&Job) -> usize>,
    strip_releases: bool,
) -> Cow<'a, [Job]> {
    for j in jobs {
        assert!(
            !matches!(j.kind, JobKind::Divisible { .. }),
            "{policy_name}: job {} is a divisible load; PT policies cannot \
             schedule it (use lsps-dlt)",
            j.id
        );
    }
    let strip = strip_releases || ctx.release_mode == ReleaseMode::Offline;
    let needs_work = jobs
        .iter()
        .any(|j| (strip && j.release != Time::ZERO) || (allot.is_some() && j.profile().is_some()));
    if !needs_work {
        return Cow::Borrowed(jobs);
    }
    Cow::Owned(
        jobs.iter()
            .map(|j| {
                let mut job = j.clone();
                if strip {
                    job.release = Time::ZERO;
                }
                if let Some(allot) = allot {
                    if let Some(profile) = job.profile() {
                        let k = allot(&job);
                        job.kind = JobKind::Rigid {
                            procs: k,
                            len: profile.time(k),
                        };
                    }
                }
                job
            })
            .collect(),
    )
}

/// The ctx-rule rigidification shared by the rigid-only policies.
fn normalize_rigid<'a>(
    policy_name: &str,
    jobs: &'a [Job],
    m: usize,
    ctx: &PolicyCtx,
    strip_releases: bool,
) -> Cow<'a, [Job]> {
    let n = jobs.len();
    let allot = move |j: &Job| choose_allotment(j, m, n, ctx.allot_rule);
    normalize(policy_name, jobs, ctx, Some(&allot), strip_releases)
}

fn reject_reservations(policy_name: &str, ctx: &PolicyCtx) {
    assert!(
        !ctx.has_reservations(),
        "{policy_name} cannot honour reservations; use a backfilling or \
         batch policy"
    );
}

/// List scheduling of (rigidified) jobs in a fixed priority order.
#[derive(Clone, Copy, Debug)]
pub struct ListScheduling {
    order: JobOrder,
}

impl ListScheduling {
    /// A list policy with the given priority order.
    pub fn new(order: JobOrder) -> ListScheduling {
        ListScheduling { order }
    }
}

impl Policy for ListScheduling {
    fn name(&self) -> &str {
        match self.order {
            JobOrder::Fcfs => "list-fcfs",
            JobOrder::Lpt => "list-lpt",
            JobOrder::Spt => "list-spt",
            JobOrder::WeightDensity => "list-wspt",
        }
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize_rigid(self.name(), jobs, m, ctx, false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        let items: Vec<(&Job, usize)> = jobs.iter().map(|j| (j, j.min_procs())).collect();
        list_schedule_allotted(&items, m, self.order)
    }
}

/// NFDH/FFDH shelf packing (off-line, rigid).
#[derive(Clone, Copy, Debug)]
pub struct ShelfPacking {
    algo: ShelfAlgo,
}

impl ShelfPacking {
    /// A shelf policy with the given packing rule.
    pub fn new(algo: ShelfAlgo) -> ShelfPacking {
        ShelfPacking { algo }
    }
}

impl Policy for ShelfPacking {
    fn name(&self) -> &str {
        match self.algo {
            ShelfAlgo::Nfdh => "shelf-nfdh",
            ShelfAlgo::Ffdh => "shelf-ffdh",
        }
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize_rigid(self.name(), jobs, m, ctx, true)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        shelf_schedule(&jobs, m, self.algo)
    }
}

/// EASY / conservative backfilling with reservations and estimates (§5.1).
#[derive(Clone, Copy, Debug)]
pub struct Backfilling {
    flavour: BackfillPolicy,
}

impl Backfilling {
    /// EASY (aggressive) backfilling.
    pub fn easy() -> Backfilling {
        Backfilling {
            flavour: BackfillPolicy::Easy,
        }
    }

    /// Conservative backfilling.
    pub fn conservative() -> Backfilling {
        Backfilling {
            flavour: BackfillPolicy::Conservative,
        }
    }
}

impl Policy for Backfilling {
    fn name(&self) -> &str {
        match self.flavour {
            BackfillPolicy::Easy => "backfill-easy",
            BackfillPolicy::Conservative => "backfill-conservative",
        }
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn supports_reservations(&self) -> bool {
        true
    }

    fn supports_pinned(&self) -> bool {
        true
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize_rigid(self.name(), jobs, m, ctx, false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        let jobs = self.prepare(jobs, m, ctx);
        let mut tl = Timeline::with_procs(m);
        for (i, p) in ctx.pinned.iter().enumerate() {
            tl.try_book(p.start, p.end, p.procs.clone(), BookingKind::Reservation)
                .unwrap_or_else(|e| panic!("pinned booking {i} conflicts: {e:?}"));
        }
        book_reservations(&mut tl, &ctx.reservations);
        backfill_on_timeline(&jobs, m, tl, self.flavour, ctx.estimate_factor)
    }

    fn incremental_planner(
        &self,
        m: usize,
        ctx: &PolicyCtx,
    ) -> Option<Box<dyn IncrementalPlanner>> {
        Some(Box::new(BackfillPlanner::new(self.flavour, m, ctx)))
    }
}

/// SMART power-of-two shelves in Smith order (§4.3).
#[derive(Clone, Copy, Debug)]
pub struct SmartShelves {
    weighted: bool,
}

impl SmartShelves {
    /// Ratio-8 unweighted variant.
    pub fn unweighted() -> SmartShelves {
        SmartShelves { weighted: false }
    }

    /// Ratio-8.53 weighted variant.
    pub fn weighted() -> SmartShelves {
        SmartShelves { weighted: true }
    }
}

impl Policy for SmartShelves {
    fn name(&self) -> &str {
        if self.weighted {
            "smart-weighted"
        } else {
            "smart"
        }
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize_rigid(self.name(), jobs, m, ctx, true)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        smart_schedule(&jobs, m, self.weighted)
    }
}

/// MRT two-shelf dual approximation, off-line moldable makespan (§4.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct MrtTwoShelf {
    /// Dual-approximation search accuracy.
    pub params: MrtParams,
}

impl Policy for MrtTwoShelf {
    fn name(&self) -> &str {
        "mrt"
    }

    fn prepare<'a>(&self, jobs: &'a [Job], _m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize(self.name(), jobs, ctx, None, true)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        mrt_schedule(&jobs, m, self.params)
    }
}

/// MRT inside Shmoys doubling batches: the paper's 3 + ε on-line moldable
/// algorithm (§4.2), reservation-aware via blackout-aligned batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchedMrt {
    /// Inner off-line MRT accuracy.
    pub params: MrtParams,
}

impl Policy for BatchedMrt {
    fn name(&self) -> &str {
        "batch-mrt"
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn supports_reservations(&self) -> bool {
        true
    }

    fn prepare<'a>(&self, jobs: &'a [Job], _m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize(self.name(), jobs, ctx, None, false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        let jobs = self.prepare(jobs, m, ctx);
        let params = self.params;
        if ctx.has_reservations() {
            // Batch algorithms can only align batch boundaries with the
            // reservation windows (§5.1's "likely inefficient" idea, priced
            // honestly): every reservation becomes a full-machine blackout.
            let mut windows: Vec<Reservation> = ctx.reservations.clone();
            windows.extend(ctx.pinned.iter().map(|p| Reservation {
                start: p.start,
                end: p.end,
                procs: p.procs.len(),
            }));
            batch_online_avoiding(&jobs, m, &windows, |b, mm| mrt_schedule(b, mm, params))
        } else {
            batch_online(&jobs, m, |b, mm| mrt_schedule(b, mm, params))
        }
    }
}

/// The bi-criteria doubling-batch algorithm (§4.4).
#[derive(Clone, Copy, Debug, Default)]
pub struct BiCriteriaDoubling {
    /// Batch geometry.
    pub params: BiCriteriaParams,
}

impl Policy for BiCriteriaDoubling {
    fn name(&self) -> &str {
        "bicriteria"
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn prepare<'a>(&self, jobs: &'a [Job], _m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize(self.name(), jobs, ctx, None, false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        bicriteria_schedule(&jobs, m, self.params)
    }
}

/// Dynamic-equipartition adapter (§2.2).
///
/// DEQ proper produces a [`MalleableSchedule`] (allotments change at every
/// event), which the rectangle-exact [`Schedule`] cannot express; the
/// malleable run stays available through [`DeqEquipartition::deq`]. As a
/// [`Policy`], the adapter projects DEQ onto rectangles: every job gets the
/// *static* equipartition share `m / min(n, m)` (capped by its useful
/// parallelism, floor 1) and the shares are list-scheduled FCFS — the
/// standard moldable surrogate for equipartition.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeqEquipartition;

impl DeqEquipartition {
    /// The exact malleable DEQ run (for malleable-capable evaluations).
    pub fn deq(&self, jobs: &[Job], m: usize) -> MalleableSchedule {
        deq_schedule(jobs, m)
    }
}

impl Policy for DeqEquipartition {
    fn name(&self) -> &str {
        "deq-equipartition"
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        let share = (m / jobs.len().clamp(1, m)).max(1);
        let allot = move |j: &Job| share.min(j.max_procs()).max(1);
        normalize(self.name(), jobs, ctx, Some(&allot), false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        let items: Vec<(&Job, usize)> = jobs.iter().map(|j| (j, j.min_procs())).collect();
        list_schedule_allotted(&items, m, JobOrder::Fcfs)
    }
}

/// Non-clairvoyant exponential-trial scheduling (§4.2): run every rigid
/// job FCFS with a runtime estimate, kill it at expiry, resubmit with the
/// estimate doubled. The total processing paid per job with true time `p`
/// and first estimate `e` stays below `4·p + 2e`, so any clairvoyant
/// guarantee degrades by a constant factor — the classical price of not
/// knowing execution times.
///
/// The first estimate comes from the ctx knowledge model
/// ([`Knowledge::NonClairvoyant`]); under a clairvoyant ctx the policy
/// still runs its trials, seeded from [`NonclairvoyantExpTrial::initial_estimate`]
/// ([`DEFAULT_INITIAL_ESTIMATE`] by default).
///
/// [`Policy::schedule`] returns the actual-times rectangle schedule (final
/// trials only); the burnt machine time of killed trials is only visible
/// through [`Policy::run_outcome`], whose [`Outcome::Trial`] carries the
/// [`crate::nonclairvoyant::TrialStats`] counters — which is why the
/// policy's outcome kind is [`OutcomeKind::Trial`] and the event-driven
/// executors refuse it.
#[derive(Clone, Copy, Debug)]
pub struct NonclairvoyantExpTrial {
    /// Fallback first estimate when the ctx knowledge model does not set
    /// one.
    pub initial_estimate: Dur,
}

impl Default for NonclairvoyantExpTrial {
    fn default() -> Self {
        NonclairvoyantExpTrial {
            initial_estimate: DEFAULT_INITIAL_ESTIMATE,
        }
    }
}

impl NonclairvoyantExpTrial {
    fn estimate(&self, ctx: &PolicyCtx) -> Dur {
        match ctx.knowledge {
            Knowledge::NonClairvoyant { initial_estimate } => initial_estimate,
            Knowledge::Clairvoyant => self.initial_estimate,
        }
    }
}

impl Policy for NonclairvoyantExpTrial {
    fn name(&self) -> &str {
        "nonclairvoyant-exp-trial"
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn outcome_kind(&self) -> OutcomeKind {
        OutcomeKind::Trial
    }

    fn prepare<'a>(&self, jobs: &'a [Job], m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        normalize_rigid(self.name(), jobs, m, ctx, false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        let jobs = self.prepare(jobs, m, ctx);
        exponential_trial_schedule(&jobs, m, self.estimate(ctx)).0
    }

    fn run_outcome(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> OutcomeRun {
        assert!(
            ctx.is_identical_machine(),
            "{}: heterogeneous machine speeds need a uniform-capable policy",
            self.name()
        );
        reject_reservations(self.name(), ctx);
        let prepared = self.prepare(jobs, m, ctx).into_owned();
        let (schedule, stats) = exponential_trial_schedule(&prepared, m, self.estimate(ctx));
        OutcomeRun {
            outcome: Outcome::Trial { schedule, stats },
            jobs: prepared,
        }
    }
}

/// Greedy minimum-completion-time on uniform machines (§2.2): every
/// sequential job goes to the processor that finishes it earliest under
/// the per-processor speeds in [`PolicyCtx::speeds`], in LPT priority
/// order — the classical uniform-machine list heuristic.
///
/// The policy's domain is sequential work: moldable/malleable jobs are
/// rigidified at one processor ([`prepare`](Policy::prepare)); wider rigid
/// jobs are rejected, because a multi-processor rectangle has no
/// well-defined span across processors of different speeds.
///
/// [`Policy::run_outcome`] produces the real [`Outcome::Uniform`];
/// [`Policy::schedule`] is the identical-machine projection (all speeds 1,
/// machine index = processor index), which is what keeps the policy
/// runnable — and bit-comparable — next to the rectangle policies on
/// homogeneous platforms.
#[derive(Clone, Copy, Debug)]
pub struct UniformMct {
    /// Priority order jobs are placed in.
    pub order: JobOrder,
}

impl Default for UniformMct {
    fn default() -> Self {
        UniformMct {
            order: JobOrder::Lpt,
        }
    }
}

impl UniformMct {
    fn effective_speeds(&self, m: usize, ctx: &PolicyCtx) -> Vec<f64> {
        if ctx.speeds.is_empty() {
            return vec![1.0; m];
        }
        assert_eq!(
            ctx.speeds.len(),
            m,
            "{}: {} speeds for an m = {m} machine",
            self.name(),
            ctx.speeds.len()
        );
        ctx.speeds.clone()
    }
}

impl Policy for UniformMct {
    fn name(&self) -> &str {
        "uniform-mct"
    }

    fn supports_releases(&self) -> bool {
        true
    }

    fn outcome_kind(&self) -> OutcomeKind {
        OutcomeKind::Uniform
    }

    fn prepare<'a>(&self, jobs: &'a [Job], _m: usize, ctx: &PolicyCtx) -> Cow<'a, [Job]> {
        // Sequential allotment: uniform machines run one-processor work.
        normalize(self.name(), jobs, ctx, Some(&|_: &Job| 1), false)
    }

    fn schedule(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> Schedule {
        reject_reservations(self.name(), ctx);
        assert!(
            ctx.is_identical_machine(),
            "{}: schedule() is the identical-machine projection; run \
             heterogeneous speeds through run_outcome()",
            self.name()
        );
        let jobs = self.prepare(jobs, m, ctx);
        let uni = uniform_list_schedule(&jobs, &vec![1.0; m], self.order);
        let mut rect = Schedule::new(m);
        for a in uni.assignments() {
            rect.push(Assignment {
                job: a.job,
                start: a.start,
                end: a.end,
                procs: ProcSet::from_indices([a.machine]),
            });
        }
        rect
    }

    fn run_outcome(&self, jobs: &[Job], m: usize, ctx: &PolicyCtx) -> OutcomeRun {
        reject_reservations(self.name(), ctx);
        let prepared = self.prepare(jobs, m, ctx).into_owned();
        let speeds = self.effective_speeds(m, ctx);
        OutcomeRun {
            outcome: Outcome::Uniform(uniform_list_schedule(&prepared, &speeds, self.order)),
            jobs: prepared,
        }
    }
}

/// Every paper policy as a boxed, named instance.
///
/// Names are stable identifiers (CSV columns, [`by_name`] lookups):
/// `list-fcfs`, `list-lpt`, `list-spt`, `list-wspt`, `shelf-nfdh`,
/// `shelf-ffdh`, `backfill-easy`, `backfill-conservative`, `smart`,
/// `smart-weighted`, `mrt`, `batch-mrt`, `bicriteria`,
/// `deq-equipartition`, `nonclairvoyant-exp-trial`, `uniform-mct`.
///
/// The first fourteen produce rectangle outcomes; the last two carry the
/// paper's other execution models ([`OutcomeKind::Trial`] /
/// [`OutcomeKind::Uniform`]) and are appended *after* them so every
/// historical iteration order is preserved.
pub fn registry() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(ListScheduling::new(JobOrder::Fcfs)),
        Box::new(ListScheduling::new(JobOrder::Lpt)),
        Box::new(ListScheduling::new(JobOrder::Spt)),
        Box::new(ListScheduling::new(JobOrder::WeightDensity)),
        Box::new(ShelfPacking::new(ShelfAlgo::Nfdh)),
        Box::new(ShelfPacking::new(ShelfAlgo::Ffdh)),
        Box::new(Backfilling::easy()),
        Box::new(Backfilling::conservative()),
        Box::new(SmartShelves::unweighted()),
        Box::new(SmartShelves::weighted()),
        Box::new(MrtTwoShelf::default()),
        Box::new(BatchedMrt::default()),
        Box::new(BiCriteriaDoubling::default()),
        Box::new(DeqEquipartition),
        Box::new(NonclairvoyantExpTrial::default()),
        Box::new(UniformMct::default()),
    ]
}

/// Look a registry policy up by its stable name.
pub fn by_name(name: &str) -> Option<Box<dyn Policy>> {
    registry().into_iter().find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn mixed_jobs() -> Vec<Job> {
        vec![
            Job::rigid(0, 2, d(50)),
            Job::sequential(1, d(120)).released_at(Time::from_ticks(10)),
            Job::moldable(
                2,
                MoldableProfile::from_model(d(400), &SpeedupModel::Amdahl { seq_fraction: 0.1 }, 8),
            )
            .released_at(Time::from_ticks(25)),
        ]
    }

    /// The registry workload every policy can schedule: `mixed_jobs` with
    /// wide rigid work narrowed to the sequential domain for
    /// uniform-machine policies.
    fn domain_jobs(policy: &dyn Policy) -> Vec<Job> {
        match policy.outcome_kind() {
            OutcomeKind::Uniform => mixed_jobs()
                .into_iter()
                .map(|j| match j.kind {
                    JobKind::Rigid { len, .. } => Job {
                        kind: JobKind::Rigid { procs: 1, len },
                        ..j
                    },
                    _ => j,
                })
                .collect(),
            _ => mixed_jobs(),
        }
    }

    #[test]
    fn registry_names_are_unique_and_plentiful() {
        let reg = registry();
        assert!(reg.len() >= 16, "registry has {} policies", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate policy names");
        // The historical prefix: rectangle policies first, new outcome
        // kinds appended after them.
        assert!(reg[..14]
            .iter()
            .all(|p| p.outcome_kind() == OutcomeKind::Rect));
        assert_eq!(reg[14].name(), "nonclairvoyant-exp-trial");
        assert_eq!(reg[15].name(), "uniform-mct");
    }

    #[test]
    fn by_name_roundtrips_every_registry_entry() {
        for p in registry() {
            let found = by_name(p.name()).expect("lookup succeeds");
            assert_eq!(found.name(), p.name());
        }
        assert!(by_name("no-such-policy").is_none());
    }

    #[test]
    fn every_policy_schedules_a_mixed_workload() {
        for policy in registry() {
            let jobs = domain_jobs(policy.as_ref());
            for ctx in [PolicyCtx::default(), PolicyCtx::offline()] {
                let run = policy.run(&jobs, 8, &ctx);
                assert_eq!(
                    run.validate(),
                    Ok(()),
                    "{} ({:?})",
                    policy.name(),
                    ctx.release_mode
                );
                assert_eq!(run.schedule.len(), jobs.len(), "{}", policy.name());
            }
        }
    }

    #[test]
    fn every_policy_runs_through_the_outcome_interface() {
        for policy in registry() {
            let jobs = domain_jobs(policy.as_ref());
            let run = policy.run_outcome(&jobs, 8, &PolicyCtx::default());
            assert_eq!(run.validate(), Ok(()), "{}", policy.name());
            assert_eq!(
                run.outcome.kind(),
                policy.outcome_kind(),
                "{}",
                policy.name()
            );
            assert_eq!(run.outcome.len(), jobs.len(), "{}", policy.name());
            let records = run.outcome.completed(&run.jobs);
            assert_eq!(records.len(), jobs.len(), "{}", policy.name());
            // Rect policies: the outcome is exactly the batch run.
            if policy.outcome_kind() == OutcomeKind::Rect {
                let batch = policy.run(&jobs, 8, &PolicyCtx::default());
                assert_eq!(run.outcome.as_rect(), Some(&batch.schedule));
                assert_eq!(run.outcome.trial_stats(), None);
            }
        }
    }

    #[test]
    fn prepare_borrows_when_identity() {
        // Rigid, release-free jobs under the on-line ctx need no copy.
        let jobs = vec![Job::rigid(0, 2, d(10)), Job::sequential(1, d(5))];
        let p = ListScheduling::new(JobOrder::Fcfs);
        assert!(matches!(
            p.prepare(&jobs, 4, &PolicyCtx::default()),
            Cow::Borrowed(_)
        ));
        // Moldable input forces the rigidifying copy.
        let moldable = mixed_jobs();
        assert!(matches!(
            p.prepare(&moldable, 4, &PolicyCtx::default()),
            Cow::Owned(_)
        ));
    }

    #[test]
    fn offline_mode_strips_releases() {
        let jobs = mixed_jobs();
        let p = BiCriteriaDoubling::default();
        let prepared = p.prepare(&jobs, 8, &PolicyCtx::offline());
        assert!(prepared.iter().all(|j| j.release == Time::ZERO));
        // On-line mode keeps them (bicriteria handles releases natively).
        let online = p.prepare(&jobs, 8, &PolicyCtx::default());
        assert_eq!(online[1].release, Time::from_ticks(10));
    }

    #[test]
    fn backfill_policy_honours_reservations_and_estimates() {
        use crate::backfill::respects_reservations;
        let jobs = vec![Job::rigid(1, 2, d(10)), Job::rigid(2, 1, d(4))];
        let resv = Reservation {
            start: Time::from_ticks(5),
            end: Time::from_ticks(15),
            procs: 2,
        };
        let ctx = PolicyCtx {
            reservations: vec![resv],
            estimate_factor: 2.0,
            ..PolicyCtx::default()
        };
        for policy in [Backfilling::easy(), Backfilling::conservative()] {
            let run = policy.run(&jobs, 2, &ctx);
            assert_eq!(run.validate(), Ok(()), "{}", policy.name());
            assert!(respects_reservations(&run.schedule, 2, &[resv]));
        }
    }

    #[test]
    fn pinned_bookings_are_inviolable() {
        // Pin the exact processor {0} for [0, 100); a 1-proc job must land
        // on processor 1 (count-based refit could not guarantee that).
        let jobs = vec![Job::sequential(1, d(10))];
        let ctx = PolicyCtx {
            pinned: vec![PinnedBooking {
                start: Time::ZERO,
                end: Time::from_ticks(100),
                procs: ProcSet::from_indices([0]),
            }],
            ..PolicyCtx::default()
        };
        let run = Backfilling::conservative().run(&jobs, 2, &ctx);
        assert_eq!(run.validate(), Ok(()));
        let a = &run.schedule.assignments()[0];
        assert_eq!(a.start, Time::ZERO);
        assert_eq!(a.procs, ProcSet::from_indices([1]));
    }

    #[test]
    #[should_panic]
    fn reservation_blind_policies_reject_reservations() {
        let ctx = PolicyCtx {
            reservations: vec![Reservation {
                start: Time::ZERO,
                end: Time::from_ticks(10),
                procs: 1,
            }],
            ..PolicyCtx::default()
        };
        SmartShelves::weighted().schedule(&[Job::sequential(1, d(5))], 2, &ctx);
    }

    #[test]
    #[should_panic]
    fn divisible_jobs_rejected() {
        let j = Job {
            kind: JobKind::Divisible { work: 10.0 },
            ..Job::sequential(1, d(1))
        };
        ListScheduling::new(JobOrder::Fcfs).schedule(&[j], 2, &PolicyCtx::default());
    }

    #[test]
    fn schedule_pending_with_no_commitments_at_zero_is_the_batch_schedule() {
        // The hook's contract: pending jobs have all arrived (release <=
        // now), so at now = 0 the jobs are release-free.
        let ctx = PolicyCtx::default();
        for policy in registry() {
            let jobs: Vec<Job> = domain_jobs(policy.as_ref())
                .into_iter()
                .map(|j| j.released_at(Time::ZERO))
                .collect();
            let batch = policy.schedule(&jobs, 8, &ctx);
            let incremental = policy.schedule_pending(&jobs, 8, Time::ZERO, &[], &ctx);
            assert_eq!(batch, incremental, "{}", policy.name());
        }
    }

    #[test]
    fn schedule_pending_fills_holes_around_commitments_when_pinned_capable() {
        // Processor 0 is committed over [0, 100); a 1-proc pending job at
        // now = 10 must start at 10 on processor 1 — hole-filling, not
        // waiting for the horizon.
        let pending = vec![Job::sequential(1, d(10))];
        let committed = [PinnedBooking {
            start: Time::ZERO,
            end: Time::from_ticks(100),
            procs: ProcSet::from_indices([0]),
        }];
        let s = Backfilling::conservative().schedule_pending(
            &pending,
            2,
            Time::from_ticks(10),
            &committed,
            &PolicyCtx::default(),
        );
        let a = &s.assignments()[0];
        assert_eq!(a.start, Time::from_ticks(10));
        assert_eq!(a.procs, ProcSet::from_indices([1]));
    }

    #[test]
    fn schedule_pending_batch_fallback_waits_for_the_horizon() {
        // Shelf packing cannot work around commitments: the pending batch is
        // scheduled from scratch and shifted past the last committed end.
        let pending = vec![Job::rigid(1, 1, d(10)), Job::rigid(2, 1, d(5))];
        let committed = [PinnedBooking {
            start: Time::from_ticks(20),
            end: Time::from_ticks(50),
            procs: ProcSet::from_indices([0]),
        }];
        let s = ShelfPacking::new(ShelfAlgo::Nfdh).schedule_pending(
            &pending,
            2,
            Time::from_ticks(30),
            &committed,
            &PolicyCtx::default(),
        );
        assert_eq!(s.len(), 2);
        for a in s.assignments() {
            assert!(a.start >= Time::from_ticks(50), "{a:?} inside the horizon");
        }
    }

    #[test]
    fn schedule_pending_batch_fallback_translates_reservations_into_the_shifted_frame() {
        // batch-mrt avoids reservations as full-machine blackouts; the
        // batch fallback schedules zero-based and shifts by the committed
        // horizon, so the absolute window [100, 200) must still be avoided
        // *after* the shift.
        let pending = vec![Job::sequential(1, d(60))];
        let committed = [PinnedBooking {
            start: Time::ZERO,
            end: Time::from_ticks(50),
            procs: ProcSet::from_indices([0, 1]),
        }];
        let ctx = PolicyCtx {
            reservations: vec![Reservation {
                start: Time::from_ticks(100),
                end: Time::from_ticks(200),
                procs: 2,
            }],
            ..PolicyCtx::default()
        };
        let s = BatchedMrt::default().schedule_pending(
            &pending,
            2,
            Time::from_ticks(10),
            &committed,
            &ctx,
        );
        assert_eq!(s.len(), 1);
        let a = &s.assignments()[0];
        assert!(a.start >= Time::from_ticks(50), "{a:?} inside the horizon");
        assert!(
            a.end <= Time::from_ticks(100) || a.start >= Time::from_ticks(200),
            "{a:?} crosses the absolute reservation window"
        );
    }

    #[test]
    fn schedule_pending_expired_commitments_do_not_constrain() {
        // A commitment fully in the past must not block "the whole machine
        // now" placements.
        let pending = vec![Job::rigid(1, 2, d(10))];
        let committed = [PinnedBooking {
            start: Time::ZERO,
            end: Time::from_ticks(5),
            procs: ProcSet::from_indices([0, 1]),
        }];
        for policy in [Backfilling::easy(), Backfilling::conservative()] {
            let s = policy.schedule_pending(
                &pending,
                2,
                Time::from_ticks(5),
                &committed,
                &PolicyCtx::default(),
            );
            assert_eq!(
                s.assignments()[0].start,
                Time::from_ticks(5),
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn batch_mrt_avoids_reservation_windows() {
        let resv = Reservation {
            start: Time::from_ticks(50),
            end: Time::from_ticks(100),
            procs: 2,
        };
        let jobs = vec![
            Job::sequential(1, d(30)),
            Job::sequential(2, d(40)).released_at(Time::from_ticks(10)),
        ];
        let ctx = PolicyCtx {
            reservations: vec![resv],
            ..PolicyCtx::default()
        };
        let run = BatchedMrt::default().run(&jobs, 2, &ctx);
        assert_eq!(run.validate(), Ok(()));
        for a in run.schedule.assignments() {
            assert!(
                a.end <= Time::from_ticks(50) || a.start >= Time::from_ticks(100),
                "assignment {a:?} crosses the blackout"
            );
        }
    }

    #[test]
    fn trial_policy_reads_the_ctx_estimate_and_reports_waste() {
        // True length 700 ticks, ctx estimate 100: kills at 100/200/400,
        // succeeds at 800 — the stats the rectangle interface cannot carry.
        let jobs = vec![Job::rigid(1, 1, d(700))];
        let policy = NonclairvoyantExpTrial::default();
        let ctx = PolicyCtx {
            knowledge: Knowledge::NonClairvoyant {
                initial_estimate: d(100),
            },
            ..PolicyCtx::default()
        };
        let run = policy.run_outcome(&jobs, 1, &ctx);
        assert_eq!(run.validate(), Ok(()));
        let stats = run.outcome.trial_stats().expect("trial outcome");
        assert_eq!(stats.trials, 4);
        assert_eq!(stats.kills, 3);
        assert_eq!(stats.wasted_ticks, 100 + 200 + 400);
        assert_eq!(run.outcome.makespan(), Time::from_ticks(1400));
        // schedule() is the same run minus the counters.
        assert_eq!(
            run.outcome.as_rect(),
            Some(&policy.schedule(&jobs, 1, &ctx))
        );
        // Clairvoyant ctx: the policy's own default estimate seeds the
        // doubling (60 s = 60 000 ticks > 700, so no kills).
        let clair = policy.run_outcome(&jobs, 1, &PolicyCtx::default());
        assert_eq!(clair.outcome.trial_stats().unwrap().kills, 0);
    }

    #[test]
    fn uniform_mct_consumes_ctx_speeds() {
        let jobs = vec![Job::sequential(1, d(100))];
        let ctx = PolicyCtx {
            speeds: vec![1.0, 2.0],
            ..PolicyCtx::default()
        };
        let run = UniformMct::default().run_outcome(&jobs, 2, &ctx);
        assert_eq!(run.validate(), Ok(()));
        // The lone job lands on the fast machine and finishes in 50 ticks.
        assert_eq!(run.outcome.makespan(), Time::from_ticks(50));
        assert_eq!(run.outcome.speeds(), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn uniform_mct_identical_projection_matches_unit_speed_outcome() {
        let jobs: Vec<Job> = (0..6).map(|i| Job::sequential(i, d(40 + 15 * i))).collect();
        let policy = UniformMct::default();
        let ctx = PolicyCtx::default();
        let rect = policy.run(&jobs, 3, &ctx);
        assert_eq!(rect.validate(), Ok(()));
        let outcome = policy.run_outcome(&jobs, 3, &ctx);
        assert_eq!(outcome.validate(), Ok(()));
        assert_eq!(rect.schedule.makespan(), outcome.outcome.makespan());
        // Same placements: machine index == processor index.
        let uni = match &outcome.outcome {
            Outcome::Uniform(u) => u,
            other => panic!("expected uniform outcome, got {:?}", other.kind()),
        };
        for (r, u) in rect.schedule.assignments().iter().zip(uni.assignments()) {
            assert_eq!(r.job, u.job);
            assert_eq!(r.start, u.start);
            assert_eq!(r.procs, ProcSet::from_indices([u.machine]));
        }
    }

    #[test]
    #[should_panic]
    fn rect_policies_reject_heterogeneous_speeds() {
        let ctx = PolicyCtx {
            speeds: vec![1.0, 0.5],
            ..PolicyCtx::default()
        };
        ListScheduling::new(JobOrder::Fcfs).run_outcome(&[Job::sequential(1, d(5))], 2, &ctx);
    }

    #[test]
    #[should_panic]
    fn uniform_mct_rejects_wide_rigid_jobs() {
        UniformMct::default().run_outcome(&[Job::rigid(1, 2, d(10))], 4, &PolicyCtx::default());
    }

    #[test]
    fn deq_adapter_exposes_true_malleable_run() {
        let profile = MoldableProfile::from_model(d(800), &SpeedupModel::Linear, 8);
        let jobs = vec![
            Job {
                kind: JobKind::Malleable {
                    profile: profile.clone(),
                },
                ..Job::sequential(1, d(800))
            },
            Job {
                kind: JobKind::Malleable { profile },
                ..Job::sequential(2, d(800))
            },
        ];
        let adapter = DeqEquipartition;
        let malleable = adapter.deq(&jobs, 8);
        assert_eq!(malleable.validate(&jobs), Ok(()));
        let rect = adapter.run(&jobs, 8, &PolicyCtx::default());
        assert_eq!(rect.validate(), Ok(()));
        // Static shares: two jobs on m=8 get 4 procs each.
        assert!(rect
            .schedule
            .assignments()
            .iter()
            .all(|a| a.procs.len() == 4));
    }
}
