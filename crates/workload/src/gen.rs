//! Synthetic workload generators.
//!
//! Reproduces the workload shapes the paper evaluates or motivates:
//!
//! * [`WorkloadSpec::fig2_parallel`] / [`WorkloadSpec::fig2_sequential`] —
//!   the two job populations of the Fig. 2 simulation (a 100-machine
//!   cluster, "parallel and non-parallel jobs", weighted completion time and
//!   makespan criteria).
//! * [`CommunityProfile`] — the §5.2 communities: numerical physicists with
//!   very long sequential jobs, computer scientists with short debug runs,
//!   parametric campaigns (see [`crate::campaign`](mod@crate::campaign)).
//!
//! All draws flow from the [`SimRng`] passed in; a given (spec, seed) pair
//! always produces the identical job list.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, SimRng, Time};

use crate::job::{Job, JobId, JobKind, UserId};
use crate::speedup::{MoldableProfile, SpeedupModel};

/// Arrival process of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Everything available at t = 0 (the off-line setting of §4.1).
    AllAtZero,
    /// Poisson arrivals with the given mean inter-arrival time, in seconds
    /// (the on-line setting of §4.2).
    Poisson {
        /// Mean time between consecutive submissions.
        mean_interarrival_s: f64,
    },
    /// Non-homogeneous Poisson with a sinusoidal daily cycle (production
    /// traces submit far more by day than by night). Sampled by thinning:
    /// intensity `λ(t) = λ0·(1 + amplitude·sin(2πt/86400))`.
    DailyCycle {
        /// Mean inter-arrival time at the *average* intensity, seconds.
        mean_interarrival_s: f64,
        /// Day/night modulation depth in `[0, 1)`.
        amplitude: f64,
    },
}

impl ArrivalSpec {
    /// Draw the next arrival instant after `clock_s`; returns the updated
    /// clock (absolute seconds).
    pub fn next_after(&self, clock_s: f64, rng: &mut SimRng) -> f64 {
        match *self {
            ArrivalSpec::AllAtZero => clock_s,
            ArrivalSpec::Poisson {
                mean_interarrival_s,
            } => clock_s + rng.exp(mean_interarrival_s),
            ArrivalSpec::DailyCycle {
                mean_interarrival_s,
                amplitude,
            } => {
                assert!((0.0..1.0).contains(&amplitude));
                // Ogata thinning against the max intensity λ0·(1+a).
                let lambda0 = 1.0 / mean_interarrival_s;
                let lambda_max = lambda0 * (1.0 + amplitude);
                let mut t = clock_s;
                loop {
                    t += rng.exp(1.0 / lambda_max);
                    let phase = t / 86_400.0 * std::f64::consts::TAU;
                    let lambda_t = lambda0 * (1.0 + amplitude * phase.sin());
                    if rng.f64() < lambda_t / lambda_max {
                        return t;
                    }
                }
            }
        }
    }
}

/// Scalar distributions used for work sizes and weights.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// Always the same value.
    Fixed(f64),
    /// Uniform over `[lo, hi)`.
    Uniform(f64, f64),
    /// Log-uniform over `[lo, hi]` — sizes spread across orders of
    /// magnitude, the classic parallel-workload shape.
    LogUniform(f64, f64),
    /// Exponential with the given mean.
    Exp(f64),
    /// Bounded Pareto with shape alpha over `[lo, hi]` (heavy tail).
    BoundedPareto(f64, f64, f64),
}

impl DistSpec {
    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            DistSpec::Fixed(v) => v,
            DistSpec::Uniform(lo, hi) => rng.range(lo, hi),
            DistSpec::LogUniform(lo, hi) => rng.log_uniform(lo, hi),
            DistSpec::Exp(mean) => rng.exp(mean),
            DistSpec::BoundedPareto(alpha, lo, hi) => rng.bounded_pareto(alpha, lo, hi),
        }
    }

    /// Closed-form expectation of the distribution — the quantity the
    /// open-arrival layer needs to turn a target utilization ρ into an
    /// arrival rate (`λ = ρ·m / E[width]·E[service]`).
    ///
    /// * `Uniform(lo, hi)`: `(lo + hi) / 2`.
    /// * `LogUniform(lo, hi)`: `(hi − lo) / ln(hi/lo)` (the mean of
    ///   `e^U`, `U ~ Uniform[ln lo, ln hi]`).
    /// * `BoundedPareto(α, lo, hi)`:
    ///   `α·loᵅ·(hi^{1−α} − lo^{1−α}) / ((1 − α)·(1 − (lo/hi)ᵅ))`
    ///   for α ≠ 1, and `lo·hi·ln(hi/lo) / (hi − lo)` at α = 1.
    pub fn mean(&self) -> f64 {
        match *self {
            DistSpec::Fixed(v) => v,
            DistSpec::Uniform(lo, hi) => 0.5 * (lo + hi),
            DistSpec::LogUniform(lo, hi) => {
                if hi <= lo {
                    lo
                } else {
                    (hi - lo) / (hi / lo).ln()
                }
            }
            DistSpec::Exp(mean) => mean,
            DistSpec::BoundedPareto(alpha, lo, hi) => {
                if hi <= lo {
                    return lo;
                }
                if (alpha - 1.0).abs() < 1e-9 {
                    lo * hi * (hi / lo).ln() / (hi - lo)
                } else {
                    let norm = 1.0 - (lo / hi).powf(alpha);
                    alpha * lo.powf(alpha) * (hi.powf(1.0 - alpha) - lo.powf(1.0 - alpha))
                        / ((1.0 - alpha) * norm)
                }
            }
        }
    }
}

/// Full description of a synthetic workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Arrival process.
    pub arrival: ArrivalSpec,
    /// Sequential work of each job, in seconds.
    pub work_s: DistSpec,
    /// Fraction of jobs that are moldable parallel tasks (the rest are
    /// sequential rigid jobs). Fig. 2's "Parallel" series uses 1.0, its
    /// "Non Parallel" series 0.0.
    pub parallel_fraction: f64,
    /// Speedup models drawn uniformly for each parallel job.
    pub models: Vec<SpeedupModel>,
    /// Maximum useful processors of a parallel job, as a fraction of the
    /// machine size `m`, drawn uniformly in `[lo, hi]`.
    pub max_procs_frac: (f64, f64),
    /// Job weights ωi.
    pub weight: DistSpec,
    /// Owning user for all generated jobs.
    pub user: UserId,
}

impl WorkloadSpec {
    /// The Fig. 2 "Parallel" population: `n` moldable jobs, log-uniform
    /// sequential work from 30 s to 3000 s, mixed Amdahl / power-law
    /// penalties, weights log-uniform in `[1, 10]`, submitted on-line.
    pub fn fig2_parallel(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            n_jobs: n,
            arrival: ArrivalSpec::Poisson {
                mean_interarrival_s: 10.0,
            },
            work_s: DistSpec::LogUniform(30.0, 3000.0),
            parallel_fraction: 1.0,
            models: vec![
                SpeedupModel::Amdahl { seq_fraction: 0.05 },
                SpeedupModel::Amdahl { seq_fraction: 0.15 },
                SpeedupModel::PowerLaw { sigma: 0.9 },
                SpeedupModel::CommPenalty { overhead: 0.01 },
            ],
            max_procs_frac: (0.05, 0.5),
            weight: DistSpec::LogUniform(1.0, 10.0),
            user: UserId(0),
        }
    }

    /// The Fig. 2 "Non Parallel" population: same sizes and weights, but
    /// every job sequential.
    pub fn fig2_sequential(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            parallel_fraction: 0.0,
            ..WorkloadSpec::fig2_parallel(n)
        }
    }

    /// Generate the job list for a machine of `m` processors.
    pub fn generate(&self, m: usize, rng: &mut SimRng) -> Vec<Job> {
        assert!(m >= 1);
        assert!((0.0..=1.0).contains(&self.parallel_fraction));
        let mut jobs = Vec::with_capacity(self.n_jobs);
        let mut clock = 0.0f64;
        for i in 0..self.n_jobs {
            let release = {
                clock = self.arrival.next_after(clock, rng);
                Time::from_secs_f64(clock)
            };
            let work = Dur::from_secs_f64(self.work_s.sample(rng)).max(Dur::from_ticks(1));
            let parallel = rng.chance(self.parallel_fraction) && !self.models.is_empty();
            let kind = if parallel {
                let model = rng.choice(&self.models).clone();
                let frac = rng.range(self.max_procs_frac.0, self.max_procs_frac.1 + f64::EPSILON);
                let kmax = ((m as f64 * frac).round() as usize).clamp(1, m);
                JobKind::Moldable {
                    profile: MoldableProfile::from_model(work, &model, kmax),
                }
            } else {
                JobKind::Rigid {
                    procs: 1,
                    len: work,
                }
            };
            jobs.push(Job {
                id: JobId(i as u64),
                kind,
                release,
                weight: self.weight.sample(rng).max(0.0),
                due: None,
                user: self.user,
            });
        }
        jobs
    }
}

/// The §5.2 communities of the CIMENT grid and their workload shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommunityProfile {
    /// Numerical physicists: long (hours to weeks) sequential jobs.
    NumericalPhysics,
    /// Computer scientists: short jobs "focusing mainly on debug".
    ComputerScience,
    /// Moldable HPC applications (astro/medical image processing).
    ParallelHpc,
}

impl CommunityProfile {
    /// A workload spec for `n` jobs of this community on an `m`-proc
    /// cluster. User ids: physics 1, CS 2, HPC 3.
    pub fn spec(&self, n: usize) -> WorkloadSpec {
        match self {
            CommunityProfile::NumericalPhysics => WorkloadSpec {
                n_jobs: n,
                arrival: ArrivalSpec::Poisson {
                    mean_interarrival_s: 1800.0,
                },
                // Hours up to ~2 weeks, heavy tail.
                work_s: DistSpec::BoundedPareto(1.1, 3600.0, 1.2e6),
                parallel_fraction: 0.0,
                models: vec![],
                max_procs_frac: (0.0, 0.0),
                weight: DistSpec::Fixed(1.0),
                user: UserId(1),
            },
            CommunityProfile::ComputerScience => WorkloadSpec {
                n_jobs: n,
                arrival: ArrivalSpec::Poisson {
                    mean_interarrival_s: 120.0,
                },
                // Seconds to ~20 min debug runs.
                work_s: DistSpec::LogUniform(5.0, 1200.0),
                parallel_fraction: 0.3,
                models: vec![SpeedupModel::Amdahl { seq_fraction: 0.2 }],
                max_procs_frac: (0.05, 0.2),
                weight: DistSpec::Fixed(1.0),
                user: UserId(2),
            },
            CommunityProfile::ParallelHpc => WorkloadSpec {
                n_jobs: n,
                arrival: ArrivalSpec::Poisson {
                    mean_interarrival_s: 600.0,
                },
                work_s: DistSpec::LogUniform(600.0, 86_400.0),
                parallel_fraction: 1.0,
                models: vec![
                    SpeedupModel::Amdahl { seq_fraction: 0.05 },
                    SpeedupModel::PowerLaw { sigma: 0.85 },
                ],
                max_procs_frac: (0.1, 0.6),
                weight: DistSpec::Fixed(1.0),
                user: UserId(3),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = WorkloadSpec::fig2_parallel(50);
        let a = spec.generate(100, &mut SimRng::seed_from(9));
        let b = spec.generate(100, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
        let c = spec.generate(100, &mut SimRng::seed_from(10));
        assert_ne!(a, c);
    }

    #[test]
    fn fig2_parallel_is_all_moldable() {
        let jobs = WorkloadSpec::fig2_parallel(80).generate(100, &mut SimRng::seed_from(1));
        assert_eq!(jobs.len(), 80);
        assert!(jobs.iter().all(|j| j.profile().is_some()));
        for j in &jobs {
            let p = j.profile().unwrap();
            assert!(p.max_procs() >= 1 && p.max_procs() <= 100);
            let secs = p.seq_time().as_secs_f64();
            assert!((29.0..3100.0).contains(&secs), "work {secs}");
            assert!((1.0..=10.0 + 1e-9).contains(&j.weight));
        }
    }

    #[test]
    fn fig2_sequential_is_all_sequential() {
        let jobs = WorkloadSpec::fig2_sequential(60).generate(100, &mut SimRng::seed_from(2));
        assert!(jobs
            .iter()
            .all(|j| matches!(j.kind, JobKind::Rigid { procs: 1, .. })));
    }

    #[test]
    fn poisson_releases_are_increasing() {
        let jobs = WorkloadSpec::fig2_parallel(40).generate(100, &mut SimRng::seed_from(3));
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        assert!(jobs.last().unwrap().release > Time::ZERO);
    }

    #[test]
    fn daily_cycle_modulates_rate() {
        // With full-depth modulation, the busy half-day (sin > 0) must
        // receive clearly more arrivals than the quiet half-day.
        let spec = ArrivalSpec::DailyCycle {
            mean_interarrival_s: 60.0,
            amplitude: 0.9,
        };
        let mut rng = SimRng::seed_from(31);
        let mut clock = 0.0;
        let mut busy = 0usize;
        let mut quiet = 0usize;
        for _ in 0..5_000 {
            clock = spec.next_after(clock, &mut rng);
            let phase = (clock / 86_400.0) % 1.0;
            if phase < 0.5 {
                busy += 1; // sin positive on the first half-cycle
            } else {
                quiet += 1;
            }
        }
        assert!(
            busy as f64 > 1.5 * quiet as f64,
            "busy {busy} vs quiet {quiet}"
        );
    }

    #[test]
    fn daily_cycle_mean_rate_roughly_preserved() {
        let spec = ArrivalSpec::DailyCycle {
            mean_interarrival_s: 30.0,
            amplitude: 0.5,
        };
        let mut rng = SimRng::seed_from(37);
        let n = 20_000;
        let mut clock = 0.0;
        for _ in 0..n {
            clock = spec.next_after(clock, &mut rng);
        }
        let mean = clock / n as f64;
        assert!((25.0..35.0).contains(&mean), "mean interarrival {mean}");
    }

    #[test]
    fn all_at_zero_releases() {
        let spec = WorkloadSpec {
            arrival: ArrivalSpec::AllAtZero,
            ..WorkloadSpec::fig2_parallel(10)
        };
        let jobs = spec.generate(50, &mut SimRng::seed_from(4));
        assert!(jobs.iter().all(|j| j.release == Time::ZERO));
    }

    #[test]
    fn community_profiles_differ() {
        let rng = SimRng::seed_from(5);
        let phys = CommunityProfile::NumericalPhysics
            .spec(100)
            .generate(200, &mut rng.child(0));
        let cs = CommunityProfile::ComputerScience
            .spec(100)
            .generate(200, &mut rng.child(1));
        let mean =
            |v: &[Job]| v.iter().map(|j| j.seq_time().as_secs_f64()).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&phys) > 10.0 * mean(&cs),
            "physics jobs are much longer: {} vs {}",
            mean(&phys),
            mean(&cs)
        );
        assert!(phys.iter().all(|j| j.user == UserId(1)));
        assert!(cs.iter().all(|j| j.user == UserId(2)));
    }

    #[test]
    fn dist_spec_means_match_monte_carlo() {
        let dists = [
            DistSpec::Fixed(3.0),
            DistSpec::Uniform(1.0, 5.0),
            DistSpec::LogUniform(2.0, 200.0),
            DistSpec::Exp(7.0),
            DistSpec::BoundedPareto(1.5, 2.0, 50.0),
            DistSpec::BoundedPareto(1.0, 2.0, 50.0), // the α = 1 special case
        ];
        let mut rng = SimRng::seed_from(11);
        for d in dists {
            let n = 200_000;
            let empirical = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            let rel = (empirical - d.mean()).abs() / d.mean();
            assert!(rel < 0.02, "{d:?}: analytic {} vs MC {empirical}", d.mean());
        }
    }

    #[test]
    fn dist_specs_sample_in_range() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..200 {
            assert_eq!(DistSpec::Fixed(3.0).sample(&mut rng), 3.0);
            let u = DistSpec::Uniform(1.0, 2.0).sample(&mut rng);
            assert!((1.0..2.0).contains(&u));
            let lu = DistSpec::LogUniform(1.0, 100.0).sample(&mut rng);
            assert!((1.0..=100.0).contains(&lu));
            let bp = DistSpec::BoundedPareto(1.5, 2.0, 50.0).sample(&mut rng);
            assert!((2.0..=50.0).contains(&bp));
            assert!(DistSpec::Exp(5.0).sample(&mut rng) >= 0.0);
        }
    }
}
