//! Machine-readable perf baseline: times the [`Timeline`] hot operations
//! (the backfill / CiGri / DES placement workhorse) and a full conservative
//! backfill of a `large-scale` instance, then writes the medians to
//! `BENCH_timeline.json` — the committed perf trajectory future PRs compare
//! against.
//!
//! ```text
//! cargo run --release -p lsps-bench --bin bench_report            # BENCH_timeline.json
//! cargo run --release -p lsps-bench --bin bench_report -- out.json
//! ```
//!
//! The timed operations mirror `benches/bench_timeline.rs`; this binary
//! exists because the criterion harness prints for humans while the perf
//! trajectory needs stable JSON. Absolute numbers are machine-specific —
//! the trajectory tracks *relative* movement per op and size.

use std::time::Instant;

use serde::{Serialize, Value};

use lsps_core::backfill::{backfill_schedule_estimated, BackfillPolicy};
use lsps_des::{Dur, SimRng, Time};
use lsps_platform::{BookingKind, ProcSet, Timeline};
use lsps_scenario::families::large_scale_instance;

/// Median wall-clock nanoseconds per call of `f` over `samples` batches.
fn median_ns(samples: usize, batch: u32, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            (t0.elapsed().as_nanos() / batch as u128) as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// A randomly loaded timeline with `bookings` live bookings (same shape as
/// the criterion bench).
fn loaded_timeline(m: usize, bookings: usize, rng: &mut SimRng) -> Timeline {
    let mut tl = Timeline::with_procs(m);
    for _ in 0..bookings {
        let q = rng.int_range(1, (m as u64 / 4).max(1)) as usize;
        let len = Dur::from_ticks(rng.int_range(10, 500));
        let (start, procs) = tl
            .earliest_slot(Time::from_ticks(rng.int_range(0, 50_000)), len, q)
            .expect("fits");
        tl.book(start, start + len, procs, BookingKind::Job);
    }
    tl
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_timeline.json".into());
    let m = 1024;
    let samples = 30;
    let mut results: Vec<Value> = Vec::new();
    let mut push = |op: &str, bookings: usize, ns: u64| {
        eprintln!("{op:<28} @ {bookings:>5} bookings: {ns:>10} ns/op");
        results.push(Value::Map(vec![
            ("op".into(), op.to_value()),
            ("bookings".into(), bookings.to_value()),
            ("median_ns".into(), ns.to_value()),
        ]));
    };

    for &bookings in &[100usize, 1_000, 4_000] {
        let mut rng = SimRng::seed_from(3);
        let tl = loaded_timeline(m, bookings, &mut rng);
        let horizon = tl.horizon(Time::ZERO);
        push(
            "earliest_slot",
            bookings,
            median_ns(samples, 64, || {
                std::hint::black_box(tl.earliest_slot(
                    Time::from_ticks(10_000),
                    Dur::from_ticks(100),
                    16,
                ));
            }),
        );
        push(
            "free_profile_full",
            bookings,
            median_ns(samples, 8, || {
                std::hint::black_box(tl.free_profile(Time::ZERO, horizon));
            }),
        );
        push(
            "free_at",
            bookings,
            median_ns(samples, 256, || {
                std::hint::black_box(tl.free_at(Time::from_ticks(25_000)));
            }),
        );
        push(
            "free_during_1k",
            bookings,
            median_ns(samples, 64, || {
                std::hint::black_box(
                    tl.free_during(Time::from_ticks(20_000), Time::from_ticks(21_000)),
                );
            }),
        );
        let mut churn = tl.clone();
        push(
            "book_remove_cycle",
            bookings,
            median_ns(samples, 64, || {
                let free = churn.free_during(Time::from_ticks(60_000), Time::from_ticks(60_100));
                let id = churn.book(
                    Time::from_ticks(60_000),
                    Time::from_ticks(60_100),
                    free.take_first(8.min(free.len())),
                    BookingKind::Job,
                );
                churn.remove(id).expect("present");
            }),
        );
    }

    // End-to-end placement: conservative + EASY backfill of a full
    // `large-scale` instance — the workload the campaign spec
    // `examples/large_scale_campaign.json` sweeps.
    let n = 5_000;
    let jobs = large_scale_instance(&mut SimRng::seed_from(7), n, m);
    for (name, policy) in [
        ("conservative_backfill_5k", BackfillPolicy::Conservative),
        ("easy_backfill_5k", BackfillPolicy::Easy),
    ] {
        let t0 = Instant::now();
        let sched = backfill_schedule_estimated(&jobs, m, &[], policy, 1.2);
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(sched.len(), n);
        push(name, n, ns);
    }

    // A ProcSet datapoint so the bitset layer has a trajectory too.
    let a = ProcSet::from_indices((0..m).filter(|i| i % 3 != 0));
    let b = ProcSet::from_indices((0..m).filter(|i| i % 2 == 0));
    push(
        "procset_difference_len",
        0,
        median_ns(samples, 4096, || {
            std::hint::black_box(a.difference_len(&b));
        }),
    );

    let report = Value::Map(vec![
        ("schema".into(), "lsps-bench/timeline-v1".to_value()),
        ("m".into(), m.to_value()),
        ("samples".into(), samples.to_value()),
        ("results".into(), Value::Seq(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("[written] {out}");
}
