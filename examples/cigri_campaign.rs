//! A light grid sharing its holes: the §5.2 CiGri story in miniature.
//!
//! Four CIMENT clusters run their communities' local jobs; a 5000-run
//! multi-parametric campaign flows through the central best-effort server,
//! is killed whenever a local job needs the processors, and still drains —
//! without delaying a single local job.
//!
//! ```sh
//! cargo run --example cigri_campaign --release
//! ```

use lsps::grid::scenario::{ciment_scenario, ScenarioParams};

fn main() {
    let outcome = ciment_scenario(ScenarioParams {
        seed: 7,
        local_jobs_per_cluster: 40,
        campaign_runs: 5_000,
        campaign_run_s: 300.0,
        poll_period_s: 30.0,
    });

    let with = &outcome.with_grid;
    let without = &outcome.without_grid;
    let wl = with.local.as_ref().expect("locals completed");
    let nl = without.local.as_ref().expect("locals completed");

    println!("local jobs            : {}", wl.n);
    println!(
        "local mean flow       : {:.0} s with grid, {:.0} s without (identical = undisturbed)",
        wl.mean_flow, nl.mean_flow
    );
    println!(
        "campaign              : {}/{} runs completed, drained at {:.0} s",
        with.be_completed,
        with.be_submitted,
        with.campaign_done_at.as_secs_f64()
    );
    println!(
        "kill overhead         : {} kills, {:.0} CPU-s wasted",
        with.kills, with.wasted_cpu_s
    );
    for (i, (a, b)) in with
        .utilization
        .iter()
        .zip(&without.utilization)
        .enumerate()
    {
        println!(
            "cluster {i} utilization : {:.1}% -> {:.1}%",
            b * 100.0,
            a * 100.0
        );
    }
    println!(
        "community fairness    : {:.3} (Jain index)",
        outcome.fairness
    );

    assert!(
        (wl.mean_flow - nl.mean_flow).abs() < 1e-9,
        "locals disturbed!"
    );
    println!("\nclaim verified: best-effort grid jobs never delayed a local job.");
}
