//! Shelf (level) algorithms for rigid jobs — the strip-packing view.
//!
//! "The allocation problem corresponds to a strip-packing problem" (§2.2,
//! ref \[13\]). Shelf algorithms sort jobs by decreasing height (execution
//! time) and fill horizontal levels of the strip (machine width `m`):
//!
//! * **NFDH** — next-fit: only the current shelf is considered;
//! * **FFDH** — first-fit: a job drops into the first shelf it fits.
//!
//! Shelves are also the building block of SMART ([`crate::smart`]), which
//! orders them by Smith ratios instead of stacking them in creation order.

use lsps_des::Time;
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobKind};

use crate::schedule::Schedule;

/// Which shelf-packing rule to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShelfAlgo {
    /// Next-Fit Decreasing Height.
    Nfdh,
    /// First-Fit Decreasing Height.
    Ffdh,
}

struct Shelf {
    start: Time,
    used: usize,
}

/// Pack rigid `jobs` (all released at 0) on `m` processors into shelves.
///
/// # Panics
/// If a job is not rigid, wider than `m`, or has a non-zero release date
/// (shelf algorithms are off-line; use [`crate::batch`] for releases).
pub fn shelf_schedule(jobs: &[Job], m: usize, algo: ShelfAlgo) -> Schedule {
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Rigid { .. }),
            "shelf_schedule expects rigid jobs; job {} is not",
            j.id
        );
        assert!(j.min_procs() <= m, "job {} wider than machine", j.id);
        assert!(
            j.release == Time::ZERO,
            "shelf_schedule is off-line; job {} has a release date",
            j.id
        );
    }
    let mut order: Vec<&Job> = jobs.iter().collect();
    // Decreasing height, ties by id for determinism.
    order.sort_by_key(|j| (std::cmp::Reverse(j.min_time()), j.id));

    let mut sched = Schedule::new(m);
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut next_start = Time::ZERO;
    for job in order {
        let q = job.min_procs();
        let found = match algo {
            ShelfAlgo::Nfdh => shelves
                .len()
                .checked_sub(1)
                .filter(|&i| shelves[i].used + q <= m),
            ShelfAlgo::Ffdh => (0..shelves.len()).find(|&i| shelves[i].used + q <= m),
        };
        let idx = match found {
            Some(i) => i,
            None => {
                // Open a new shelf; its height is this job's time (tallest
                // remaining, by the sort).
                shelves.push(Shelf {
                    start: next_start,
                    used: 0,
                });
                next_start += job.min_time();
                shelves.len() - 1
            }
        };
        let shelf = &mut shelves[idx];
        let procs = ProcSet::range(shelf.used, shelf.used + q);
        sched.place(job, shelf.start, procs);
        shelf.used += q;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_metrics::cmax_lower_bound;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn single_shelf_when_everything_fits() {
        let jobs = vec![
            Job::rigid(1, 3, d(10)),
            Job::rigid(2, 3, d(8)),
            Job::rigid(3, 2, d(5)),
        ];
        for algo in [ShelfAlgo::Nfdh, ShelfAlgo::Ffdh] {
            let s = shelf_schedule(&jobs, 8, algo);
            assert!(s.validate(&jobs).is_ok(), "{algo:?}");
            assert_eq!(s.makespan(), Time::from_ticks(10), "{algo:?}");
            assert!(s.assignments().iter().all(|a| a.start == Time::ZERO));
        }
    }

    #[test]
    fn ffdh_reuses_earlier_shelves_nfdh_does_not() {
        // Heights 10, 10, 6, 5; widths 3, 3, 3, 2 on m=5.
        // Sorted: A(10,w3), B(10,w3), C(6,w3), D(5,w2).
        // Shelf1 (h10): A + D? — NFDH: A(3), B doesn't fit (3+3>5) → shelf2:
        // B, C doesn't fit? 3+3>5 → shelf3: C, D fits shelf3 (3+2=5).
        // FFDH: A; B→shelf2; C→shelf3; D fits *shelf1* (3+2=5).
        let jobs = vec![
            Job::rigid(1, 3, d(10)),
            Job::rigid(2, 3, d(10)),
            Job::rigid(3, 3, d(6)),
            Job::rigid(4, 2, d(5)),
        ];
        let nfdh = shelf_schedule(&jobs, 5, ShelfAlgo::Nfdh);
        let ffdh = shelf_schedule(&jobs, 5, ShelfAlgo::Ffdh);
        assert!(nfdh.validate(&jobs).is_ok() && ffdh.validate(&jobs).is_ok());
        let d_start = |s: &Schedule| {
            s.assignments()
                .iter()
                .find(|a| a.job == lsps_workload::JobId(4))
                .unwrap()
                .start
        };
        assert_eq!(d_start(&ffdh), Time::ZERO, "FFDH backfills into shelf 1");
        assert_eq!(
            d_start(&nfdh),
            Time::from_ticks(20),
            "NFDH appends to last shelf"
        );
        assert!(ffdh.makespan() <= nfdh.makespan());
    }

    #[test]
    fn nfdh_known_bound_holds() {
        // NFDH ≤ 2·OPT + tallest (strip packing); against the area/tallest
        // LB we check the crude 3× envelope on a mixed instance.
        let lens = [13u64, 7, 19, 3, 11, 5, 17, 2, 23, 8];
        let widths = [1usize, 2, 3, 1, 4, 2, 1, 3, 2, 1];
        let jobs: Vec<Job> = lens
            .iter()
            .zip(&widths)
            .enumerate()
            .map(|(i, (&l, &w))| Job::rigid(i as u64, w, d(l)))
            .collect();
        for algo in [ShelfAlgo::Nfdh, ShelfAlgo::Ffdh] {
            let s = shelf_schedule(&jobs, 4, algo);
            assert!(s.validate(&jobs).is_ok());
            let lb = cmax_lower_bound(&jobs, 4).ticks() as f64;
            let ratio = s.makespan().ticks() as f64 / lb;
            assert!(ratio <= 3.0, "{algo:?}: ratio {ratio}");
        }
    }

    #[test]
    fn full_width_jobs_stack() {
        let jobs = vec![Job::rigid(1, 4, d(5)), Job::rigid(2, 4, d(5))];
        let s = shelf_schedule(&jobs, 4, ShelfAlgo::Ffdh);
        assert_eq!(s.makespan(), Time::from_ticks(10));
    }

    #[test]
    #[should_panic]
    fn release_dates_rejected() {
        let j = Job::rigid(1, 1, d(5)).released_at(Time::from_ticks(1));
        shelf_schedule(&[j], 2, ShelfAlgo::Nfdh);
    }
}
