//! Property coverage of the DES substrate the online executor now leans
//! on: under *any* interleaving of `schedule`/`cancel`, the event queue
//! pops in nondecreasing time order with FIFO tie-breaking, cancellation
//! reports liveness exactly once, and the engine dispatches every live
//! event in that same order. The whole workspace's determinism rests on
//! these two invariants.

use lsps::des::{Ctx, EventQueue, Model, Simulation, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random interleavings of `schedule` and `cancel`, then a full drain:
    /// pops are nondecreasing in time, FIFO within a tie, a cancelled entry
    /// never surfaces, and `cancel` of an already-popped key returns false.
    #[test]
    fn interleaved_schedule_cancel_drains_in_order(
        ops in prop::collection::vec((0u8..8, 0u64..48, 0usize..64), 1..80),
    ) {
        let mut q = EventQueue::new();
        // (key, cancelled-by-us); payload = (time, global insertion seq).
        let mut keys = Vec::new();
        let mut insertions = 0u64;
        for &(op, t, idx) in &ops {
            if op < 6 {
                let key = q.schedule(Time::from_ticks(t), (t, insertions));
                insertions += 1;
                keys.push((key, false));
            } else if !keys.is_empty() {
                let i = idx % keys.len();
                let was_live = !keys[i].1;
                prop_assert_eq!(
                    q.cancel(keys[i].0), was_live,
                    "cancel must report liveness exactly once"
                );
                keys[i].1 = true;
            }
        }
        let cancelled = keys.iter().filter(|(_, c)| *c).count();
        prop_assert_eq!(q.len(), keys.len() - cancelled);

        let mut popped = Vec::new();
        let mut last: Option<(Time, u64)> = None;
        while let Some((at, key, (t, seq))) = q.pop() {
            prop_assert_eq!(at.ticks(), t, "popped at a different time than scheduled");
            if let Some((prev_at, prev_seq)) = last {
                prop_assert!(at >= prev_at, "time order violated");
                if at == prev_at {
                    prop_assert!(seq > prev_seq, "FIFO tie-break violated");
                }
            }
            last = Some((at, seq));
            popped.push(key);
        }
        prop_assert_eq!(popped.len() + cancelled, keys.len());
        for key in popped {
            prop_assert!(!q.cancel(key), "cancel of a popped key must return false");
        }
    }
}

/// Records every dispatch instant.
struct Recorder {
    seen: Vec<Time>,
}

impl Model for Recorder {
    type Event = ();
    fn handle(&mut self, now: Time, _event: (), _ctx: &mut Ctx<'_, ()>) {
        self.seen.push(now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine built on that queue dispatches every seeded event, in
    /// sorted time order, and its counters agree with the run stats.
    #[test]
    fn engine_dispatches_every_event_in_time_order(
        times in prop::collection::vec(0u64..500, 1..60),
    ) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule_at(Time::from_ticks(t), ());
        }
        let stats = sim.run_to_completion(times.len() as u64 + 1);
        prop_assert_eq!(stats.events_dispatched, times.len() as u64);
        prop_assert_eq!(sim.dispatched(), times.len() as u64);
        let seen: Vec<u64> = sim.model().seen.iter().map(|t| t.ticks()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }
}
