//! FIG3 — the CIMENT light grid under CiGri best-effort sharing.
//!
//! Uses the four Fig. 3 clusters and the §5.2 story: each community keeps
//! submitting to its own cluster; one multi-parametric campaign flows
//! through the central best-effort server. Measures the paper's claims:
//!
//! 1. local users are *not* disturbed (identical local criteria with and
//!    without the grid layer);
//! 2. the grid layer converts idle holes into completed campaign runs
//!    (utilization rises);
//! 3. the cost of the kill/resubmit mechanism ("the cost of killing one of
//!    them is not too big") — ablated over the campaign run length.

use lsps_bench::{write_csv, Table};
use lsps_des::{Dur, SimRng};
use lsps_grid::exchange::{run_exchange, ExchangeParams, ExchangeStrategy};
use lsps_grid::{ciment_scenario, ScenarioParams};
use lsps_metrics::{jain_index, per_user};
use lsps_platform::presets;
use lsps_workload::{CommunityProfile, Job, UserId};

fn main() {
    println!("FIG3 — CIMENT grid, CiGri best-effort layer\n");
    // The local workloads (heavy-tailed physics jobs) span days of
    // simulated time; size the campaign to the idle capacity so the
    // utilization effect is visible — §5.2's campaigns run "up to several
    // hundreds of thousands" of runs.
    let base = ScenarioParams {
        local_jobs_per_cluster: 60,
        campaign_runs: 150_000,
        campaign_run_s: 600.0,
        ..Default::default()
    };
    let out = ciment_scenario(base);
    let with = &out.with_grid;
    let without = &out.without_grid;
    let wl = with.local.as_ref().expect("locals ran");
    let nl = without.local.as_ref().expect("locals ran");

    let mut t = Table::new(&["metric", "without grid", "with grid"]);
    t.row(vec![
        "local Cmax (s)".into(),
        format!("{:.0}", nl.cmax),
        format!("{:.0}", wl.cmax),
    ]);
    t.row(vec![
        "local mean flow (s)".into(),
        format!("{:.1}", nl.mean_flow),
        format!("{:.1}", wl.mean_flow),
    ]);
    t.row(vec![
        "local mean slowdown".into(),
        format!("{:.3}", nl.mean_slowdown),
        format!("{:.3}", wl.mean_slowdown),
    ]);
    t.row(vec![
        "campaign runs done".into(),
        without.be_completed.to_string(),
        with.be_completed.to_string(),
    ]);
    t.row(vec![
        "kills".into(),
        without.kills.to_string(),
        with.kills.to_string(),
    ]);
    t.row(vec![
        "wasted CPU (s)".into(),
        format!("{:.0}", without.wasted_cpu_s),
        format!("{:.0}", with.wasted_cpu_s),
    ]);
    t.row(vec![
        "campaign drained at (s)".into(),
        "-".into(),
        format!("{:.0}", with.campaign_done_at.as_secs_f64()),
    ]);
    for (i, (u_with, u_without)) in with
        .utilization
        .iter()
        .zip(&without.utilization)
        .enumerate()
    {
        t.row(vec![
            format!("cluster {i} utilization"),
            format!("{:.1}%", u_without * 100.0),
            format!("{:.1}%", u_with * 100.0),
        ]);
    }
    t.row(vec![
        "community fairness (Jain)".into(),
        "-".into(),
        format!("{:.3}", out.fairness),
    ]);
    t.print();

    let undisturbed =
        (wl.mean_flow - nl.mean_flow).abs() < 1e-9 && (wl.cmax - nl.cmax).abs() < 1e-9;
    println!(
        "\nclaim check — locals undisturbed by best-effort jobs: {}",
        if undisturbed { "HOLDS" } else { "VIOLATED" }
    );

    // Ablation: kill cost vs campaign run length (§5.2: "Since there are a
    // large number of relatively small runs, the cost of killing one of
    // them is not too big").
    println!("\nablation — kill overhead vs run length:");
    let mut t2 = Table::new(&[
        "run length (s)",
        "runs",
        "kills",
        "wasted CPU (s)",
        "wasted / useful",
        "drained at (s)",
    ]);
    let mut csv = String::from("run_s,runs,kills,wasted_cpu_s,wasted_frac,drained_s\n");
    for run_s in [60.0, 600.0, 3600.0, 14400.0] {
        // Same total campaign work in every row (9e7 CPU-s).
        let runs = (150_000.0 * 600.0 / run_s) as usize;
        let out = ciment_scenario(ScenarioParams {
            campaign_runs: runs,
            campaign_run_s: run_s,
            ..base
        });
        let g = &out.with_grid;
        let useful = g.be_completed as f64 * run_s;
        let frac = g.wasted_cpu_s / useful.max(1.0);
        t2.row(vec![
            format!("{run_s:.0}"),
            runs.to_string(),
            g.kills.to_string(),
            format!("{:.0}", g.wasted_cpu_s),
            format!("{:.4}", frac),
            format!("{:.0}", g.campaign_done_at.as_secs_f64()),
        ]);
        csv.push_str(&format!(
            "{run_s},{runs},{},{:.2},{:.6},{:.2}\n",
            g.kills,
            g.wasted_cpu_s,
            frac,
            g.campaign_done_at.as_secs_f64()
        ));
    }
    t2.print();
    write_csv("ciment.csv", &csv);
    println!("\npaper shape check: small runs ⇒ negligible wasted fraction; very long runs ⇒ kills start to cost.");

    // §5.2's second vision: decentralized load exchange between the local
    // queues, compared on a lopsided sequential workload (one community
    // floods its own cluster while the others idle).
    println!("\ndecentralized vision — load exchange between the CIMENT clusters:");
    let platform = presets::ciment();
    let mk_subs = || -> Vec<(usize, Job)> {
        use lsps_workload::{ArrivalSpec, DistSpec, WorkloadSpec};
        let rng = SimRng::seed_from(17);
        let mut subs = Vec::new();
        // A physics campaign deadline: 500 sequential jobs dumped on the
        // 96-CPU Xeon cluster at once — the flooding §5.2 worries about.
        let flood = WorkloadSpec {
            n_jobs: 500,
            arrival: ArrivalSpec::AllAtZero,
            work_s: DistSpec::LogUniform(3_600.0, 86_400.0),
            parallel_fraction: 0.0,
            models: vec![],
            max_procs_frac: (0.0, 0.0),
            weight: DistSpec::Fixed(1.0),
            user: UserId(1),
        };
        for (i, mut j) in flood
            .generate(96, &mut rng.child(0))
            .into_iter()
            .enumerate()
        {
            j.id = lsps_workload::JobId(i as u64);
            subs.push((1usize, j));
        }
        // Light debug load on the Athlon cluster.
        let light = CommunityProfile::ComputerScience
            .spec(40)
            .generate(80, &mut rng.child(1));
        for (i, mut j) in light.into_iter().enumerate() {
            j.id = lsps_workload::JobId(1_000 + i as u64);
            j.kind = lsps_workload::JobKind::Rigid {
                procs: 1,
                len: j.seq_time(),
            };
            j.user = UserId(2);
            subs.push((2usize, j));
        }
        subs
    };
    let mut t3 = Table::new(&[
        "strategy",
        "migrations",
        "mean flow (s)",
        "max flow (s)",
        "fairness (Jain)",
    ]);
    let mut csv3 = String::from("strategy,migrations,mean_flow,max_flow,fairness\n");
    for (name, params) in [
        (
            "isolated",
            ExchangeParams {
                enabled: false,
                ..Default::default()
            },
        ),
        (
            "threshold",
            ExchangeParams {
                period: Dur::from_secs(120),
                strategy: ExchangeStrategy::Threshold,
                ..Default::default()
            },
        ),
        (
            "auction",
            ExchangeParams {
                period: Dur::from_secs(120),
                strategy: ExchangeStrategy::Auction,
                ..Default::default()
            },
        ),
    ] {
        let report = run_exchange(&platform, mk_subs(), params);
        let flows: Vec<f64> = per_user(&report.records)
            .iter()
            .map(|r| r.mean_flow.max(1e-9))
            .collect();
        let fairness = jain_index(&flows);
        t3.row(vec![
            name.into(),
            report.migrations.to_string(),
            format!("{:.0}", report.overall.mean_flow),
            format!("{:.0}", report.overall.max_flow),
            format!("{:.3}", fairness),
        ]);
        csv3.push_str(&format!(
            "{name},{},{:.2},{:.2},{:.4}\n",
            report.migrations, report.overall.mean_flow, report.overall.max_flow, fairness
        ));
    }
    t3.print();
    write_csv("ciment_exchange.csv", &csv3);
    println!("\nreading: exchanging work cuts the flooded community's flow times; the\nauction rule migrates only when the move pays for its WAN cost.");
}
