//! The record every scheduler produces per job.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};
use lsps_workload::{Job, JobId, UserId};

/// Outcome of one job in a finished schedule or simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// Job identifier.
    pub id: JobId,
    /// Release (submission) date `ri`.
    pub release: Time,
    /// Start of execution `σ(i)`.
    pub start: Time,
    /// Completion time `Ci`.
    pub completion: Time,
    /// Processors used (allotment size).
    pub procs: usize,
    /// Weight ωi.
    pub weight: f64,
    /// Due date, if any.
    pub due: Option<Time>,
    /// Sequential processing time `pi(1)` (normalizes stretch).
    pub seq_time: Dur,
    /// Owning user/community.
    pub user: UserId,
}

impl CompletedJob {
    /// Build the record for `job` executed on `procs` processors during
    /// `[start, completion)`.
    pub fn from_job(job: &Job, start: Time, completion: Time, procs: usize) -> CompletedJob {
        assert!(start >= job.release, "{}: started before release", job.id);
        assert!(completion >= start, "{}: completed before start", job.id);
        CompletedJob {
            id: job.id,
            release: job.release,
            start,
            completion,
            procs,
            weight: job.weight,
            due: job.due,
            seq_time: job.seq_time(),
            user: job.user,
        }
    }

    /// Flow time `Ci − ri` — the paper's per-job *stretch*.
    pub fn flow(&self) -> Dur {
        self.completion - self.release
    }

    /// Waiting time `σ(i) − ri`.
    pub fn wait(&self) -> Dur {
        self.start - self.release
    }

    /// Execution time `Ci − σ(i)`.
    pub fn run(&self) -> Dur {
        self.completion - self.start
    }

    /// Normalized stretch (slowdown): flow divided by sequential time.
    /// At least the parallel efficiency gain, ≥ 0; 1.0 means "as if alone
    /// on one processor".
    pub fn slowdown(&self) -> f64 {
        let seq = self.seq_time.ticks().max(1);
        self.flow().ticks() as f64 / seq as f64
    }

    /// Tardiness `max(0, Ci − di)`; zero when no due date.
    pub fn tardiness(&self) -> Dur {
        match self.due {
            Some(d) => self.completion.saturating_sub(d),
            None => Dur::ZERO,
        }
    }

    /// True iff the job finished after its due date.
    pub fn is_late(&self) -> bool {
        self.due.is_some_and(|d| self.completion > d)
    }

    /// Work area `procs × run`.
    pub fn area(&self) -> Dur {
        self.run().saturating_mul(self.procs as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    fn record() -> CompletedJob {
        let job = lsps_workload::Job::rigid(1, 4, Dur::from_ticks(50))
            .released_at(t(10))
            .with_due(t(100))
            .with_weight(2.0);
        CompletedJob::from_job(&job, t(30), t(80), 4)
    }

    #[test]
    fn derived_quantities() {
        let c = record();
        assert_eq!(c.flow(), Dur::from_ticks(70));
        assert_eq!(c.wait(), Dur::from_ticks(20));
        assert_eq!(c.run(), Dur::from_ticks(50));
        assert_eq!(c.area(), Dur::from_ticks(200));
        // seq_time of the 4-proc rigid job is 200 ticks: slowdown 70/200.
        assert!((c.slowdown() - 0.35).abs() < 1e-12);
        assert_eq!(c.tardiness(), Dur::ZERO);
        assert!(!c.is_late());
    }

    #[test]
    fn tardiness_when_late() {
        let mut c = record();
        c.completion = t(130);
        assert!(c.is_late());
        assert_eq!(c.tardiness(), Dur::from_ticks(30));
        c.due = None;
        assert!(!c.is_late());
        assert_eq!(c.tardiness(), Dur::ZERO);
    }

    #[test]
    #[should_panic]
    fn start_before_release_rejected() {
        let job = lsps_workload::Job::sequential(1, Dur::from_ticks(5)).released_at(t(10));
        CompletedJob::from_job(&job, t(5), t(10), 1);
    }
}
