//! Integration tests of the §2.2 / §4.2 / §5.1 extensions: malleable DEQ,
//! non-clairvoyant trials, reservation-aligned batches — across crates.

use lsps::core::batch::batch_online_avoiding;
use lsps::core::malleable::deq_schedule;
use lsps::core::nonclairvoyant::exponential_trial_schedule;
use lsps::prelude::*;

fn linear_malleable(id: u64, seq_ticks: u64, kmax: usize) -> Job {
    let profile =
        MoldableProfile::from_model(Dur::from_ticks(seq_ticks), &SpeedupModel::Linear, kmax);
    Job {
        kind: JobKind::Malleable { profile },
        ..Job::sequential(id, Dur::from_ticks(seq_ticks))
    }
}

#[test]
fn malleability_ladder_on_makespan() {
    // The §2.2 ladder on a work-conserving instance: malleable (DEQ)
    // ≤ moldable (MRT) ≤ fixed sequential, for makespan on linear jobs.
    let m = 16;
    let mut rng = SimRng::seed_from(2);
    let jobs: Vec<Job> = (0..10)
        .map(|i| linear_malleable(i, rng.int_range(500, 3_000), m))
        .collect();

    let deq = deq_schedule(&jobs, m);
    assert_eq!(deq.validate(&jobs), Ok(()));
    let mrt = mrt_schedule(&jobs, m, MrtParams::default());
    assert_eq!(mrt.validate(&jobs), Ok(()));
    let seq = lsps::core::allot::two_phase_moldable(
        &jobs,
        m,
        lsps::core::allot::AllotRule::Sequential,
        JobOrder::Lpt,
    );

    // DEQ is work-conserving on linear profiles: its makespan is within
    // rounding of the area bound, which nothing can beat.
    let lb = cmax_lower_bound(&jobs, m);
    let deq_mk = deq.makespan().ticks() as f64;
    assert!(
        deq_mk <= lb.ticks() as f64 * 1.02 + 16.0,
        "DEQ ≈ area bound"
    );
    assert!(deq.makespan() <= mrt.makespan());
    assert!(mrt.makespan() <= seq.makespan());
}

#[test]
fn nonclairvoyance_price_is_bounded() {
    // Same workload scheduled with known vs unknown runtimes: the trial
    // overhead must stay within the geometric-series factor.
    let m = 8;
    let mut rng = SimRng::seed_from(9);
    let jobs: Vec<Job> = (0..40)
        .map(|i| {
            Job::rigid(
                i,
                rng.int_range(1, 4) as usize,
                Dur::from_ticks(rng.int_range(20, 3_000)),
            )
        })
        .collect();
    let clairvoyant = backfill_schedule(&jobs, m, &[], BackfillPolicy::Conservative);
    let (blind, stats) = exponential_trial_schedule(&jobs, m, Dur::from_ticks(16));
    assert_eq!(blind.validate(&jobs), Ok(()));
    assert!(stats.kills > 0);
    let ratio = blind.makespan().ticks() as f64 / clairvoyant.makespan().ticks() as f64;
    assert!(
        ratio <= 4.0,
        "non-clairvoyant vs clairvoyant ratio {ratio} beyond the constant factor"
    );
}

#[test]
fn aligned_batches_price_reservations_as_predicted() {
    // §5.1: aligning batch boundaries with reservations "would likely be
    // inefficient" — quantified against reservation-aware backfilling.
    let resv = [Reservation {
        start: Time::from_secs(100),
        end: Time::from_secs(200),
        procs: 8,
    }];
    let mut rng = SimRng::seed_from(4);
    let jobs: Vec<Job> = (0..30)
        .map(|i| {
            Job::rigid(
                i,
                rng.int_range(1, 4) as usize,
                Dur::from_secs(rng.int_range(5, 60)),
            )
            .released_at(Time::from_secs(rng.int_range(0, 150)))
        })
        .collect();
    let aligned =
        batch_online_avoiding(&jobs, 8, &resv, |b, m| list_schedule(b, m, JobOrder::Fcfs));
    assert_eq!(aligned.validate(&jobs), Ok(()));
    let backfilled = backfill_schedule(&jobs, 8, &resv, BackfillPolicy::Conservative);
    assert!(
        backfilled.makespan() <= aligned.makespan(),
        "backfilling must beat blackout-aligned batches"
    );
    // And the blackout really is avoided.
    for a in aligned.assignments() {
        assert!(a.end <= Time::from_secs(100) || a.start >= Time::from_secs(200));
    }
}

#[test]
fn deq_flow_beats_batching_under_staggered_arrivals() {
    let m = 32;
    let mut rng = SimRng::seed_from(8);
    let jobs: Vec<Job> = (0..20)
        .map(|i| {
            linear_malleable(i, rng.int_range(1_000, 5_000), m)
                .released_at(Time::from_ticks(i * 300))
        })
        .collect();
    let deq = deq_schedule(&jobs, m);
    assert_eq!(deq.validate(&jobs), Ok(()));
    let deq_flow = Criteria::evaluate(&deq.completed(&jobs)).mean_flow;
    let batch = batch_online(&jobs, m, |b, mm| mrt_schedule(b, mm, MrtParams::default()));
    let batch_flow = Criteria::evaluate(&batch.completed(&jobs)).mean_flow;
    assert!(deq_flow <= batch_flow);
}
