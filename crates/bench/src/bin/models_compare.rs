//! TAB-P — "which policy for which application?", quantified.
//!
//! The paper's thesis is that the right policy depends on the application
//! class and the criterion. This binary crosses four workload classes with
//! five PT policies on the Fig. 2 machine (m = 100) plus the DLT policies
//! for the campaign class, reports every §3 criterion, and checks the
//! [`lsps_core::advisor`] recommendation against the measured winner.

use lsps_bench::{write_csv, Table};
use lsps_core::advisor::{advise, Application, Objective, PolicyChoice};
use lsps_core::allot::{two_phase_moldable, AllotRule};
use lsps_core::backfill::{backfill_schedule, BackfillPolicy};
use lsps_core::batch::batch_online;
use lsps_core::bicriteria::{bicriteria_schedule, BiCriteriaParams};
use lsps_core::list::{list_schedule, JobOrder};
use lsps_core::mrt::{mrt_schedule, MrtParams};
use lsps_core::schedule::Schedule;
use lsps_core::smart::smart_schedule;
use lsps_des::{Dur, SimRng, Time};
use lsps_metrics::{cmax_lower_bound, wsum_lower_bound, Criteria};
use lsps_workload::{Job, JobKind, MoldableProfile, SpeedupModel, WorkloadSpec};

const M: usize = 100;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wl {
    SequentialBag,
    Rigid,
    Moldable,
}

fn workload(class: Wl, n: usize, seed: u64) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    match class {
        Wl::SequentialBag => WorkloadSpec::fig2_sequential(n).generate(M, &mut rng),
        Wl::Moldable => WorkloadSpec::fig2_parallel(n).generate(M, &mut rng),
        Wl::Rigid => {
            // Rigidified moldable mix: a realistic rigid trace.
            WorkloadSpec::fig2_parallel(n)
                .generate(M, &mut rng)
                .into_iter()
                .map(|j| match &j.kind {
                    JobKind::Moldable { profile } => {
                        let k = (profile.max_procs() / 2).max(1);
                        let len = profile.time(k);
                        Job {
                            kind: JobKind::Rigid { procs: k, len },
                            ..j
                        }
                    }
                    _ => j,
                })
                .collect()
        }
    }
}

/// Strip release dates (for the off-line-only policies) — documented as
/// giving those policies an *advantage*; they still lose where the paper
/// says they should.
fn zero_released(jobs: &[Job]) -> Vec<Job> {
    jobs.iter()
        .map(|j| {
            let mut j = j.clone();
            j.release = Time::ZERO;
            j
        })
        .collect()
}

fn moldable_to_rigid_for_backfill(jobs: &[Job]) -> Vec<Job> {
    jobs.iter()
        .map(|j| match &j.kind {
            JobKind::Moldable { profile } => {
                let k = lsps_core::allot::choose_allotment(
                    j,
                    M,
                    jobs.len(),
                    AllotRule::Balanced,
                );
                Job {
                    kind: JobKind::Rigid {
                        procs: k,
                        len: profile.time(k),
                    },
                    ..j.clone()
                }
            }
            _ => j.clone(),
        })
        .collect()
}

fn run_policy(policy: PolicyChoice, jobs: &[Job]) -> Option<(Schedule, Vec<Job>)> {
    match policy {
        PolicyChoice::WsptList => {
            let rigid = moldable_to_rigid_for_backfill(jobs);
            Some((list_schedule(&rigid, M, JobOrder::WeightDensity), rigid))
        }
        PolicyChoice::Backfilling => {
            let rigid = moldable_to_rigid_for_backfill(jobs);
            Some((
                backfill_schedule(&rigid, M, &[], BackfillPolicy::Easy),
                rigid,
            ))
        }
        PolicyChoice::SmartShelves => {
            let rigid = zero_released(&moldable_to_rigid_for_backfill(jobs));
            Some((smart_schedule(&rigid, M, true), rigid))
        }
        PolicyChoice::MrtBatch => Some((
            batch_online(jobs, M, |b, m| mrt_schedule(b, m, MrtParams::default())),
            jobs.to_vec(),
        )),
        PolicyChoice::BiCriteriaBatches => Some((
            bicriteria_schedule(jobs, M, BiCriteriaParams::default()),
            jobs.to_vec(),
        )),
        _ => None,
    }
}

fn main() {
    println!("TAB-P — policy × workload matrix on m = {M} (ratios vs lower bounds)\n");
    let policies = [
        PolicyChoice::WsptList,
        PolicyChoice::Backfilling,
        PolicyChoice::SmartShelves,
        PolicyChoice::MrtBatch,
        PolicyChoice::BiCriteriaBatches,
    ];
    let classes = [Wl::SequentialBag, Wl::Rigid, Wl::Moldable];
    let n = 400;

    let mut table = Table::new(&[
        "mode", "workload", "policy", "Cmax ratio", "sWC ratio", "mean flow (s)", "max flow (s)",
        "util %",
    ]);
    let mut csv = String::from(
        "mode,workload,policy,cmax_ratio,wsum_ratio,mean_flow,max_flow,utilization\n",
    );
    // (mode, class, cmax winner, wsum winner)
    let mut winners: Vec<(&str, Wl, PolicyChoice, PolicyChoice)> = Vec::new();

    for mode in ["off-line", "on-line"] {
        for &class in &classes {
            let jobs = {
                let js = workload(class, n, 7);
                if mode == "off-line" { zero_released(&js) } else { js }
            };
            let mut best_cmax: Option<(f64, PolicyChoice)> = None;
            let mut best_wsum: Option<(f64, PolicyChoice)> = None;
            for &policy in &policies {
                let Some((sched, eval_jobs)) = run_policy(policy, &jobs) else {
                    continue;
                };
                sched
                    .validate(&eval_jobs)
                    .unwrap_or_else(|e| panic!("{policy:?} on {class:?}: {e}"));
                // Bounds computed on the jobs the policy actually scheduled
                // (SMART strips release dates even in on-line mode; its
                // release-free instance has its own — smaller — bounds).
                let cmax_lb = cmax_lower_bound(&eval_jobs, M).as_secs_f64();
                let wsum_lb = wsum_lower_bound(&eval_jobs, M);
                let crit = Criteria::evaluate(&sched.completed(&eval_jobs));
                let cr = crit.cmax / cmax_lb;
                let wr = crit.weighted_sum_completion / wsum_lb;
                if best_cmax.is_none_or(|(v, _)| cr < v) {
                    best_cmax = Some((cr, policy));
                }
                if best_wsum.is_none_or(|(v, _)| wr < v) {
                    best_wsum = Some((wr, policy));
                }
                table.row(vec![
                    mode.into(),
                    format!("{class:?}"),
                    format!("{policy:?}"),
                    format!("{cr:.3}"),
                    format!("{wr:.3}"),
                    format!("{:.1}", crit.mean_flow),
                    format!("{:.1}", crit.max_flow),
                    format!("{:.1}", crit.utilization(M) * 100.0),
                ]);
                csv.push_str(&format!(
                    "{mode},{class:?},{policy:?},{cr:.6},{wr:.6},{:.3},{:.3},{:.5}\n",
                    crit.mean_flow,
                    crit.max_flow,
                    crit.utilization(M)
                ));
            }
            winners.push((
                mode,
                class,
                best_cmax.expect("some policy ran").1,
                best_wsum.expect("some policy ran").1,
            ));
        }
    }
    table.print();
    write_csv("models_compare.csv", &csv);

    println!("\nmeasured winners vs advisor recommendations:");
    println!("(the advisor optimizes worst-case guarantees; on random instances the");
    println!(" greedy policies are competitive — the paper's own pragmatic point)");
    let mut t2 = Table::new(&[
        "mode", "workload", "criterion", "measured best", "advisor says", "guarantee",
    ]);
    for (mode, class, cmax_win, wsum_win) in winners {
        let app = match class {
            Wl::SequentialBag => Application::SequentialBag,
            Wl::Rigid => Application::RigidParallel,
            Wl::Moldable => Application::Moldable,
        };
        let on_line = mode == "on-line";
        let rec_c = advise(app, Objective::Makespan, on_line);
        let rec_w = advise(app, Objective::WeightedCompletion, on_line);
        t2.row(vec![
            mode.into(),
            format!("{class:?}"),
            "Cmax".into(),
            format!("{cmax_win:?}"),
            format!("{:?}", rec_c.policy),
            rec_c
                .guarantee
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
        t2.row(vec![
            mode.into(),
            format!("{class:?}"),
            "sum wC".into(),
            format!("{wsum_win:?}"),
            format!("{:?}", rec_w.policy),
            rec_w
                .guarantee
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t2.print();

    // Campaign class: DLT policies (the PT policies would schedule 10^5
    // unit jobs; DLT treats them as one divisible load — the paper's §5.2
    // point).
    println!("\ncampaign class (divisible): see dlt_policies; steady-state is the advisor pick:");
    let rec = advise(Application::DivisibleLoad, Objective::Throughput, true);
    println!(
        "  advisor: {:?} — {}",
        rec.policy, rec.rationale
    );

    // Quantified §5.1 remark: mixed strategies.
    println!("\nmixed rigid+moldable strategies (§5.1), Cmax ratio:");
    let mut rng = SimRng::seed_from(11);
    let mixed: Vec<Job> = (0..n)
        .map(|i| {
            let seq = Dur::from_ticks(rng.int_range(1_000, 300_000));
            if rng.chance(0.4) {
                Job::rigid(i as u64, rng.int_range(1, 40) as usize, seq)
            } else {
                Job::moldable(
                    i as u64,
                    MoldableProfile::from_model(
                        seq,
                        &SpeedupModel::Amdahl {
                            seq_fraction: rng.range(0.0, 0.2),
                        },
                        rng.int_range(1, M as u64) as usize,
                    ),
                )
            }
        })
        .collect();
    let lb = cmax_lower_bound(&mixed, M).as_secs_f64();
    let mut t3 = Table::new(&["strategy", "Cmax ratio"]);
    for strategy in [
        lsps_core::mixed::MixedStrategy::SeparatePhases,
        lsps_core::mixed::MixedStrategy::PreallocateThenRigid,
        lsps_core::mixed::MixedStrategy::RigidIntoBatches,
    ] {
        let s = lsps_core::mixed::mixed_schedule(&mixed, M, strategy);
        s.validate(&mixed).expect("valid");
        t3.row(vec![
            format!("{strategy:?}"),
            format!("{:.3}", s.makespan().as_secs_f64() / lb),
        ]);
    }
    t3.print();

    // Two-phase allotment ablation (DESIGN.md §5).
    println!("\nmoldable allotment-rule ablation (two-phase, Cmax ratio):");
    let moldable = workload(Wl::Moldable, n, 13);
    let zero = zero_released(&moldable);
    let lb = cmax_lower_bound(&zero, M).as_secs_f64();
    let mut t4 = Table::new(&["allot rule", "Cmax ratio"]);
    for rule in [AllotRule::Sequential, AllotRule::MinTime, AllotRule::Balanced] {
        let s = two_phase_moldable(&zero, M, rule, JobOrder::Lpt);
        s.validate(&zero).expect("valid");
        t4.row(vec![
            format!("{rule:?}"),
            format!("{:.3}", s.makespan().as_secs_f64() / lb),
        ]);
    }
    let s = mrt_schedule(&zero, M, MrtParams::default());
    s.validate(&zero).expect("valid");
    t4.row(vec![
        "MRT knapsack".into(),
        format!("{:.3}", s.makespan().as_secs_f64() / lb),
    ]);
    t4.print();
}
