//! The `lsps-campaignd` state machine: campaign submission, the spec
//! journal, cache probing, least-loaded sharding over supervised worker
//! processes, and the HTTP query API.
//!
//! ## Lifecycle of a campaign
//!
//! `POST /campaigns` parses and expands the spec through
//! [`CampaignPlan::expand`] (rejecting invalid specs synchronously), then
//! derives the campaign id from the FNV-64 hash of the *canonical* spec
//! JSON — resubmitting the same spec (any key order) is idempotent. The
//! canonical JSON is journaled to `journal_dir/<id>.json` before the
//! submission returns, so a daemon restart replays every accepted
//! campaign. Each cell is probed against the content-addressed cell cache
//! (`Cached` on hit) and the misses are queued.
//!
//! ## Sharding and supervision
//!
//! Queued cells are dispatched to the least-loaded live worker, ties
//! broken by the cell's *home slot* — `fnv64(cache key) % workers` — so
//! equal-load assignment is deterministic and sticky by content. Each
//! worker holds at most [`INFLIGHT_CAP`] outstanding cells. A supervisor
//! thread ticks every ~50 ms: a worker with outstanding work but no
//! activity past the per-cell timeout is killed; dead workers have their
//! in-flight cells requeued (up to [`DaemonConfig::max_attempts`], then
//! `Failed`) and are respawned with a clean environment. Fresh results
//! are stored back into the cell cache, which is what makes restart
//! resume free: the replayed campaign finds every completed cell already
//! cached.
//!
//! Completed campaigns serve `GET /campaigns/{id}/aggregate` (and
//! `.../raw`, the per-cell rows) with the exact bytes
//! [`lsps_scenario::run_campaign`] would produce: cells come back from
//! workers through the lossless JSON round-trip and are reassembled in
//! canonical plan order before aggregation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsps_scenario::cache::CellCache;
use lsps_scenario::campaign::aggregate_csv;
use lsps_scenario::runner::to_csv;
use lsps_scenario::spec::fnv64;
use lsps_scenario::{write_file_atomic, CampaignOptions, CampaignPlan, Cell};
use serde::Value;

use crate::http::{read_request, respond, Request};
use crate::protocol::{FromWorker, ToWorker};

/// Maximum cells outstanding per worker process: enough to hide dispatch
/// latency, small enough that a worker death costs little rework.
pub const INFLIGHT_CAP: usize = 2;

/// Everything the daemon needs to run.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Worker-process count.
    pub workers: usize,
    /// A worker with outstanding cells but no completions for this long is
    /// considered wedged, killed, and its cells reassigned.
    pub cell_timeout: Duration,
    /// Dispatch attempts per cell before it is marked `Failed`.
    pub max_attempts: usize,
    /// Content-addressed cell cache directory (shared with
    /// `lsps-campaign`).
    pub cache_dir: PathBuf,
    /// Spec journal directory; replayed on startup.
    pub journal_dir: PathBuf,
    /// Directory relative trace paths resolve against.
    pub base_dir: Option<PathBuf>,
    /// Path to the `lsps-worker` binary.
    pub worker_cmd: PathBuf,
    /// Extra environment for *first-generation* workers only — the
    /// fault-injection hook. Respawned workers always run clean.
    pub worker_env: Vec<(String, String)>,
}

impl DaemonConfig {
    /// Defaults for a daemon driving `worker_cmd`.
    pub fn new(worker_cmd: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            workers: 2,
            cell_timeout: Duration::from_secs(120),
            max_attempts: 3,
            cache_dir: PathBuf::from("results/cache"),
            journal_dir: PathBuf::from("results/journal"),
            base_dir: None,
            worker_cmd: worker_cmd.into(),
            worker_env: Vec::new(),
        }
    }
}

/// Where one cell of a tracked campaign stands.
#[derive(Clone, Debug, PartialEq)]
enum CellState {
    /// Waiting for a worker slot.
    Queued,
    /// Dispatched to worker `worker`.
    Running {
        /// Worker slot index the cell was dispatched to.
        worker: usize,
    },
    /// Served from the cell cache at submission.
    Cached,
    /// Computed by a worker this run.
    Done,
    /// Exhausted its attempts.
    Failed,
}

/// One tracked campaign.
struct CampaignState {
    plan: CampaignPlan,
    states: Vec<CellState>,
    results: Vec<Option<Cell>>,
    attempts: Vec<usize>,
    /// First failure rendering, for the aggregate endpoint's error body.
    error: Option<String>,
}

impl CampaignState {
    /// (queued, running, cached, done, failed) counts.
    fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for s in &self.states {
            match s {
                CellState::Queued => c.0 += 1,
                CellState::Running { .. } => c.1 += 1,
                CellState::Cached => c.2 += 1,
                CellState::Done => c.3 += 1,
                CellState::Failed => c.4 += 1,
            }
        }
        c
    }

    /// No cell is queued or running.
    fn complete(&self) -> bool {
        !self
            .states
            .iter()
            .any(|s| matches!(s, CellState::Queued | CellState::Running { .. }))
    }
}

/// One supervised worker process.
struct WorkerSlot {
    child: Child,
    stdin: ChildStdin,
    /// Monotonic spawn counter; reader threads tag messages with the
    /// generation they were spawned for, so a stale reader can never
    /// mutate the slot's replacement.
    generation: u64,
    /// `(campaign id, cell index)` dispatched and not yet answered.
    inflight: Vec<(String, usize)>,
    /// Campaign ids already `Load`ed into this process.
    loaded: HashSet<String>,
    /// Last dispatch or completion; staleness past the cell timeout with
    /// a non-empty `inflight` means the worker is wedged.
    last_activity: Instant,
    /// Set once the worker is known lost; the supervisor respawns it.
    dead: bool,
}

struct Shared {
    campaigns: HashMap<String, CampaignState>,
    /// `None` until the initial spawn; `Some` thereafter (dead or alive).
    workers: Vec<Option<WorkerSlot>>,
    /// Queued `(campaign id, cell index)` in dispatch order.
    queue: VecDeque<(String, usize)>,
    /// Next worker generation.
    next_gen: u64,
    /// Set by [`Daemon::shutdown`]; readers stop requeueing.
    stopping: bool,
}

/// The campaign service. Cheap to share: all state lives behind one
/// mutex, and every public method locks internally.
pub struct Daemon {
    cfg: DaemonConfig,
    cache: CellCache,
    shared: Mutex<Shared>,
    stop: AtomicBool,
}

impl Daemon {
    /// Build the service: create the cache and journal directories, spawn
    /// the worker fleet, replay the journal, start the supervisor.
    pub fn start(cfg: DaemonConfig) -> io::Result<Arc<Daemon>> {
        assert!(cfg.workers > 0, "daemon needs at least one worker");
        let cache = CellCache::new(&cfg.cache_dir)?;
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let daemon = Arc::new(Daemon {
            shared: Mutex::new(Shared {
                campaigns: HashMap::new(),
                workers: (0..cfg.workers).map(|_| None).collect(),
                queue: VecDeque::new(),
                next_gen: 0,
                stopping: false,
            }),
            cache,
            cfg,
            stop: AtomicBool::new(false),
        });
        {
            let mut sh = daemon.shared.lock().expect("daemon state");
            for w in 0..daemon.cfg.workers {
                daemon.spawn_worker(&mut sh, w, true)?;
            }
        }
        daemon.replay_journal();
        let sup = Arc::clone(&daemon);
        std::thread::spawn(move || sup.supervise());
        Ok(daemon)
    }

    /// Re-submit every journaled spec (sorted for a deterministic replay
    /// order); completed campaigns resume entirely from the cache.
    fn replay_journal(self: &Arc<Daemon>) {
        let mut names = lsps_scenario::list_file_names(&self.cfg.journal_dir);
        names.sort();
        for name in names.iter().filter(|n| n.ends_with(".json")) {
            let path = self.cfg.journal_dir.join(name);
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    if let Err(e) = self.submit(&text) {
                        eprintln!("[campaignd] journal {name}: {e}");
                    }
                }
                Err(e) => eprintln!("[campaignd] journal {name}: {e}"),
            }
        }
    }

    /// Accept a campaign spec (JSON text). Returns the campaign id;
    /// resubmitting an equivalent spec returns the existing id without
    /// touching its state.
    pub fn submit(&self, spec_text: &str) -> Result<String, String> {
        let spec: lsps_scenario::CampaignSpec =
            serde_json::from_str(spec_text).map_err(|e| format!("spec: {e}"))?;
        let opts = CampaignOptions {
            cache_dir: None,
            threads: 1,
            base_dir: self.cfg.base_dir.clone(),
        };
        let plan = CampaignPlan::expand(&spec, &opts).map_err(|e| e.to_string())?;
        let canonical = plan.canonical_spec_json();
        let id = format!("{:016x}", fnv64(canonical.as_bytes()));
        let mut sh = self.shared.lock().expect("daemon state");
        if sh.campaigns.contains_key(&id) {
            return Ok(id);
        }
        let n = plan.cells().len();
        let mut states = Vec::with_capacity(n);
        let mut results = Vec::with_capacity(n);
        for cell in plan.cells() {
            match self.cache.load(&cell.key) {
                Some(data) => {
                    states.push(CellState::Cached);
                    results.push(Some(data));
                }
                None => {
                    states.push(CellState::Queued);
                    results.push(None);
                }
            }
        }
        for (i, s) in states.iter().enumerate() {
            if *s == CellState::Queued {
                sh.queue.push_back((id.clone(), i));
            }
        }
        sh.campaigns.insert(
            id.clone(),
            CampaignState {
                plan,
                states,
                results,
                attempts: vec![0; n],
                error: None,
            },
        );
        write_file_atomic(&self.cfg.journal_dir, &format!("{id}.json"), &canonical);
        self.dispatch(&mut sh);
        Ok(id)
    }

    /// Spawn (or respawn) the worker in slot `widx` and its reader thread.
    /// `first` spawns apply [`DaemonConfig::worker_env`].
    fn spawn_worker(
        self: &Arc<Daemon>,
        sh: &mut Shared,
        widx: usize,
        first: bool,
    ) -> io::Result<()> {
        let mut cmd = Command::new(&self.cfg.worker_cmd);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if first {
            for (k, v) in &self.cfg.worker_env {
                cmd.env(k, v);
            }
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let generation = sh.next_gen;
        sh.next_gen += 1;
        sh.workers[widx] = Some(WorkerSlot {
            child,
            stdin,
            generation,
            inflight: Vec::new(),
            loaded: HashSet::new(),
            last_activity: Instant::now(),
            dead: false,
        });
        let daemon = Arc::clone(self);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<FromWorker>(&line) {
                    Ok(msg) => daemon.on_worker_msg(widx, generation, msg),
                    Err(e) => eprintln!("[campaignd] worker {widx}: unparseable reply: {e}"),
                }
            }
            // EOF: the process exited (crash, kill, or shutdown).
            let mut sh = daemon.shared.lock().expect("daemon state");
            daemon.fail_worker(&mut sh, widx, generation);
        });
        Ok(())
    }

    /// Mark the worker lost and requeue its in-flight cells. Idempotent
    /// per generation — the timeout path and the reader's EOF path can
    /// both call it.
    fn fail_worker(&self, sh: &mut Shared, widx: usize, generation: u64) {
        if sh.stopping {
            return;
        }
        let Some(slot) = sh.workers[widx].as_mut() else {
            return;
        };
        if slot.generation != generation || slot.dead {
            return;
        }
        slot.dead = true;
        let _ = slot.child.kill();
        let inflight = std::mem::take(&mut slot.inflight);
        for (cid, cell) in inflight {
            let Some(camp) = sh.campaigns.get_mut(&cid) else {
                continue;
            };
            camp.attempts[cell] += 1;
            if camp.attempts[cell] >= self.cfg.max_attempts {
                camp.states[cell] = CellState::Failed;
                camp.error
                    .get_or_insert_with(|| format!("cell {cell}: worker died repeatedly"));
            } else {
                camp.states[cell] = CellState::Queued;
                sh.queue.push_back((cid.clone(), cell));
            }
        }
    }

    /// One reply from worker `widx` (generation-tagged; stale readers are
    /// ignored).
    fn on_worker_msg(&self, widx: usize, generation: u64, msg: FromWorker) {
        let mut sh = self.shared.lock().expect("daemon state");
        {
            let Some(slot) = sh.workers[widx].as_mut() else {
                return;
            };
            if slot.generation != generation || slot.dead {
                return;
            }
            slot.last_activity = Instant::now();
        }
        match msg {
            FromWorker::Loaded { id, cells } => {
                if let Some(camp) = sh.campaigns.get(&id) {
                    if camp.plan.cells().len() != cells {
                        eprintln!(
                            "[campaignd] worker {widx}: campaign {id} expanded to {cells} cells, daemon has {}",
                            camp.plan.cells().len()
                        );
                    }
                }
            }
            FromWorker::Done { id, cell, data } => {
                let slot = sh.workers[widx].as_mut().expect("checked above");
                slot.inflight.retain(|(c, i)| !(c == &id && *i == cell));
                if let Some(camp) = sh.campaigns.get_mut(&id) {
                    if matches!(camp.states[cell], CellState::Running { worker } if worker == widx)
                    {
                        self.cache.store(&camp.plan.cells()[cell].key, &data);
                        camp.results[cell] = Some(*data);
                        camp.states[cell] = CellState::Done;
                    }
                }
                self.dispatch(&mut sh);
            }
            FromWorker::Error { id, cell, error } => {
                match cell {
                    Some(cell) => {
                        let slot = sh.workers[widx].as_mut().expect("checked above");
                        slot.inflight.retain(|(c, i)| !(c == &id && *i == cell));
                        if let Some(camp) = sh.campaigns.get_mut(&id) {
                            camp.attempts[cell] += 1;
                            if camp.attempts[cell] >= self.cfg.max_attempts {
                                camp.states[cell] = CellState::Failed;
                                camp.error.get_or_insert(format!("cell {cell}: {error}"));
                            } else {
                                camp.states[cell] = CellState::Queued;
                                sh.queue.push_back((id, cell));
                            }
                        }
                    }
                    None => {
                        // Load failed: the worker cannot run *any* cell of
                        // this campaign (e.g. an unreadable trace file), and
                        // every worker shares the environment — fail the
                        // campaign outright rather than retry in a loop.
                        if let Some(camp) = sh.campaigns.get_mut(&id) {
                            camp.error.get_or_insert(format!("load: {error}"));
                            for s in camp.states.iter_mut() {
                                if matches!(*s, CellState::Queued | CellState::Running { .. }) {
                                    *s = CellState::Failed;
                                }
                            }
                        }
                        sh.queue.retain(|(c, _)| c != &id);
                        for slot in sh.workers.iter_mut().flatten() {
                            slot.inflight.retain(|(c, _)| c != &id);
                        }
                    }
                }
                self.dispatch(&mut sh);
            }
        }
    }

    /// Drain the queue onto available workers: least-loaded live slot
    /// wins, ties broken by the cell's home slot (`fnv64(key) % workers`)
    /// so assignment is deterministic and content-sticky.
    fn dispatch(&self, sh: &mut Shared) {
        while let Some((cid, cell)) = sh.queue.pop_front() {
            // Skip entries whose cell moved on (requeue dedup, load failure).
            let key = match sh.campaigns.get(&cid) {
                Some(camp) if camp.states[cell] == CellState::Queued => {
                    camp.plan.cells()[cell].key.clone()
                }
                _ => continue,
            };
            let n = sh.workers.len();
            let home = fnv64(key.as_bytes()) as usize % n;
            let mut target: Option<usize> = None;
            for off in 0..n {
                let w = (home + off) % n;
                let Some(slot) = sh.workers[w].as_ref() else {
                    continue;
                };
                if slot.dead || slot.inflight.len() >= INFLIGHT_CAP {
                    continue;
                }
                if target.is_none_or(|t| {
                    slot.inflight.len()
                        < sh.workers[t].as_ref().expect("live target").inflight.len()
                }) {
                    target = Some(w);
                }
            }
            let Some(w) = target else {
                // Every worker is saturated or down; put the cell back and
                // let the next completion or respawn drain it.
                sh.queue.push_front((cid, cell));
                break;
            };
            let load_msg = {
                let slot = sh.workers[w].as_ref().expect("live target");
                let camp = &sh.campaigns[&cid];
                (!slot.loaded.contains(&cid)).then(|| {
                    serde_json::to_string(&ToWorker::Load {
                        id: cid.clone(),
                        spec: camp.plan.spec().clone(),
                        base_dir: self
                            .cfg
                            .base_dir
                            .as_ref()
                            .map(|p| p.to_string_lossy().into_owned()),
                    })
                    .expect("requests serialize")
                })
            };
            let run_msg = serde_json::to_string(&ToWorker::Run {
                id: cid.clone(),
                cell,
            })
            .expect("requests serialize");
            let slot = sh.workers[w].as_mut().expect("live target");
            let generation = slot.generation;
            let mut write = || -> io::Result<()> {
                if let Some(m) = &load_msg {
                    writeln!(slot.stdin, "{m}")?;
                }
                writeln!(slot.stdin, "{run_msg}")?;
                slot.stdin.flush()
            };
            match write() {
                Ok(()) => {
                    slot.loaded.insert(cid.clone());
                    slot.inflight.push((cid.clone(), cell));
                    slot.last_activity = Instant::now();
                    let camp = sh.campaigns.get_mut(&cid).expect("campaign exists");
                    camp.states[cell] = CellState::Running { worker: w };
                }
                Err(_) => {
                    // Broken pipe: the worker is gone. Requeue this cell
                    // (it was never dispatched) and fail the slot.
                    sh.queue.push_front((cid, cell));
                    self.fail_worker(sh, w, generation);
                }
            }
        }
    }

    /// Supervisor loop: kill wedged workers, respawn dead ones, keep the
    /// queue draining. Exits on [`Daemon::shutdown`].
    fn supervise(self: Arc<Daemon>) {
        while !self.stop.load(Ordering::SeqCst) {
            {
                let mut sh = self.shared.lock().expect("daemon state");
                for w in 0..sh.workers.len() {
                    let wedged = sh.workers[w].as_ref().is_some_and(|s| {
                        !s.dead
                            && !s.inflight.is_empty()
                            && s.last_activity.elapsed() > self.cfg.cell_timeout
                    });
                    if wedged {
                        let generation = sh.workers[w].as_ref().expect("checked above").generation;
                        eprintln!(
                            "[campaignd] worker {w}: no progress past cell timeout, respawning"
                        );
                        self.fail_worker(&mut sh, w, generation);
                    }
                    let dead = sh.workers[w].as_mut().is_some_and(|s| {
                        if s.dead {
                            let _ = s.child.wait();
                        }
                        s.dead
                    });
                    if dead {
                        if let Err(e) = self.spawn_worker(&mut sh, w, false) {
                            eprintln!("[campaignd] worker {w}: respawn failed: {e}");
                        }
                    }
                }
                self.dispatch(&mut sh);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Progress of campaign `id` as a JSON object, or `None` if unknown.
    pub fn status_json(&self, id: &str) -> Option<String> {
        let sh = self.shared.lock().expect("daemon state");
        let camp = sh.campaigns.get(id)?;
        let (queued, running, cached, done, failed) = camp.counts();
        let v = Value::Map(vec![
            ("id".into(), Value::Str(id.into())),
            ("name".into(), Value::Str(camp.plan.spec().name.clone())),
            ("total".into(), Value::UInt(camp.states.len() as u64)),
            ("queued".into(), Value::UInt(queued as u64)),
            ("running".into(), Value::UInt(running as u64)),
            ("cached".into(), Value::UInt(cached as u64)),
            ("done".into(), Value::UInt(done as u64)),
            ("failed".into(), Value::UInt(failed as u64)),
            ("complete".into(), Value::Bool(camp.complete())),
        ]);
        Some(serde_json::to_string(&v).expect("status serializes"))
    }

    /// The campaign's CSVs, byte-identical to an in-process
    /// [`lsps_scenario::run_campaign`]: `Ok((raw, aggregate))` once every
    /// cell is accounted for, `Err((http status, message))` otherwise.
    pub fn csvs(&self, id: &str) -> Result<(String, String), (u16, String)> {
        let sh = self.shared.lock().expect("daemon state");
        let Some(camp) = sh.campaigns.get(id) else {
            return Err((404, format!("unknown campaign `{id}`\n")));
        };
        if !camp.complete() {
            let (queued, running, ..) = camp.counts();
            return Err((
                409,
                format!("campaign still running ({queued} queued, {running} running)\n"),
            ));
        }
        if let Some(err) = &camp.error {
            return Err((500, format!("campaign failed: {err}\n")));
        }
        let cells: Vec<Cell> = camp
            .results
            .iter()
            .map(|r| r.clone().expect("complete without failures"))
            .collect();
        Ok((to_csv(&cells), aggregate_csv(&cells)))
    }

    /// Serve the HTTP API on `listener` until [`Daemon::shutdown`]. One
    /// thread per connection; the listener polls so shutdown is prompt.
    pub fn serve(self: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = Arc::clone(self);
                    std::thread::spawn(move || daemon.handle_connection(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let req = match read_request(&mut stream) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    &format!("{e}\n"),
                );
                return;
            }
        };
        let _ = self.route(&mut stream, &req);
    }

    fn route(&self, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => respond(stream, 200, "OK", "text/plain", "ok\n"),
            ("POST", "/campaigns") => match self.submit(&req.body) {
                Ok(id) => {
                    let status = self.status_json(&id).expect("just submitted");
                    respond(stream, 202, "Accepted", "application/json", &status)
                }
                Err(e) => respond(stream, 400, "Bad Request", "text/plain", &format!("{e}\n")),
            },
            ("GET", path) => {
                let Some(rest) = path.strip_prefix("/campaigns/") else {
                    return respond(stream, 404, "Not Found", "text/plain", "not found\n");
                };
                let csv = if let Some(id) = rest.strip_suffix("/aggregate") {
                    Some((id, true))
                } else {
                    rest.strip_suffix("/raw").map(|id| (id, false))
                };
                if let Some((id, aggregate)) = csv {
                    match self.csvs(id) {
                        Ok((raw, agg)) => {
                            let body = if aggregate { &agg } else { &raw };
                            respond(stream, 200, "OK", "text/csv", body)
                        }
                        Err((status, msg)) => {
                            let reason = match status {
                                404 => "Not Found",
                                409 => "Conflict",
                                _ => "Internal Server Error",
                            };
                            respond(stream, status, reason, "text/plain", &msg)
                        }
                    }
                } else {
                    match self.status_json(rest) {
                        Some(json) => respond(stream, 200, "OK", "application/json", &json),
                        None => respond(
                            stream,
                            404,
                            "Not Found",
                            "text/plain",
                            &format!("unknown campaign `{rest}`\n"),
                        ),
                    }
                }
            }
            _ => respond(stream, 404, "Not Found", "text/plain", "not found\n"),
        }
    }

    /// Stop the supervisor and the accept loop, kill the worker fleet.
    /// The journal and cache survive — a new [`Daemon::start`] on the same
    /// directories resumes every campaign from cache.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut sh = self.shared.lock().expect("daemon state");
        sh.stopping = true;
        for slot in sh.workers.iter_mut().flatten() {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if !self.stop.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

/// Resolve a sibling binary of the current executable (`lsps-campaignd` →
/// `lsps-worker` in the same target directory), falling back to `name` on
/// `PATH`.
pub fn sibling_binary(name: &str) -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            let candidate = exe.parent()?.join(name);
            candidate.exists().then_some(candidate)
        })
        .unwrap_or_else(|| PathBuf::from(name))
}

/// Shared CLI default: the worker binary expected next to whichever
/// binary is running. Callers that can degrade gracefully (benches)
/// should check `is_file()` on the result before booting a daemon.
pub fn default_worker_cmd() -> PathBuf {
    sibling_binary(if cfg!(windows) {
        "lsps-worker.exe"
    } else {
        "lsps-worker"
    })
}

/// Spawn-side helper for tests and benches: a config pointed at temp
/// directories under `root`, with `worker_cmd` explicit.
pub fn config_under(root: &Path, worker_cmd: impl Into<PathBuf>) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(worker_cmd);
    cfg.cache_dir = root.join("cache");
    cfg.journal_dir = root.join("journal");
    cfg
}
