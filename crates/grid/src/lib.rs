//! # lsps-grid — light-grid resource management (§5 of the paper)
//!
//! The paper's §5.2 describes two ways of linking the clusters of a light
//! grid, both implemented here as event-driven simulations on `lsps-des`:
//!
//! * **Centralized** ([`cigri`]) — the CiGri production design: each cluster
//!   keeps its own submission system; a central server holds the
//!   multi-parametric campaigns and injects their runs as **best-effort**
//!   jobs into the holes of the local schedules. "The local scheduler gives
//!   no warranty that the job will be finished. If a locally submitted job
//!   requires a processor currently in use by a best-effort job, the latter
//!   will be killed" — and resubmitted by the server. Locals keep their
//!   interface and are never delayed by grid jobs.
//! * **Decentralized** ([`exchange`]) — all jobs are submitted locally and
//!   clusters exchange work to balance load, paying a migration cost over
//!   the WAN; fairness and performance are both measured.
//!
//! [`scenario`] wires platforms ([`lsps_platform::presets`]), community
//! workloads and campaigns into ready-to-run experiments — the `ciment`
//! binary (FIG3) is a thin wrapper around it.

pub mod cigri;
pub mod exchange;
pub mod scenario;

pub use cigri::{CigriReport, CigriSim};
pub use exchange::{ExchangeParams, ExchangeReport, ExchangeSim};
pub use scenario::{ciment_scenario, CimentOutcome, ScenarioParams};

/// Commonly used items.
pub mod prelude {
    pub use crate::cigri::{CigriReport, CigriSim};
    pub use crate::exchange::{ExchangeParams, ExchangeReport, ExchangeSim};
    pub use crate::scenario::{ciment_scenario, CimentOutcome, ScenarioParams};
}
