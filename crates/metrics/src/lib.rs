//! # lsps-metrics — optimization criteria and lower bounds
//!
//! §3 of the paper catalogues the criteria a light-grid scheduler may
//! optimise; this crate computes all of them from a list of
//! [`CompletedJob`] records:
//!
//! * makespan `Cmax = max Cj`;
//! * average completion time `Σ Ci` and its weighted variant `Σ ωi Ci`;
//! * mean *stretch* in the paper's sense (`Σ (Ci − ri)`, i.e. total flow
//!   time) and max stretch (longest wait), plus the normalized
//!   flow/slowdown variants common in the later literature;
//! * tardiness (number of late jobs, total and maximum tardiness);
//! * throughput (completed jobs per unit time — the steady-state criterion);
//! * utilization, wasted work, and per-community fairness (§5.2).
//!
//! [`lower_bounds`] provides certified lower bounds — the area and
//! tallest-job bounds for `Cmax`, the squashed-area WSPT bound for
//! `Σ ωi Ci` — used throughout the experiment harness to report performance
//! *ratios* when the optimum is out of reach (exactly what Fig. 2 of the
//! paper plots).

pub mod completed;
pub mod criteria;
pub mod fairness;
pub mod lower_bounds;
pub mod steady;
pub mod summary;
pub mod volatility;

pub use completed::CompletedJob;
pub use criteria::{Criteria, CriteriaAcc};
pub use fairness::{jain_index, per_user, UserReport};
pub use lower_bounds::{
    area_seconds, cmax_lower_bound, csum_lower_bound, uniform_cmax_lower_bound,
    uniform_csum_lower_bound, uniform_wsum_lower_bound, wsum_lower_bound,
};
pub use steady::{batch_means_ci95, ClassResponse, SteadyState, WarmupSpec};
pub use summary::Summary;
pub use volatility::FailureStats;

/// Commonly used items.
pub mod prelude {
    pub use crate::completed::CompletedJob;
    pub use crate::criteria::{Criteria, CriteriaAcc};
    pub use crate::fairness::{jain_index, per_user, UserReport};
    pub use crate::lower_bounds::{
        area_seconds, cmax_lower_bound, csum_lower_bound, uniform_cmax_lower_bound,
        uniform_csum_lower_bound, uniform_wsum_lower_bound, wsum_lower_bound,
    };
    pub use crate::steady::{batch_means_ci95, ClassResponse, SteadyState, WarmupSpec};
    pub use crate::summary::Summary;
    pub use crate::volatility::FailureStats;
}
