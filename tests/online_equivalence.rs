//! The contract of `Executor::DesOnline`, pinned for **every** registry
//! policy the executor accepts (rectangle outcomes — trial and uniform
//! policies are rejected by the validated capability check, covered in
//! the runner's own tests):
//!
//! * with exact runtimes (clairvoyance factor 1.0) and all-zero release
//!   dates, the online event-driven execution is **bit-identical** to the
//!   batch (`Direct`) evaluation — arrivals coalesce into the single
//!   decision at time zero, which *is* the batch schedule;
//! * with staggered releases the executions differ (that is the point),
//!   but the online run must never start a job before its release, and its
//!   completed set must match the DES-replay event accounting: the same
//!   jobs, one completion event each.

use std::collections::HashMap;

use lsps::core::policy::{registry, Policy, PolicyCtx};
use lsps::prelude::*;
use lsps_bench::runner::{
    des_online, des_replay, to_csv, Executor, ExperimentRunner, PlatformCase, WorkloadCase,
};

/// The registry policies the DES executors can drive (`Executor::supports`).
fn rect_registry() -> Vec<Box<dyn Policy>> {
    registry()
        .into_iter()
        .filter(|p| p.outcome_kind() == OutcomeKind::Rect)
        .collect()
}

/// Mixed rigid/moldable workload with weights; releases come from `stagger`.
fn workload(seed: u64, n: usize, m: usize, stagger: bool) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            clock += rng.int_range(5, 200);
            let seq = Dur::from_ticks(rng.int_range(20, 2_000));
            let job = if rng.chance(0.5) {
                Job::moldable(
                    i as u64,
                    MoldableProfile::from_model(
                        seq,
                        &SpeedupModel::Amdahl {
                            seq_fraction: rng.range(0.0, 0.3),
                        },
                        rng.int_range(1, m as u64) as usize,
                    ),
                )
            } else {
                Job::rigid(i as u64, rng.int_range(1, m as u64 / 2) as usize, seq)
            };
            let release = if stagger { clock } else { 0 };
            job.released_at(Time::from_ticks(release))
                .with_weight(rng.range(0.5, 4.0))
        })
        .collect()
}

#[test]
fn zero_releases_make_online_bit_identical_to_direct() {
    let m = 32;
    let jobs = workload(5, 40, m, false);
    let ctx = PolicyCtx::default(); // estimate_factor = 1.0: exact runtimes
    for policy in rect_registry() {
        let direct = policy.run(&jobs, m, &ctx);
        direct
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
        let mut direct_records = direct.schedule.completed(&direct.jobs);
        direct_records.sort_by_key(|r| r.id);

        let online = des_online(policy.as_ref(), &jobs, m, &ctx);
        online
            .run
            .validate()
            .unwrap_or_else(|e| panic!("{} (online): {e}", policy.name()));
        // Record-level bit-identity (integer times, copied weights): the
        // strongest possible equivalence — every metric follows.
        assert_eq!(direct_records, online.records, "{}", policy.name());
    }
}

#[test]
fn zero_release_cells_agree_bit_for_bit_across_executors() {
    // Same property one layer up: whole runner cells, CSV-rendered, equal
    // in every byte except the executor column itself.
    let mut r = ExperimentRunner::new(rect_registry());
    r.workloads = vec![WorkloadCase::fixed(
        "zero-rel",
        5,
        workload(5, 30, 32, false),
    )];
    r.platforms = vec![PlatformCase::new("m32", 32)];
    let rows = |csv: String| -> Vec<String> {
        csv.lines()
            .skip(1)
            .map(|l| {
                l.replacen(Executor::Direct.name(), "X", 1).replacen(
                    Executor::DesOnline.name(),
                    "X",
                    1,
                )
            })
            .collect()
    };
    r.executor = Executor::Direct;
    let direct = rows(to_csv(&r.run()));
    r.executor = Executor::DesOnline;
    let online = rows(to_csv(&r.run()));
    assert_eq!(direct, online);
}

#[test]
fn staggered_releases_never_start_early_and_match_replay_accounting() {
    let m = 24;
    let jobs = workload(9, 35, m, true);
    let release_of: HashMap<JobId, Time> = jobs.iter().map(|j| (j.id, j.release)).collect();
    let ctx = PolicyCtx::default();
    for policy in rect_registry() {
        let online = des_online(policy.as_ref(), &jobs, m, &ctx);
        online
            .run
            .validate()
            .unwrap_or_else(|e| panic!("{} (online): {e}", policy.name()));
        // No clairvoyance about existence: a job's rectangle may not begin
        // before the instant the scheduler learned about it — even for
        // policies whose *prepared view* strips release dates.
        for a in online.run.schedule.assignments() {
            assert!(
                a.start >= release_of[&a.job],
                "{}: job {} starts at {:?} before release {:?}",
                policy.name(),
                a.job,
                a.start,
                release_of[&a.job]
            );
        }
        // Completed-set equivalence with the replay executor's event
        // accounting: same jobs, exactly one completion event per job.
        let batch = policy.run(&jobs, m, &ctx);
        let replay = des_replay(&batch.schedule, &batch.jobs);
        let online_ids: Vec<JobId> = online.records.iter().map(|r| r.id).collect();
        let replay_ids: Vec<JobId> = replay.iter().map(|r| r.id).collect();
        assert_eq!(online_ids, replay_ids, "{}", policy.name());
        // Event budget: n arrivals + n completions + at most one decision
        // per arrival/completion instant, nothing else.
        let n = jobs.len() as u64;
        assert!(
            online.stats.events_dispatched > 2 * n && online.stats.events_dispatched <= 4 * n,
            "{}: {} events for n = {n}",
            policy.name(),
            online.stats.events_dispatched
        );
    }
}
