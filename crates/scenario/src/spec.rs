//! The campaign spec: a sweep described as data.
//!
//! A [`CampaignSpec`] names everything a sweep crosses — policies (by their
//! `lsps_core::policy::registry` names), platforms, workload entries
//! (synthetic [`lsps_workload::WorkloadSpec`]s, named [`crate::families`],
//! or SWF/JSONL trace files), executors — plus a [`ReplicationSpec`] that
//! turns each workload entry into independent seeded replications.
//!
//! Specs deserialize from JSON with layered defaults (only `name`,
//! `policies`, `platforms` and `workloads` are required), so a minimal
//! file stays minimal; see `examples/small_campaign.json`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use lsps_core::allot::AllotRule;
use lsps_core::outcome::OutcomeKind;
use lsps_core::policy::{by_name, Knowledge, PolicyCtx, ReleaseMode, DEFAULT_INITIAL_ESTIMATE};
use lsps_des::Dur;
use lsps_metrics::WarmupSpec;
use lsps_workload::{FailurePolicy, FailureTraceSpec, OpenStreamSpec, WorkloadSpec};

use crate::families::builtin_family;
use crate::runner::Executor;

/// SplitMix64 finalizer: a bijective avalanche mix, the standard way to
/// derive well-spread independent seeds from structured inputs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit: a stable, dependency-free content hash. Used for seed
/// derivation (hashing workload names) and for cache addressing — never
/// for anything adversarial.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A malformed or semantically invalid campaign spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Where a workload entry's jobs come from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// A synthetic generator spec, generated per replication seed.
    Spec(WorkloadSpec),
    /// A named built-in family (see [`crate::families`]) at size `n`.
    Family {
        /// Family name, resolved via [`builtin_family`].
        family: String,
        /// Instance size (jobs).
        n: usize,
    },
    /// A Standard Workload Format trace file (path, resolved relative to
    /// the spec file). Replications repeat the same fixed job list.
    SwfFile(String),
    /// A JSON-lines trace file (lossless native format, moldable profiles
    /// included).
    JsonlFile(String),
    /// An open (steady-state) arrival stream, driven through the
    /// `des-online` executor with a stopping rule instead of a job list.
    Open(OpenEntry),
}

/// An open workload entry: the unbounded stream plus the stopping and
/// estimation rules that make its steady-state statistics meaningful.
/// Per-replication seeds seed the stream's RNG, so replications are
/// independent sample paths of the same arrival process.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenEntry {
    /// The stream: target load ρ, arrival process, job-class mixture.
    pub stream: OpenStreamSpec,
    /// Primary stopping rule: stop the drive after this many counted
    /// completions (memory for response observations is proportional to
    /// this, not to simulated events).
    pub stop_completions: u64,
    /// Optional feed horizon (simulated seconds): arrivals released past
    /// it are never admitted, queued work still drains. `None` feeds until
    /// the completion target stops the driver.
    pub horizon_s: Option<f64>,
    /// Warmup (initial-transient) truncation rule. Default: drop the
    /// first 20% of completions.
    pub warmup: WarmupSpec,
    /// Batch count for the single-replication batch-means CI. Default 20.
    pub batches: usize,
}

impl OpenEntry {
    /// Layered defaults for everything the JSON omits.
    pub const DEFAULT_WARMUP: WarmupSpec = WarmupSpec::Fraction(0.2);
    /// Default batch-means batch count.
    pub const DEFAULT_BATCHES: usize = 20;
}

impl Deserialize for OpenEntry {
    fn from_value(v: &Value) -> Result<OpenEntry, SerdeError> {
        check_keys(
            v,
            &[
                "stream",
                "stop_completions",
                "horizon_s",
                "warmup",
                "batches",
            ],
        )?;
        Ok(OpenEntry {
            stream: Deserialize::from_value(serde::field(v, "stream")?)?,
            stop_completions: Deserialize::from_value(serde::field(v, "stop_completions")?)?,
            horizon_s: opt_or(v, "horizon_s", None)?,
            warmup: opt_or(v, "warmup", OpenEntry::DEFAULT_WARMUP)?,
            batches: opt_or(v, "batches", OpenEntry::DEFAULT_BATCHES)?,
        })
    }
}

impl Serialize for OpenEntry {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("stream".into(), self.stream.to_value()),
            ("stop_completions".into(), self.stop_completions.to_value()),
        ];
        if let Some(h) = self.horizon_s {
            map.push(("horizon_s".into(), h.to_value()));
        }
        map.push(("warmup".into(), self.warmup.to_value()));
        map.push(("batches".into(), self.batches.to_value()));
        Value::Map(map)
    }
}

/// One named workload of the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadEntry {
    /// Display/CSV/grouping name. Entries may share a name (e.g. explicit
    /// per-seed entries of one family) — the aggregate groups by it.
    pub name: String,
    /// Job source.
    pub source: WorkloadSource,
    /// Explicit seed: the entry contributes exactly one cell per
    /// (policy, platform, executor) with this seed, bypassing the
    /// replication block. `None` (the default) replicates normally.
    pub seed: Option<u64>,
}

/// How per-replication seeds are derived from the base seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SeedDerivation {
    /// `seed(entry, rep) = splitmix64(splitmix64(base ⊕ fnv(entry.name)) + rep)`
    /// — replications are independent, order-insensitive, and adding an
    /// entry never perturbs another entry's draws.
    #[default]
    SplitMix,
    /// `seed(rep) = base + rep` — the legacy scheme of the hand-rolled
    /// sweeps, kept so the historical binaries reproduce byte-identical
    /// CSVs through the campaign layer.
    Sequential,
}

impl SeedDerivation {
    fn parse(s: &str) -> Result<SeedDerivation, SerdeError> {
        match s {
            "splitmix" => Ok(SeedDerivation::SplitMix),
            "sequential" => Ok(SeedDerivation::Sequential),
            other => Err(SerdeError::custom(format!(
                "unknown seed derivation `{other}` (expected `splitmix` or `sequential`)"
            ))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            SeedDerivation::SplitMix => "splitmix",
            SeedDerivation::Sequential => "sequential",
        }
    }
}

/// The replication block: every workload entry without an explicit seed is
/// expanded into `replications` seeded copies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicationSpec {
    /// Root seed of the campaign.
    pub base_seed: u64,
    /// Replications per workload entry (≥ 1).
    pub replications: usize,
    /// Seed derivation scheme.
    pub derivation: SeedDerivation,
}

impl Default for ReplicationSpec {
    fn default() -> ReplicationSpec {
        ReplicationSpec {
            base_seed: 1,
            replications: 1,
            derivation: SeedDerivation::SplitMix,
        }
    }
}

impl ReplicationSpec {
    /// The seeds an entry expands into, in replication order.
    pub fn seeds_for(&self, entry: &WorkloadEntry) -> Vec<u64> {
        if let Some(seed) = entry.seed {
            return vec![seed];
        }
        (0..self.replications as u64)
            .map(|rep| match self.derivation {
                SeedDerivation::Sequential => self.base_seed + rep,
                SeedDerivation::SplitMix => {
                    let entry_root = splitmix64(self.base_seed ^ fnv64(entry.name.as_bytes()));
                    splitmix64(entry_root.wrapping_add(rep))
                }
            })
            .collect()
    }
}

/// A named machine: identical processors, or — with `speeds` — a uniform
/// machine (the spec's *machine* axis, §2.2).
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    /// Display/CSV name.
    pub name: String,
    /// Processor count.
    pub m: usize,
    /// Per-processor relative speeds (`None` = identical machines). When
    /// set, the length must equal `m`, every value must be positive, and
    /// every policy of the spec must be uniform-capable — validation
    /// reports violations before any cell runs.
    pub speeds: Option<Vec<f64>>,
}

impl Deserialize for PlatformSpec {
    fn from_value(v: &Value) -> Result<PlatformSpec, SerdeError> {
        check_keys(v, &["name", "m", "speeds"])?;
        Ok(PlatformSpec {
            name: Deserialize::from_value(serde::field(v, "name")?)?,
            m: Deserialize::from_value(serde::field(v, "m")?)?,
            speeds: opt_or(v, "speeds", None)?,
        })
    }
}

impl Serialize for PlatformSpec {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("name".into(), self.name.to_value()),
            ("m".into(), self.m.to_value()),
        ];
        if let Some(speeds) = &self.speeds {
            map.push(("speeds".into(), speeds.to_value()));
        }
        Value::Map(map)
    }
}

/// One point on the campaign's *failures* axis: a named failure regime ×
/// recovery policy. Every platform is crossed with every failure entry;
/// `trace: None` is the reliable baseline (today's execution path,
/// byte-identical output). A volatile entry (`trace: Some`) runs its cells
/// through the failure-aware online executor with the platform name
/// suffixed `<platform>+<entry>` in the CSVs.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureEntry {
    /// Display name; suffixes the platform name for volatile cells.
    pub name: String,
    /// Failure trace generator; `None` = reliable platform.
    pub trace: Option<FailureTraceSpec>,
    /// Recovery policy for killed jobs (ignored when `trace` is `None`).
    pub policy: FailurePolicy,
}

impl FailureEntry {
    /// The implicit axis of a spec without a `failures` block: one
    /// reliable entry, so the cross product degenerates to today's grid.
    pub fn reliable() -> FailureEntry {
        FailureEntry {
            name: "none".into(),
            trace: None,
            policy: FailurePolicy::Resubmit,
        }
    }
}

impl Deserialize for FailureEntry {
    fn from_value(v: &Value) -> Result<FailureEntry, SerdeError> {
        check_keys(v, &["name", "trace", "policy"])?;
        Ok(FailureEntry {
            name: Deserialize::from_value(serde::field(v, "name")?)?,
            trace: opt_or(v, "trace", None)?,
            policy: opt_or(v, "policy", FailurePolicy::Resubmit)?,
        })
    }
}

impl Serialize for FailureEntry {
    fn to_value(&self) -> Value {
        let mut map = vec![("name".into(), self.name.to_value())];
        if let Some(trace) = &self.trace {
            map.push(("trace".into(), trace.to_value()));
        }
        map.push(("policy".into(), self.policy.to_value()));
        Value::Map(map)
    }
}

/// The scheduling-context knobs a spec may set (reservations and pinned
/// bookings are runtime concerns, not spec data).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CtxSpec {
    /// Release-date handling (`"online"` / `"offline"` in JSON).
    pub release_mode: ReleaseMode,
    /// Clairvoyance knob (runtime estimates are `true × factor`, ≥ 1).
    pub estimate_factor: f64,
    /// Rigidification rule (`"sequential"` / `"min-time"` / `"balanced"`).
    pub allot_rule: AllotRule,
    /// Knowledge model (`"clairvoyant"` / `"nonclairvoyant"` in JSON, the
    /// latter with an optional `initial_estimate_s` seconds knob seeding
    /// the exponential-trial doubling).
    pub knowledge: Knowledge,
}

impl Default for CtxSpec {
    fn default() -> CtxSpec {
        let d = PolicyCtx::default();
        CtxSpec {
            release_mode: d.release_mode,
            estimate_factor: d.estimate_factor,
            allot_rule: d.allot_rule,
            knowledge: d.knowledge,
        }
    }
}

impl CtxSpec {
    /// The runnable context.
    pub fn to_policy_ctx(&self) -> PolicyCtx {
        PolicyCtx {
            release_mode: self.release_mode,
            estimate_factor: self.estimate_factor,
            allot_rule: self.allot_rule,
            knowledge: self.knowledge,
            ..PolicyCtx::default()
        }
    }

    fn release_mode_name(&self) -> &'static str {
        match self.release_mode {
            ReleaseMode::Online => "online",
            ReleaseMode::Offline => "offline",
        }
    }

    fn allot_rule_name(&self) -> &'static str {
        match self.allot_rule {
            AllotRule::Sequential => "sequential",
            AllotRule::MinTime => "min-time",
            AllotRule::Balanced => "balanced",
        }
    }
}

/// A whole sweep as data. See the module docs for the JSON shape.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name — the stem of the emitted CSV files.
    pub name: String,
    /// Registry policy names under comparison.
    pub policies: Vec<String>,
    /// Executors to run every cell under (default: `direct` only).
    pub executors: Vec<Executor>,
    /// Platforms.
    pub platforms: Vec<PlatformSpec>,
    /// Workload entries.
    pub workloads: Vec<WorkloadEntry>,
    /// Failures axis: every platform × every entry (default: one reliable
    /// entry, i.e. no axis at all).
    pub failures: Vec<FailureEntry>,
    /// Replication block.
    pub replication: ReplicationSpec,
    /// Scheduling context.
    pub ctx: CtxSpec,
}

impl CampaignSpec {
    /// A minimal spec with defaults for everything optional; callers fill
    /// the grid axes in.
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            policies: Vec::new(),
            executors: vec![Executor::Direct],
            platforms: Vec::new(),
            workloads: Vec::new(),
            failures: vec![FailureEntry::reliable()],
            replication: ReplicationSpec::default(),
            ctx: CtxSpec::default(),
        }
    }

    /// Whether any failure entry actually injects failures.
    pub fn is_volatile(&self) -> bool {
        self.failures.iter().any(|f| f.trace.is_some())
    }

    /// Semantic validation beyond JSON shape: non-empty axes, resolvable
    /// policy and family names, sane sizes, and executor/platform ×
    /// policy *capability compatibility* — the DES executors and speeded
    /// platforms only accept the policies that can honour them. Every
    /// problem is collected and reported at once (joined with `; `), so a
    /// sweep with three typos fails with three messages up front instead
    /// of panicking mid-run on the first. Trace-file existence is checked
    /// at expansion time (paths resolve relative to the spec file).
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut problems: Vec<String> = Vec::new();
        if self.name.is_empty() {
            problems.push("empty campaign name".into());
        }
        for (what, empty) in [
            ("policies", self.policies.is_empty()),
            ("executors", self.executors.is_empty()),
            ("platforms", self.platforms.is_empty()),
            ("workloads", self.workloads.is_empty()),
        ] {
            if empty {
                problems.push(format!("`{what}` must be non-empty"));
            }
        }
        let mut seen_policies = std::collections::HashSet::new();
        for p in &self.policies {
            if !seen_policies.insert(p.as_str()) {
                problems.push(format!("duplicate policy `{p}`"));
            }
            let Some(policy) = by_name(p) else {
                problems.push(format!("unknown policy `{p}` (not in the registry)"));
                continue;
            };
            // Capability compatibility, checked before any cell runs: the
            // DES executors replay/drive rectangles only, and a speeded
            // platform needs a uniform-capable policy.
            let kind = policy.outcome_kind();
            for &e in &self.executors {
                if !e.supports(kind) {
                    problems.push(format!(
                        "policy `{p}` produces `{kind}` outcomes, which executor \
                         `{e}` cannot replay or drive (use `direct`)"
                    ));
                }
            }
            if kind != OutcomeKind::Uniform {
                for plat in self.platforms.iter().filter(|pl| pl.speeds.is_some()) {
                    problems.push(format!(
                        "platform `{}` has per-processor speeds, which policy \
                         `{p}` (outcome `{kind}`) cannot honour — uniform-capable \
                         policies only",
                        plat.name
                    ));
                }
            }
        }
        let mut seen_executors = std::collections::HashSet::new();
        for e in &self.executors {
            if !seen_executors.insert(e.name()) {
                problems.push(format!("duplicate executor `{e}`"));
            }
        }
        // Workload entries may share a name (explicit per-seed entries of
        // one family group under it), but platforms group the aggregate by
        // name alone — two different machines under one name would silently
        // pool into one row.
        let mut seen_platforms = std::collections::HashSet::new();
        for plat in &self.platforms {
            if plat.m == 0 {
                problems.push(format!("platform `{}` has m = 0", plat.name));
            }
            if !seen_platforms.insert(plat.name.as_str()) {
                problems.push(format!("duplicate platform name `{}`", plat.name));
            }
            if let Some(speeds) = &plat.speeds {
                if speeds.len() != plat.m {
                    problems.push(format!(
                        "platform `{}`: {} speeds for m = {}",
                        plat.name,
                        speeds.len(),
                        plat.m
                    ));
                }
                if !speeds.iter().all(|&s| s > 0.0 && s.is_finite()) {
                    problems.push(format!(
                        "platform `{}`: speeds must be positive and finite",
                        plat.name
                    ));
                }
            }
        }
        for w in &self.workloads {
            if let WorkloadSource::Family { family, n } = &w.source {
                if builtin_family(family, *n).is_none() {
                    problems.push(format!("workload `{}`: unknown family `{family}`", w.name));
                }
            }
        }
        // Open (steady-state) entries change the execution model — the
        // campaign drives a stream with a stopping rule instead of running
        // a job list to completion — so they demand a uniform campaign:
        // every entry open, exactly the des-online executor, honest online
        // releases.
        let n_open = self
            .workloads
            .iter()
            .filter(|w| matches!(w.source, WorkloadSource::Open(_)))
            .count();
        if n_open > 0 {
            if n_open != self.workloads.len() {
                problems.push(
                    "open-arrival entries cannot mix with finite workload entries \
                     in one campaign"
                        .into(),
                );
            }
            if self.executors != vec![Executor::DesOnline] {
                problems.push(
                    "open-arrival workloads run under exactly `[\"des-online\"]` executors".into(),
                );
            }
            if self.ctx.release_mode != ReleaseMode::Online {
                problems.push(
                    "open-arrival workloads require `ctx.release_mode: \"online\"` \
                     (offline would collapse the stream to one batch)"
                        .into(),
                );
            }
        }
        for w in &self.workloads {
            let WorkloadSource::Open(open) = &w.source else {
                continue;
            };
            for p in open.stream.validate() {
                problems.push(format!("workload `{}`: {p}", w.name));
            }
            if open.stop_completions == 0 {
                problems.push(format!(
                    "workload `{}`: `stop_completions` must be >= 1",
                    w.name
                ));
            }
            if open.batches < 2 {
                problems.push(format!("workload `{}`: `batches` must be >= 2", w.name));
            }
            if let Some(h) = open.horizon_s {
                if !(h > 0.0 && h.is_finite()) {
                    problems.push(format!(
                        "workload `{}`: `horizon_s` must be positive and finite",
                        w.name
                    ));
                }
            }
            if let WarmupSpec::Fraction(f) = open.warmup {
                if !(0.0..1.0).contains(&f) {
                    problems.push(format!(
                        "workload `{}`: warmup fraction must be in [0, 1)",
                        w.name
                    ));
                }
            }
        }
        if self.failures.is_empty() {
            problems.push(
                "`failures` must be non-empty (omit the block for the reliable default)".into(),
            );
        }
        let mut seen_failures = std::collections::HashSet::new();
        for f in &self.failures {
            if !seen_failures.insert(f.name.as_str()) {
                problems.push(format!("duplicate failure entry name `{}`", f.name));
            }
            let Some(trace) = &f.trace else { continue };
            for p in trace.validate() {
                problems.push(format!("failure entry `{}`: {p}", f.name));
            }
            for p in f.policy.validate() {
                problems.push(format!("failure entry `{}`: {p}", f.name));
            }
            if let Some(max_node) = trace.max_node() {
                for plat in &self.platforms {
                    if max_node as usize >= plat.m {
                        problems.push(format!(
                            "failure entry `{}` scripts node {max_node}, but platform \
                             `{}` only has m = {}",
                            f.name, plat.name, plat.m
                        ));
                    }
                }
            }
        }
        // A volatile axis changes the execution model the same way open
        // entries do: cells must be *driven* (kills happen mid-flight), so
        // the campaign has to be uniformly des-online with honest releases,
        // pinned-capable policies (they plan around outage windows),
        // identical machines, and finite workloads.
        if self.is_volatile() {
            if self.executors != vec![Executor::DesOnline] {
                problems.push(
                    "a volatile `failures` axis runs under exactly `[\"des-online\"]` executors"
                        .into(),
                );
            }
            if self.ctx.release_mode != ReleaseMode::Online {
                problems.push(
                    "a volatile `failures` axis requires `ctx.release_mode: \"online\"`".into(),
                );
            }
            for p in &self.policies {
                if by_name(p).is_some_and(|pol| !pol.supports_pinned()) {
                    problems.push(format!(
                        "policy `{p}` cannot plan around outage windows \
                         (pinned-capable policies only under a volatile `failures` axis)"
                    ));
                }
            }
            for plat in self.platforms.iter().filter(|pl| pl.speeds.is_some()) {
                problems.push(format!(
                    "platform `{}` has per-processor speeds, which the volatile \
                     executor does not model",
                    plat.name
                ));
            }
            if self
                .workloads
                .iter()
                .any(|w| matches!(w.source, WorkloadSource::Open(_)))
            {
                problems.push(
                    "open-arrival workloads cannot combine with a volatile `failures` axis".into(),
                );
            }
        }
        if self.replication.replications == 0 {
            problems.push("`replication.replications` must be >= 1".into());
        }
        if self.ctx.estimate_factor < 1.0 {
            problems.push("`ctx.estimate_factor` must be >= 1".into());
        }
        if let Knowledge::NonClairvoyant { initial_estimate } = self.ctx.knowledge {
            if initial_estimate.is_zero() {
                problems.push("`ctx.initial_estimate_s` must be positive".into());
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(SpecError(problems.join("; ")))
        }
    }

    /// Total cell count of the expanded grid.
    pub fn cell_count(&self) -> usize {
        let reps: usize = self
            .workloads
            .iter()
            .map(|w| self.replication.seeds_for(w).len())
            .sum();
        self.policies.len()
            * self.executors.len()
            * self.platforms.len()
            * self.failures.len()
            * reps
    }
}

fn opt<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    v.get(key).filter(|x| !matches!(x, Value::Null))
}

/// Reject unknown keys. With layered defaults, a misspelled optional key
/// would otherwise be *silently ignored* and the sweep would run under a
/// default the author never chose — the worst failure mode a declarative
/// format can have.
fn check_keys(v: &Value, known: &[&str]) -> Result<(), SerdeError> {
    let map = v
        .as_map()
        .ok_or_else(|| SerdeError::custom("expected object"))?;
    for (k, _) in map {
        if !known.contains(&k.as_str()) {
            return Err(SerdeError::custom(format!(
                "unknown field `{k}` (expected one of: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn opt_or<T: Deserialize>(v: &Value, key: &str, default: T) -> Result<T, SerdeError> {
    match opt(v, key) {
        Some(x) => T::from_value(x),
        None => Ok(default),
    }
}

impl Deserialize for WorkloadEntry {
    fn from_value(v: &Value) -> Result<WorkloadEntry, SerdeError> {
        check_keys(v, &["name", "source", "seed"])?;
        Ok(WorkloadEntry {
            name: Deserialize::from_value(serde::field(v, "name")?)?,
            source: Deserialize::from_value(serde::field(v, "source")?)?,
            seed: opt_or(v, "seed", None)?,
        })
    }
}

impl Serialize for WorkloadEntry {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("name".into(), self.name.to_value()),
            ("source".into(), self.source.to_value()),
        ];
        if let Some(seed) = self.seed {
            map.push(("seed".into(), seed.to_value()));
        }
        Value::Map(map)
    }
}

impl Deserialize for ReplicationSpec {
    fn from_value(v: &Value) -> Result<ReplicationSpec, SerdeError> {
        check_keys(v, &["base_seed", "replications", "derivation"])?;
        let d = ReplicationSpec::default();
        Ok(ReplicationSpec {
            base_seed: opt_or(v, "base_seed", d.base_seed)?,
            replications: opt_or(v, "replications", d.replications)?,
            derivation: match opt(v, "derivation") {
                Some(x) => SeedDerivation::parse(&String::from_value(x)?)?,
                None => d.derivation,
            },
        })
    }
}

impl Serialize for ReplicationSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("base_seed".into(), self.base_seed.to_value()),
            ("replications".into(), self.replications.to_value()),
            ("derivation".into(), self.derivation.name().to_value()),
        ])
    }
}

impl Deserialize for CtxSpec {
    fn from_value(v: &Value) -> Result<CtxSpec, SerdeError> {
        check_keys(
            v,
            &[
                "release_mode",
                "estimate_factor",
                "allot_rule",
                "knowledge",
                "initial_estimate_s",
            ],
        )?;
        let d = CtxSpec::default();
        let knowledge_name = match opt(v, "knowledge") {
            Some(x) => Some(String::from_value(x)?),
            None => None,
        };
        let knowledge = match knowledge_name.as_deref() {
            Some("nonclairvoyant") => {
                let secs: f64 = opt_or(
                    v,
                    "initial_estimate_s",
                    DEFAULT_INITIAL_ESTIMATE.as_secs_f64(),
                )?;
                Knowledge::NonClairvoyant {
                    initial_estimate: Dur::from_secs_f64(secs),
                }
            }
            Some("clairvoyant") | None => {
                if opt(v, "initial_estimate_s").is_some() {
                    return Err(SerdeError::custom(
                        "`initial_estimate_s` requires `knowledge: \"nonclairvoyant\"`",
                    ));
                }
                match knowledge_name {
                    Some(_) => Knowledge::Clairvoyant,
                    None => d.knowledge,
                }
            }
            Some(other) => {
                return Err(SerdeError::custom(format!(
                    "unknown knowledge model `{other}` \
                     (expected `clairvoyant` or `nonclairvoyant`)"
                )))
            }
        };
        Ok(CtxSpec {
            knowledge,
            release_mode: match opt(v, "release_mode") {
                Some(x) => match String::from_value(x)?.as_str() {
                    "online" => ReleaseMode::Online,
                    "offline" => ReleaseMode::Offline,
                    other => {
                        return Err(SerdeError::custom(format!(
                            "unknown release mode `{other}` (expected `online` or `offline`)"
                        )))
                    }
                },
                None => d.release_mode,
            },
            estimate_factor: opt_or(v, "estimate_factor", d.estimate_factor)?,
            allot_rule: match opt(v, "allot_rule") {
                Some(x) => match String::from_value(x)?.as_str() {
                    "sequential" => AllotRule::Sequential,
                    "min-time" => AllotRule::MinTime,
                    "balanced" => AllotRule::Balanced,
                    other => {
                        return Err(SerdeError::custom(format!(
                            "unknown allot rule `{other}` \
                             (expected `sequential`, `min-time` or `balanced`)"
                        )))
                    }
                },
                None => d.allot_rule,
            },
        })
    }
}

impl Serialize for CtxSpec {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("release_mode".into(), self.release_mode_name().to_value()),
            ("estimate_factor".into(), self.estimate_factor.to_value()),
            ("allot_rule".into(), self.allot_rule_name().to_value()),
        ];
        match self.knowledge {
            Knowledge::Clairvoyant => {
                map.push(("knowledge".into(), "clairvoyant".to_value()));
            }
            Knowledge::NonClairvoyant { initial_estimate } => {
                map.push(("knowledge".into(), "nonclairvoyant".to_value()));
                map.push((
                    "initial_estimate_s".into(),
                    initial_estimate.as_secs_f64().to_value(),
                ));
            }
        }
        Value::Map(map)
    }
}

impl Deserialize for CampaignSpec {
    fn from_value(v: &Value) -> Result<CampaignSpec, SerdeError> {
        check_keys(
            v,
            &[
                "name",
                "policies",
                "executors",
                "platforms",
                "workloads",
                "failures",
                "replication",
                "ctx",
            ],
        )?;
        let executors = match opt(v, "executors") {
            Some(x) => Vec::<String>::from_value(x)?
                .iter()
                .map(|s| Executor::from_str(s).map_err(SerdeError::custom))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![Executor::Direct],
        };
        Ok(CampaignSpec {
            name: Deserialize::from_value(serde::field(v, "name")?)?,
            policies: Deserialize::from_value(serde::field(v, "policies")?)?,
            executors,
            platforms: Deserialize::from_value(serde::field(v, "platforms")?)?,
            workloads: Deserialize::from_value(serde::field(v, "workloads")?)?,
            failures: opt_or(v, "failures", vec![FailureEntry::reliable()])?,
            replication: opt_or(v, "replication", ReplicationSpec::default())?,
            ctx: opt_or(v, "ctx", CtxSpec::default())?,
        })
    }
}

impl Serialize for CampaignSpec {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("name".into(), self.name.to_value()),
            ("policies".into(), self.policies.to_value()),
            (
                "executors".into(),
                Value::Seq(self.executors.iter().map(|e| e.name().to_value()).collect()),
            ),
            ("platforms".into(), self.platforms.to_value()),
            ("workloads".into(), self.workloads.to_value()),
        ];
        // The degenerate (reliable-only) axis is elided so the canonical
        // spec JSON — campaign ids, journals — of a pre-failure-axis spec
        // is unchanged.
        if self.failures != vec![FailureEntry::reliable()] {
            map.push(("failures".into(), self.failures.to_value()));
        }
        map.push(("replication".into(), self.replication.to_value()));
        map.push(("ctx".into(), self.ctx.to_value()));
        Value::Map(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "name": "mini",
        "policies": ["list-fcfs"],
        "platforms": [{"name": "m8", "m": 8}],
        "workloads": [
            {"name": "fam", "source": {"Family": {"family": "fig2-sequential", "n": 5}}}
        ]
    }"#;

    #[test]
    fn minimal_spec_gets_defaults() {
        let spec: CampaignSpec = serde_json::from_str(MINIMAL).expect("parses");
        assert_eq!(spec.executors, vec![Executor::Direct]);
        assert_eq!(spec.replication, ReplicationSpec::default());
        assert_eq!(spec.ctx, CtxSpec::default());
        assert_eq!(spec.workloads[0].seed, None);
        spec.validate().expect("valid");
        assert_eq!(spec.cell_count(), 1);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.executors = vec![Executor::Direct, Executor::DesOnline];
        spec.replication = ReplicationSpec {
            base_seed: 42,
            replications: 3,
            derivation: SeedDerivation::Sequential,
        };
        spec.ctx.release_mode = ReleaseMode::Offline;
        spec.workloads.push(WorkloadEntry {
            name: "trace".into(),
            source: WorkloadSource::SwfFile("data/trace.swf".into()),
            seed: Some(9),
        });
        let text = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validation_rejects_unknowns() {
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.policies = vec!["no-such-policy".into()];
        assert!(spec.validate().unwrap_err().0.contains("no-such-policy"));
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.workloads[0].source = WorkloadSource::Family {
            family: "no-such-family".into(),
            n: 5,
        };
        assert!(spec.validate().unwrap_err().0.contains("no-such-family"));
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.policies.clear();
        assert!(spec.validate().is_err());
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.policies = vec!["list-fcfs".into(), "list-fcfs".into()];
        assert!(spec.validate().unwrap_err().0.contains("duplicate policy"));
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.platforms.push(PlatformSpec {
            name: "m8".into(),
            m: 64,
            speeds: None,
        });
        assert!(spec
            .validate()
            .unwrap_err()
            .0
            .contains("duplicate platform"));
        assert!(serde_json::from_str::<CampaignSpec>(r#"{"name": "x"}"#).is_err());
        // Misspelled keys are rejected, not silently defaulted.
        for bad in [
            r#"{"name":"x","policies":["list-fcfs"],"platforms":[{"name":"m8","m":8}],
                "workloads":[],"contex":{}}"#,
            r#"{"name":"x","policies":["list-fcfs"],"platforms":[{"name":"m8","m":8}],
                "workloads":[],"replication":{"base_sead":3}}"#,
            r#"{"name":"x","policies":["list-fcfs"],"platforms":[{"name":"m8","m":8}],
                "workloads":[],"ctx":{"release_mod":"offline"}}"#,
        ] {
            let e = serde_json::from_str::<CampaignSpec>(bad).unwrap_err();
            assert!(e.to_string().contains("unknown field"), "{e}");
        }
        assert!(serde_json::from_str::<CampaignSpec>(
            r#"{"name":"x","policies":["list-fcfs"],"platforms":[],"workloads":[],
                "executors":["warp-drive"]}"#
        )
        .is_err());
    }

    #[test]
    fn validation_reports_every_problem_at_once() {
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.policies = vec!["no-such-policy".into(), "also-missing".into()];
        spec.workloads[0].source = WorkloadSource::Family {
            family: "no-such-family".into(),
            n: 5,
        };
        spec.replication.replications = 0;
        let msg = spec.validate().unwrap_err().0;
        for needle in [
            "no-such-policy",
            "also-missing",
            "no-such-family",
            "replications",
        ] {
            assert!(msg.contains(needle), "`{needle}` missing from: {msg}");
        }
    }

    #[test]
    fn capability_compatibility_is_validated_up_front() {
        // Non-rect policies under a DES executor are rejected by name.
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.policies = vec!["nonclairvoyant-exp-trial".into(), "uniform-mct".into()];
        spec.executors = vec![Executor::Direct, Executor::DesOnline];
        let msg = spec.validate().unwrap_err().0;
        assert!(msg.contains("nonclairvoyant-exp-trial"), "{msg}");
        assert!(msg.contains("uniform-mct"), "{msg}");
        assert!(msg.contains("des-online"), "{msg}");
        // Under direct alone the same pair is fine.
        spec.executors = vec![Executor::Direct];
        spec.validate().expect("direct handles every outcome kind");
        // A speeded platform rejects every non-uniform policy.
        let mut spec: CampaignSpec = serde_json::from_str(MINIMAL).unwrap();
        spec.platforms[0].speeds = Some(vec![1.0; 8]);
        let msg = spec.validate().unwrap_err().0;
        assert!(msg.contains("per-processor speeds"), "{msg}");
        spec.policies = vec!["uniform-mct".into()];
        spec.validate().expect("uniform policy rides the speeds");
        // Speed-vector shape is checked too.
        spec.platforms[0].speeds = Some(vec![1.0; 3]);
        let msg = spec.validate().unwrap_err().0;
        assert!(msg.contains("3 speeds for m = 8"), "{msg}");
        spec.platforms[0].speeds = Some(vec![1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let msg = spec.validate().unwrap_err().0;
        assert!(msg.contains("positive and finite"), "{msg}");
    }

    #[test]
    fn machine_and_knowledge_axes_round_trip_through_json() {
        let text = r#"{
            "name": "hetero",
            "policies": ["uniform-mct"],
            "platforms": [{"name": "two-gen", "m": 4, "speeds": [1.0, 1.0, 0.55, 0.55]}],
            "workloads": [
                {"name": "fam", "source": {"Family": {"family": "uniform-seq", "n": 5}}}
            ],
            "ctx": {"knowledge": "nonclairvoyant", "initial_estimate_s": 120.0}
        }"#;
        let spec: CampaignSpec = serde_json::from_str(text).expect("parses");
        assert_eq!(
            spec.platforms[0].speeds.as_deref(),
            Some(&[1.0, 1.0, 0.55, 0.55][..])
        );
        assert_eq!(
            spec.ctx.knowledge,
            Knowledge::NonClairvoyant {
                initial_estimate: Dur::from_secs(120)
            }
        );
        spec.validate().expect("valid");
        let back: CampaignSpec =
            serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, back);
        // The runnable ctx carries the knowledge model.
        assert_eq!(spec.ctx.to_policy_ctx().knowledge, spec.ctx.knowledge);
    }

    #[test]
    fn knowledge_knob_rejects_misuse() {
        let base = r#"{
            "name": "x",
            "policies": ["list-fcfs"],
            "platforms": [{"name": "m8", "m": 8}],
            "workloads": [
                {"name": "fam", "source": {"Family": {"family": "fig2-sequential", "n": 5}}}
            ],
            "ctx": CTX
        }"#;
        // Unknown knowledge model.
        let bad = base.replace("CTX", r#"{"knowledge": "psychic"}"#);
        let e = serde_json::from_str::<CampaignSpec>(&bad).unwrap_err();
        assert!(e.to_string().contains("unknown knowledge model"), "{e}");
        // initial_estimate_s without nonclairvoyant knowledge.
        let bad = base.replace("CTX", r#"{"initial_estimate_s": 10.0}"#);
        let e = serde_json::from_str::<CampaignSpec>(&bad).unwrap_err();
        assert!(e.to_string().contains("requires"), "{e}");
        let bad = base.replace(
            "CTX",
            r#"{"knowledge": "clairvoyant", "initial_estimate_s": 10.0}"#,
        );
        assert!(serde_json::from_str::<CampaignSpec>(&bad).is_err());
        // Default estimate when nonclairvoyant omits the knob.
        let ok = base.replace("CTX", r#"{"knowledge": "nonclairvoyant"}"#);
        let spec: CampaignSpec = serde_json::from_str(&ok).unwrap();
        assert_eq!(
            spec.ctx.knowledge,
            Knowledge::NonClairvoyant {
                initial_estimate: DEFAULT_INITIAL_ESTIMATE
            }
        );
    }

    const OPEN: &str = r#"{
        "name": "open",
        "policies": ["backfill-easy"],
        "executors": ["des-online"],
        "platforms": [{"name": "m64", "m": 64}],
        "workloads": [
            {"name": "rho-0.9", "source": {"Open": {
                "stream": {
                    "rho": 0.9,
                    "arrival": "Poisson",
                    "classes": [
                        {"name": "narrow", "mix": 3.0,
                         "width": {"Fixed": 1.0}, "service_s": {"Exp": 120.0}}
                    ]
                },
                "stop_completions": 1000
            }}}
        ]
    }"#;

    #[test]
    fn open_entries_parse_with_defaults_and_round_trip() {
        let spec: CampaignSpec = serde_json::from_str(OPEN).expect("parses");
        let WorkloadSource::Open(open) = &spec.workloads[0].source else {
            panic!("open source expected");
        };
        assert_eq!(open.stop_completions, 1000);
        assert_eq!(open.horizon_s, None);
        assert_eq!(open.warmup, OpenEntry::DEFAULT_WARMUP);
        assert_eq!(open.batches, OpenEntry::DEFAULT_BATCHES);
        spec.validate().expect("valid");
        let back: CampaignSpec =
            serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn open_entries_demand_a_uniform_des_online_campaign() {
        // Mixing open and finite entries is rejected.
        let mut spec: CampaignSpec = serde_json::from_str(OPEN).unwrap();
        spec.workloads.push(WorkloadEntry {
            name: "finite".into(),
            source: WorkloadSource::Family {
                family: "fig2-sequential".into(),
                n: 5,
            },
            seed: None,
        });
        assert!(spec.validate().unwrap_err().0.contains("cannot mix"));
        // Any executor list other than exactly [des-online] is rejected.
        let mut spec: CampaignSpec = serde_json::from_str(OPEN).unwrap();
        spec.executors = vec![Executor::Direct];
        assert!(spec.validate().unwrap_err().0.contains("des-online"));
        let mut spec: CampaignSpec = serde_json::from_str(OPEN).unwrap();
        spec.executors = vec![Executor::DesOnline, Executor::Direct];
        assert!(spec.validate().is_err());
        // Offline releases would collapse the stream into one batch.
        let mut spec: CampaignSpec = serde_json::from_str(OPEN).unwrap();
        spec.ctx.release_mode = ReleaseMode::Offline;
        assert!(spec.validate().unwrap_err().0.contains("release_mode"));
    }

    #[test]
    fn open_entry_knobs_are_validated() {
        let mut spec: CampaignSpec = serde_json::from_str(OPEN).unwrap();
        {
            let WorkloadSource::Open(open) = &mut spec.workloads[0].source else {
                unreachable!()
            };
            open.stream.rho = 1.5; // stream validation is surfaced too
            open.stop_completions = 0;
            open.batches = 1;
            open.horizon_s = Some(-3.0);
            open.warmup = WarmupSpec::Fraction(1.0);
        }
        let msg = spec.validate().unwrap_err().0;
        for needle in ["rho", "stop_completions", "batches", "horizon_s", "warmup"] {
            assert!(msg.contains(needle), "`{needle}` missing from: {msg}");
        }
    }

    #[test]
    fn splitmix_seeds_are_order_insensitive_and_spread() {
        let rep = ReplicationSpec {
            base_seed: 7,
            replications: 4,
            derivation: SeedDerivation::SplitMix,
        };
        let entry = |name: &str| WorkloadEntry {
            name: name.into(),
            source: WorkloadSource::Family {
                family: "fig2-sequential".into(),
                n: 5,
            },
            seed: None,
        };
        let a = rep.seeds_for(&entry("alpha"));
        let b = rep.seeds_for(&entry("beta"));
        // Pure function of (base, name, rep): recomputing any single rep
        // in isolation gives the same seed.
        let rep1 = ReplicationSpec {
            replications: 2,
            ..rep
        };
        assert_eq!(&a[..2], &rep1.seeds_for(&entry("alpha"))[..]);
        // Distinct names and reps give fully distinct seeds.
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn sequential_and_explicit_seeds() {
        let rep = ReplicationSpec {
            base_seed: 100,
            replications: 3,
            derivation: SeedDerivation::Sequential,
        };
        let mut entry = WorkloadEntry {
            name: "w".into(),
            source: WorkloadSource::SwfFile("t.swf".into()),
            seed: None,
        };
        assert_eq!(rep.seeds_for(&entry), vec![100, 101, 102]);
        entry.seed = Some(7);
        assert_eq!(rep.seeds_for(&entry), vec![7], "explicit seed wins");
    }

    #[test]
    fn fnv_and_splitmix_are_stable() {
        // Pinned values: cache keys and derived seeds must never drift
        // across refactors, or every shard silently invalidates.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
