//! Built-in campaign specs: the historical experiment binaries as data.
//!
//! `models_compare`, `guarantees` and `fig2` are thin wrappers over these
//! constructors — each binary builds its spec(s), calls
//! [`run_campaign`](crate::campaign::run_campaign), and keeps only its
//! bespoke table/advisor presentation. The specs pin the *exact* workload
//! names, seeds and orderings of the hand-rolled sweeps (sequential seed
//! derivation, explicit per-seed entries where the historical loop
//! interleaved series), so the emitted CSVs are byte-identical to the
//! pre-campaign binaries.

use lsps_core::policy::ReleaseMode;
use lsps_workload::WorkloadSpec;

use crate::runner::Executor;
use crate::spec::{
    CampaignSpec, PlatformSpec, ReplicationSpec, SeedDerivation, WorkloadEntry, WorkloadSource,
};

fn family(name: &str, n: usize) -> WorkloadSource {
    WorkloadSource::Family {
        family: name.into(),
        n,
    }
}

/// FIG2 — one policy (`bicriteria`), the two Fig. 2 job populations ×
/// n = 50..1000 × 10 seeds, m = 100. Entries carry explicit seeds in the
/// historical interleaving (per n: per seed: non-parallel, then parallel),
/// reproducing the original CSV row order exactly.
pub fn fig2_spec() -> CampaignSpec {
    const M: usize = 100;
    const SEEDS: u64 = 10;
    const NS: [usize; 11] = [50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
    let mut spec = CampaignSpec::new("fig2");
    spec.policies = vec!["bicriteria".into()];
    spec.platforms = vec![PlatformSpec {
        name: "fig2".into(),
        m: M,
        speeds: None,
    }];
    for &n in &NS {
        for seed in 0..SEEDS {
            for (series, fam) in [
                ("Non Parallel", "fig2-sequential"),
                ("Parallel", "fig2-parallel"),
            ] {
                spec.workloads.push(WorkloadEntry {
                    name: format!("{series}/{n}"),
                    source: family(fam, n),
                    seed: Some(1000 + seed),
                });
            }
        }
    }
    spec
}

/// TAB-P — the advisor's five policy choices × the three application
/// classes × every executor on the Fig. 2 machine, in the given release
/// mode. One spec per mode; the binary runs both.
pub fn models_compare_spec(mode: ReleaseMode) -> CampaignSpec {
    const M: usize = 100;
    const N: usize = 400;
    const SEED: u64 = 7;
    let mode_name = match mode {
        ReleaseMode::Offline => "offline",
        ReleaseMode::Online => "online",
    };
    let mut spec = CampaignSpec::new(format!("models-compare-{mode_name}"));
    spec.policies = vec![
        "list-wspt".into(),
        "backfill-easy".into(),
        "smart-weighted".into(),
        "batch-mrt".into(),
        "bicriteria".into(),
    ];
    spec.executors = Executor::ALL.to_vec();
    spec.platforms = vec![PlatformSpec {
        name: "fig2".into(),
        m: M,
        speeds: None,
    }];
    spec.workloads = vec![
        WorkloadEntry {
            name: "SequentialBag".into(),
            source: WorkloadSource::Spec(WorkloadSpec::fig2_sequential(N)),
            seed: Some(SEED),
        },
        WorkloadEntry {
            name: "Rigid".into(),
            source: family("fig2-rigid", N),
            seed: Some(SEED),
        },
        WorkloadEntry {
            name: "Moldable".into(),
            source: WorkloadSource::Spec(WorkloadSpec::fig2_parallel(N)),
            seed: Some(SEED),
        },
    ];
    spec.ctx.release_mode = mode;
    spec
}

/// TAB-G — one claim at one machine size: `policy` over `seeds` sequential
/// replications of the named instance family (the historical
/// `seed_base + k` streams) on an `m`-processor platform.
pub fn guarantees_spec(
    policy: &str,
    family_name: &str,
    seed_base: u64,
    seeds: usize,
    m: usize,
    n: usize,
) -> CampaignSpec {
    let mut spec = CampaignSpec::new(format!("guarantees-{policy}-{family_name}-m{m}"));
    spec.policies = vec![policy.into()];
    spec.platforms = vec![PlatformSpec {
        name: format!("m{m}"),
        m,
        speeds: None,
    }];
    spec.workloads = vec![WorkloadEntry {
        name: format!("{family_name}-n{n}"),
        source: family(family_name, n),
        seed: None,
    }];
    spec.replication = ReplicationSpec {
        base_seed: seed_base,
        replications: seeds,
        derivation: SeedDerivation::Sequential,
    };
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_validate() {
        fig2_spec().validate().expect("fig2");
        for mode in [ReleaseMode::Offline, ReleaseMode::Online] {
            models_compare_spec(mode).validate().expect("models");
        }
        guarantees_spec("mrt", "moldable0", 0, 12, 64, 40)
            .validate()
            .expect("guarantees");
    }

    #[test]
    fn fig2_grid_shape() {
        let spec = fig2_spec();
        assert_eq!(spec.workloads.len(), 11 * 10 * 2);
        assert_eq!(spec.cell_count(), 220);
        // Historical interleaving: per (n, seed), non-parallel then
        // parallel, with the explicit 1000-based seeds.
        assert_eq!(spec.workloads[0].name, "Non Parallel/50");
        assert_eq!(spec.workloads[0].seed, Some(1000));
        assert_eq!(spec.workloads[1].name, "Parallel/50");
        assert_eq!(spec.workloads[1].seed, Some(1000));
        assert_eq!(spec.workloads[2].name, "Non Parallel/50");
        assert_eq!(spec.workloads[2].seed, Some(1001));
    }

    #[test]
    fn models_compare_grid_shape() {
        let spec = models_compare_spec(ReleaseMode::Online);
        // 5 policies × 3 executors × 3 workloads × 1 platform.
        assert_eq!(spec.cell_count(), 45);
        assert_eq!(spec.executors, Executor::ALL.to_vec());
    }
}
