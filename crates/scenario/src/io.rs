//! Result-file plumbing: the `results/` directory and atomic writes.

use std::fs;
use std::path::{Path, PathBuf};

/// Resolve (and create) the results directory: the nearest ancestor of the
/// current directory that looks like the workspace root (has `Cargo.toml`
/// and `crates/`), falling back to the current directory, so experiment
/// binaries work from any crate directory.
pub fn results_dir() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let base = cwd
        .ancestors()
        .find(|c| c.join("Cargo.toml").exists() && c.join("crates").exists())
        .unwrap_or(&cwd)
        .to_path_buf();
    let dir = base.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Atomically write `content` to `dir/<name>`: the bytes go to a hidden
/// sibling temp file first and land under the final name via `rename`, so a
/// reader (or a crash mid-write) never observes a torn or half-replaced
/// file — long sweeps re-running into the same `results/` replace each CSV
/// in one step instead of truncating it for the duration of the write.
pub fn write_file_atomic(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    // Per-process temp name: two concurrent writers of the same CSV must
    // not share a staging file, or one could publish the other's torn
    // half-write — last rename wins instead.
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    fs::write(&tmp, content).expect("write temp results file");
    fs::rename(&tmp, &path).expect("rename temp results file into place");
    path
}

/// Names of the plain files in `dir`, sorted. Robust against the stray
/// content a long-lived `results/` or cache directory accumulates:
/// unreadable entries and non-UTF-8 file names are skipped with a warning
/// on stderr instead of panicking the whole campaign, and subdirectories
/// are ignored.
pub fn list_file_names(dir: &Path) -> Vec<String> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("[warn] cannot list {}: {err}", dir.display());
            return Vec::new();
        }
    };
    let mut names = Vec::new();
    for entry in entries {
        let entry = match entry {
            Ok(entry) => entry,
            Err(err) => {
                eprintln!(
                    "[warn] skipping unreadable entry in {}: {err}",
                    dir.display()
                );
                continue;
            }
        };
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        match entry.file_name().into_string() {
            Ok(name) => names.push(name),
            Err(bad) => eprintln!(
                "[warn] skipping non-UTF-8 file name {bad:?} in {}",
                dir.display()
            ),
        }
    }
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_wholesale_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("lsps-atomic-write-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let p1 = write_file_atomic(&dir, "out.csv", "first,version\n");
        assert_eq!(fs::read_to_string(&p1).unwrap(), "first,version\n");
        // Re-writing the same name replaces the content in one step…
        let p2 = write_file_atomic(&dir, "out.csv", "second\n");
        assert_eq!(p1, p2);
        assert_eq!(fs::read_to_string(&p2).unwrap(), "second\n");
        // …and no staging file outlives the call.
        let leftovers: Vec<_> = list_file_names(&dir)
            .into_iter()
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn listing_survives_bogus_directory_entries() {
        // Regression: directory listings once double-unwrapped read_dir
        // entries and file-name UTF-8 conversion, so one stray file could
        // panic a whole campaign. Bad entries must be skipped, not fatal.
        let dir = std::env::temp_dir().join(format!("lsps-list-bogus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        fs::write(dir.join("good.json"), "{}").unwrap();
        fs::create_dir_all(dir.join("subdir")).unwrap();
        #[cfg(unix)]
        {
            use std::ffi::OsStr;
            use std::os::unix::ffi::OsStrExt;
            // 0xFF is never valid UTF-8: the classic stray-file name.
            let bogus = dir.join(OsStr::from_bytes(b"bogus-\xff\xfe.json"));
            fs::write(&bogus, "junk").unwrap();
        }
        let names = list_file_names(&dir);
        assert_eq!(names, vec!["good.json".to_string()]);
        // A missing directory is an empty listing, not a panic.
        assert!(list_file_names(&dir.join("nope")).is_empty());
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
