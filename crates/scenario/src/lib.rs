//! Declarative experiment campaigns — the paper's policy × application
//! comparison as *data*.
//!
//! The crate has two layers:
//!
//! * [`runner`] — the imperative core: [`runner::ExperimentRunner`] crosses
//!   policies × workloads × platforms through one code path and one CSV
//!   schema, fanning independent cells over a worker pool. Experiment
//!   binaries that need full control (custom workload closures, bespoke
//!   table layouts) use it directly.
//! * [`spec`] / [`campaign`] — the declarative layer on top: a serde-backed
//!   [`spec::CampaignSpec`] names policy sets (resolved through
//!   `lsps_core::policy::by_name`), platform families, workload families
//!   (synthetic generator specs, named [`families`], and SWF/JSONL trace
//!   files) and a replication block; [`campaign::run_campaign`] expands the
//!   grid into runner cells, skips cells already present in the
//!   content-addressed [`cache`], executes the rest through the existing
//!   thread pool, and aggregates replications into per-group statistics
//!   (a second CSV alongside the raw per-cell one).
//!
//! The `lsps-campaign` binary is the CLI over the declarative layer; the
//! `models_compare`, `guarantees` and `fig2` binaries are thin wrappers
//! over the built-in specs in [`campaign::builtin`].

pub mod cache;
pub mod campaign;
pub mod families;
mod io;
pub mod runner;
pub mod spec;
mod table;

pub use campaign::{
    run_campaign, CampaignError, CampaignOptions, CampaignPlan, CampaignReport, PlannedCell,
};
pub use io::{list_file_names, results_dir, write_file_atomic};
pub use runner::{
    des_online_open, des_online_volatile, Cell, Executor, ExperimentRunner, FailurePlan,
    OpenOutcome, PlatformCase, VolatileOutcome, VolatilityCase, WorkloadCase,
};
pub use spec::{CampaignSpec, FailureEntry, OpenEntry};
pub use table::Table;
