//! Parallel-time profiles for moldable tasks.
//!
//! The PT model folds every parallel-execution cost (data distribution,
//! synchronisation, preemption…) into a *global penalty factor* (§4 of the
//! paper). A [`SpeedupModel`] is an analytic shape for that penalty; a
//! [`MoldableProfile`] is the resulting table `p(k)` of execution times for
//! `k = 1..=k_max` processors.
//!
//! Every profile satisfies the two standard monotony assumptions used by the
//! MRT algorithm and most moldable-task theory:
//!
//! 1. **time monotony** — `p(k)` is non-increasing in `k` (a job may always
//!    leave extra processors idle), and
//! 2. **work monotony** — `w(k) = k·p(k)` is non-decreasing in `k`
//!    (parallelisation never comes for free).
//!
//! Models whose raw formula violates either (e.g. a communication penalty
//! that eventually dominates) are *clamped* into the feasible band at
//! construction, which is exactly the "use fewer processors and idle the
//! rest" interpretation.

use serde::{Deserialize, Serialize};

use lsps_des::Dur;

/// Analytic penalty shapes for parallel execution time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpeedupModel {
    /// Ideal linear speedup: `p(k) = seq / k`.
    Linear,
    /// Amdahl's law with sequential fraction `f`:
    /// `p(k) = seq · (f + (1-f)/k)`.
    Amdahl {
        /// Non-parallelisable fraction, in `[0, 1]`.
        seq_fraction: f64,
    },
    /// Power-law (Downey-style) speedup: `p(k) = seq / k^sigma`,
    /// `sigma ∈ [0, 1]`; `sigma = 1` is linear, `sigma = 0` no speedup.
    PowerLaw {
        /// Parallelism exponent.
        sigma: f64,
    },
    /// Linear speedup plus a per-processor management overhead — the
    /// paper's "global penalty factor" in its simplest affine form:
    /// `p(k) = seq/k + overhead·(k-1)` where `overhead` is a fraction of
    /// `seq` per extra processor.
    CommPenalty {
        /// Overhead per additional processor, as a fraction of `seq`.
        overhead: f64,
    },
}

impl SpeedupModel {
    /// Raw (un-clamped) relative time at `k` processors, as a fraction of
    /// the sequential time. `k >= 1`.
    pub fn relative_time(&self, k: usize) -> f64 {
        assert!(k >= 1);
        let kf = k as f64;
        match *self {
            SpeedupModel::Linear => 1.0 / kf,
            SpeedupModel::Amdahl { seq_fraction } => {
                assert!((0.0..=1.0).contains(&seq_fraction));
                seq_fraction + (1.0 - seq_fraction) / kf
            }
            SpeedupModel::PowerLaw { sigma } => {
                assert!((0.0..=1.0).contains(&sigma));
                kf.powf(-sigma)
            }
            SpeedupModel::CommPenalty { overhead } => {
                assert!(overhead >= 0.0);
                1.0 / kf + overhead * (kf - 1.0)
            }
        }
    }
}

/// Execution-time profile of a moldable task: `time(k)` for
/// `k = 1..=max_procs`, monotone per the module invariants.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoldableProfile {
    /// `times[k-1]` = execution time on `k` processors.
    times: Vec<Dur>,
}

impl MoldableProfile {
    /// Build from explicit times, clamping into the monotone band:
    /// `p(k) := min(p(k-1), max(raw(k), ceil((k-1)·p(k-1)/k)))`.
    ///
    /// # Panics
    /// If `times` is empty or contains a zero sequential time.
    pub fn from_times(times: Vec<Dur>) -> Self {
        assert!(!times.is_empty(), "profile needs at least k = 1");
        assert!(times[0] > Dur::ZERO, "sequential time must be positive");
        let mut clamped = Vec::with_capacity(times.len());
        clamped.push(times[0]);
        for k in 2..=times.len() {
            let prev: Dur = clamped[k - 2];
            // Work monotony floor: k·p(k) >= (k-1)·p(k-1).
            let floor = prev.saturating_mul(k as u64 - 1).div_ceil(k as u64);
            let raw = times[k - 1];
            clamped.push(raw.max(floor).min(prev));
        }
        MoldableProfile { times: clamped }
    }

    /// Build from a sequential time and an analytic model, for
    /// `k = 1..=max_procs`. Times are rounded *up* to whole ticks
    /// (conservative for guarantees), then clamped monotone.
    pub fn from_model(seq: Dur, model: &SpeedupModel, max_procs: usize) -> Self {
        assert!(max_procs >= 1);
        assert!(seq > Dur::ZERO);
        let times = (1..=max_procs)
            .map(|k| {
                seq.scale_ceil(model.relative_time(k))
                    .max(Dur::from_ticks(1))
            })
            .collect();
        MoldableProfile::from_times(times)
    }

    /// Largest admissible processor count.
    pub fn max_procs(&self) -> usize {
        self.times.len()
    }

    /// Execution time on `k` processors (`1 <= k <= max_procs`).
    pub fn time(&self, k: usize) -> Dur {
        assert!(
            k >= 1 && k <= self.times.len(),
            "allotment {k} outside profile 1..={}",
            self.times.len()
        );
        self.times[k - 1]
    }

    /// Sequential time `p(1)`.
    pub fn seq_time(&self) -> Dur {
        self.times[0]
    }

    /// Shortest achievable time (`p(max_procs)` by time monotony).
    pub fn min_time(&self) -> Dur {
        *self.times.last().expect("non-empty profile")
    }

    /// Work (processor-time product) at `k` processors.
    pub fn work(&self, k: usize) -> Dur {
        self.time(k).saturating_mul(k as u64)
    }

    /// The *minimal* allotment achieving `time(k) <= limit` — the γ(j, λ)
    /// selection at the heart of the MRT algorithm (\[8\] in the paper): by
    /// work monotony it is also the allotment of minimal work meeting the
    /// deadline. `None` when even `max_procs` cannot meet it.
    pub fn min_allotment_within(&self, limit: Dur) -> Option<usize> {
        // `times` is non-increasing: binary search for the first k meeting
        // the limit.
        if self.min_time() > limit {
            return None;
        }
        let (mut lo, mut hi) = (1usize, self.times.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.time(mid) <= limit {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Restrict the profile to at most `k_max` processors (e.g. the size of
    /// the target cluster).
    pub fn truncated(&self, k_max: usize) -> MoldableProfile {
        assert!(k_max >= 1);
        let k = k_max.min(self.times.len());
        MoldableProfile {
            times: self.times[..k].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn linear_model_halves() {
        let p = MoldableProfile::from_model(d(1000), &SpeedupModel::Linear, 4);
        assert_eq!(p.time(1), d(1000));
        assert_eq!(p.time(2), d(500));
        // k=3 rounds up to 334 ticks (work 1002), so the work-monotony floor
        // lifts k=4 from the exact 250 to 251 — integer rounding is always
        // conservative, never optimistic.
        assert_eq!(p.time(3), d(334));
        assert_eq!(p.time(4), d(251));
        // Work stays within one rounding step of constant.
        assert!(p.work(4) >= p.work(1));
        assert!(p.work(4).ticks() <= p.work(1).ticks() + 4);
    }

    #[test]
    fn amdahl_floors_at_serial_fraction() {
        let m = SpeedupModel::Amdahl { seq_fraction: 0.25 };
        let p = MoldableProfile::from_model(d(1000), &m, 64);
        assert_eq!(p.time(1), d(1000));
        assert!(p.time(64) >= d(250), "cannot beat the sequential fraction");
        assert!(p.time(64) < d(280));
    }

    #[test]
    fn powerlaw_relative_times() {
        let m = SpeedupModel::PowerLaw { sigma: 0.5 };
        assert!((m.relative_time(4) - 0.5).abs() < 1e-12);
        let none = SpeedupModel::PowerLaw { sigma: 0.0 };
        assert_eq!(none.relative_time(16), 1.0);
    }

    #[test]
    fn comm_penalty_clamped_monotone() {
        // With a harsh penalty, the raw formula grows for large k; the
        // profile must stay non-increasing (idle the extras).
        let m = SpeedupModel::CommPenalty { overhead: 0.2 };
        let p = MoldableProfile::from_model(d(1000), &m, 32);
        for k in 2..=32 {
            assert!(p.time(k) <= p.time(k - 1), "time monotone at k={k}");
        }
        // And the useful parallelism saturates: beyond the optimum the time
        // is flat, equal to the best achievable.
        let best = (1..=32).map(|k| p.time(k)).min().unwrap();
        assert_eq!(p.min_time(), best);
    }

    #[test]
    fn monotony_invariants_from_arbitrary_table() {
        let p = MoldableProfile::from_times(vec![d(100), d(95), d(20), d(200)]);
        for k in 2..=p.max_procs() {
            assert!(p.time(k) <= p.time(k - 1), "time monotone at k={k}");
            assert!(p.work(k) >= p.work(k - 1), "work monotone at k={k}");
        }
        // Work floor lifted k=3's unrealistically good 20 up to ≥ ceil(2·95/3).
        assert!(p.time(3) >= d(64));
    }

    #[test]
    fn min_allotment_is_minimal() {
        let p = MoldableProfile::from_times(vec![d(100), d(60), d(40), d(30)]);
        assert_eq!(p.min_allotment_within(d(100)), Some(1));
        assert_eq!(p.min_allotment_within(d(60)), Some(2));
        assert_eq!(p.min_allotment_within(d(59)), Some(3));
        assert_eq!(p.min_allotment_within(d(30)), Some(4));
        assert_eq!(p.min_allotment_within(d(29)), None);
    }

    #[test]
    fn truncation() {
        let p = MoldableProfile::from_model(d(1000), &SpeedupModel::Linear, 16);
        let t = p.truncated(4);
        assert_eq!(t.max_procs(), 4);
        assert_eq!(t.time(4), p.time(4));
        let same = p.truncated(100);
        assert_eq!(same.max_procs(), 16);
    }

    #[test]
    #[should_panic]
    fn empty_profile_rejected() {
        MoldableProfile::from_times(vec![]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_allotment_panics() {
        MoldableProfile::from_times(vec![d(10)]).time(2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn model_strategy() -> impl Strategy<Value = SpeedupModel> {
        prop_oneof![
            Just(SpeedupModel::Linear),
            (0.0f64..=1.0).prop_map(|f| SpeedupModel::Amdahl { seq_fraction: f }),
            (0.0f64..=1.0).prop_map(|s| SpeedupModel::PowerLaw { sigma: s }),
            (0.0f64..0.5).prop_map(|o| SpeedupModel::CommPenalty { overhead: o }),
        ]
    }

    proptest! {
        /// Both monotony invariants hold for every model, seq time, k_max.
        #[test]
        fn profiles_always_monotone(
            model in model_strategy(),
            seq in 1u64..1_000_000,
            kmax in 1usize..128,
        ) {
            let p = MoldableProfile::from_model(Dur::from_ticks(seq), &model, kmax);
            for k in 2..=p.max_procs() {
                prop_assert!(p.time(k) <= p.time(k - 1));
                prop_assert!(p.work(k) >= p.work(k - 1));
            }
            prop_assert_eq!(p.seq_time(), p.time(1));
        }

        /// min_allotment_within returns the smallest feasible k.
        #[test]
        fn min_allotment_minimality(
            times in prop::collection::vec(1u64..10_000, 1..64),
            limit in 1u64..10_000,
        ) {
            let p = MoldableProfile::from_times(
                times.into_iter().map(Dur::from_ticks).collect());
            let limit = Dur::from_ticks(limit);
            match p.min_allotment_within(limit) {
                Some(k) => {
                    prop_assert!(p.time(k) <= limit);
                    if k > 1 {
                        prop_assert!(p.time(k - 1) > limit);
                    }
                }
                None => prop_assert!(p.min_time() > limit),
            }
        }
    }
}
