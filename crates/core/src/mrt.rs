//! MRT — the two-shelf dual-approximation algorithm for off-line moldable
//! makespan (§4.1 of the paper; ref \[8\] Dutot–Mounié–Trystram, after
//! Mounié–Rastello–Trystram).
//!
//! "The MRT algorithm has a performance ratio of 3/2 + ε. It is obtained by
//! stacking two shelves of respective sizes λ and λ/2 where λ is a guess of
//! the optimal value C*max. This guess is computed by a dual approximation
//! scheme. A binary search on λ allows us to refine the guess with an
//! arbitrary accuracy ε."
//!
//! For a guess λ the dual-approximation test uses exactly the paper's
//! certificate constraints (§4.1): in an optimal schedule of length λ,
//!
//! * every job fits: `p_j(nbproc(j)) ≤ λ`,
//! * the total work fits: `Σ w_j ≤ λ·m`,
//! * jobs longer than λ/2 occupy at most `m` processors simultaneously.
//!
//! Construction for a guess λ:
//!
//! 1. every job gets its *canonical allotments* `k1 = γ(j, λ)` (minimal
//!    processors achieving `p ≤ λ`) and `k2 = γ(j, λ/2)` — by work
//!    monotony these are also the work-minimal choices;
//! 2. a 0/1 knapsack chooses which jobs go to the big shelf **S1**
//!    (length ≤ λ, at most `m` processors total) so that total work is
//!    minimal — moving a job to S1 saves `w(k2) − w(k1) ≥ 0` work at the
//!    price of `k1` shelf-width;
//! 3. reject λ if some job cannot meet it or the minimal work exceeds λ·m
//!    (dual-approximation failure: λ < C*max);
//! 4. S1 starts at 0; S2 jobs (length ≤ λ/2) are stacked greedily above
//!    the S1 staircase with the hard deadline 3λ/2 — if the stacking
//!    overflows, λ is rejected and the search continues upward.
//!
//! The binary search maintains the invariant that the returned schedule has
//! makespan ≤ (3/2)·λ* for the smallest accepted guess λ*, and λ* converges
//! within a (1+ε) factor. With the exact repair phases of \[8\] the accepted
//! set is precisely {λ ≥ C*max}, giving 3/2 + ε; our stacking step is the
//! practical variant of that repair — its empirical ratio is measured
//! against certified lower bounds by the `guarantees` experiment (TAB-G)
//! and stays within the proven envelope on every tested instance.

use lsps_des::{Dur, Time};
use lsps_metrics::cmax_lower_bound;
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobKind};

use crate::schedule::Schedule;

/// Tuning of the dual-approximation search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrtParams {
    /// Relative accuracy ε of the binary search on λ (> 0).
    pub eps: f64,
}

impl Default for MrtParams {
    fn default() -> Self {
        MrtParams { eps: 0.01 }
    }
}

/// Minimal allotment and its work for `job` to finish within `limit`,
/// or `None` if impossible on `m` processors.
fn allotment_within(job: &Job, m: usize, limit: Dur) -> Option<(usize, Dur)> {
    match &job.kind {
        JobKind::Rigid { procs, len } => {
            (*procs <= m && *len <= limit).then(|| (*procs, len.saturating_mul(*procs as u64)))
        }
        JobKind::Moldable { profile } | JobKind::Malleable { profile } => {
            let p = profile.truncated(m);
            let k = p.min_allotment_within(limit)?;
            Some((k, p.work(k)))
        }
        JobKind::Divisible { .. } => panic!("MRT does not schedule divisible jobs"),
    }
}

/// One dual-approximation attempt at guess λ (ticks). Returns the
/// constructed two-shelf schedule or `None` when λ is rejected.
fn try_lambda(jobs: &[Job], m: usize, lambda: u64) -> Option<Schedule> {
    let lam = Dur::from_ticks(lambda);
    let half = Dur::from_ticks(lambda / 2);
    let budget = (lambda as u128) * (m as u128);

    // Canonical allotments. `s1` entries are (job index, k1, w1);
    // candidates may instead run in S2 with (k2, w2).
    struct Entry {
        idx: usize,
        k1: usize,
        w1: Dur,
        /// `Some` when the job can finish within λ/2.
        short: Option<(usize, Dur)>,
    }
    let mut entries = Vec::with_capacity(jobs.len());
    for (idx, job) in jobs.iter().enumerate() {
        let (k1, w1) = allotment_within(job, m, lam)?; // reject: job can't meet λ
        let short = allotment_within(job, m, half);
        entries.push(Entry { idx, k1, w1, short });
    }

    // Forced S1 occupancy (jobs that cannot fit in λ/2).
    let forced_width: usize = entries
        .iter()
        .filter(|e| e.short.is_none())
        .map(|e| e.k1)
        .sum();
    if forced_width > m {
        return None; // more than m processors of >λ/2 jobs: λ < C*max
    }
    let cap = m - forced_width;

    // Knapsack over the candidates: maximize work savings within width cap.
    let candidates: Vec<&Entry> = entries.iter().filter(|e| e.short.is_some()).collect();
    let n = candidates.len();
    // dp[b] = max total savings with shelf-width budget b; take[i][b] = did
    // item i enter at budget b.
    let mut dp = vec![0u64; cap + 1];
    let mut take = vec![false; n * (cap + 1)];
    for (i, e) in candidates.iter().enumerate() {
        let (_, w2) = e.short.expect("candidate");
        let saving = (w2 - e.w1).ticks();
        let cost = e.k1;
        if cost > cap || saving == 0 {
            continue;
        }
        for b in (cost..=cap).rev() {
            let with = dp[b - cost] + saving;
            if with > dp[b] {
                dp[b] = with;
                take[i * (cap + 1) + b] = true;
            }
        }
    }
    // Reconstruct the chosen S1 subset.
    let mut in_s1 = vec![false; n];
    let mut b = cap;
    for i in (0..n).rev() {
        if take[i * (cap + 1) + b] {
            in_s1[i] = true;
            b -= candidates[i].k1;
        }
    }

    // Final partition and the work certificate.
    let mut s1: Vec<(usize, usize, Dur)> = Vec::new(); // (job idx, k, p(k))
    let mut s2: Vec<(usize, usize, Dur)> = Vec::new();
    let mut total_work: u128 = 0;
    for e in &entries {
        if e.short.is_none() {
            total_work += e.w1.ticks() as u128;
            s1.push((e.idx, e.k1, jobs[e.idx].time_on(e.k1)));
        }
    }
    for (i, e) in candidates.iter().enumerate() {
        if in_s1[i] {
            total_work += e.w1.ticks() as u128;
            s1.push((e.idx, e.k1, jobs[e.idx].time_on(e.k1)));
        } else {
            let (k2, w2) = e.short.expect("candidate");
            total_work += w2.ticks() as u128;
            s2.push((e.idx, k2, jobs[e.idx].time_on(k2)));
        }
    }
    if total_work > budget {
        return None; // work certificate failed: λ < C*max
    }

    // Placement. S1 left-to-right at t = 0.
    let mut sched = Schedule::new(m);
    let mut free_at = vec![Time::ZERO; m]; // per-processor staircase
    s1.sort_by_key(|&(idx, k, _)| (std::cmp::Reverse(k), jobs[idx].id));
    let mut offset = 0usize;
    for &(idx, k, p) in &s1 {
        debug_assert!(offset + k <= m);
        sched.place(&jobs[idx], Time::ZERO, ProcSet::range(offset, offset + k));
        for f in &mut free_at[offset..offset + k] {
            *f = Time::ZERO + p;
        }
        offset += k;
    }

    // S2 greedily above the staircase, hard deadline 3λ/2.
    let deadline = Time::ZERO + lam + half;
    s2.sort_by_key(|&(idx, k, _)| (std::cmp::Reverse(k), jobs[idx].id));
    let mut by_free: Vec<usize> = (0..m).collect();
    for &(idx, k, p) in &s2 {
        by_free.sort_by_key(|&i| (free_at[i], i));
        let chosen = &by_free[..k];
        let start = chosen.iter().map(|&i| free_at[i]).max().expect("k >= 1");
        let end = start + p;
        if end > deadline {
            return None; // stacking overflow: escalate λ
        }
        sched.place(
            &jobs[idx],
            start,
            ProcSet::from_indices(chosen.iter().copied()),
        );
        for &i in chosen {
            free_at[i] = end;
        }
    }
    Some(sched)
}

/// Schedule moldable (and rigid) `jobs`, all released at 0, on `m`
/// identical processors; returns a schedule with makespan within
/// `3/2·(1+ε)` of the smallest λ the construction accepts (see module
/// docs).
///
/// ```
/// use lsps_core::mrt::{mrt_schedule, MrtParams};
/// use lsps_des::Dur;
/// use lsps_workload::{Job, MoldableProfile, SpeedupModel};
///
/// let profile = MoldableProfile::from_model(
///     Dur::from_secs(100),
///     &SpeedupModel::Amdahl { seq_fraction: 0.1 },
///     8,
/// );
/// let jobs = vec![Job::moldable(0, profile.clone()), Job::moldable(1, profile)];
/// let schedule = mrt_schedule(&jobs, 8, MrtParams::default());
/// assert!(schedule.validate(&jobs).is_ok());
/// ```
///
/// # Panics
/// If a job has a non-zero release date (wrap with [`crate::batch`]),
/// a rigid job is wider than `m`, or `jobs` contains a divisible load.
pub fn mrt_schedule(jobs: &[Job], m: usize, params: MrtParams) -> Schedule {
    mrt_schedule_with_lambda(jobs, m, params).0
}

/// Like [`mrt_schedule`], also returning the accepted guess λ* (ticks).
/// The construction invariant `makespan ≤ 3λ*/2` always holds and is what
/// the dual-approximation guarantee rests on; the `guarantees` experiment
/// additionally measures makespan against certified lower bounds.
pub fn mrt_schedule_with_lambda(jobs: &[Job], m: usize, params: MrtParams) -> (Schedule, u64) {
    assert!(params.eps > 0.0, "ε must be positive");
    assert!(
        jobs.iter().all(|j| j.release == Time::ZERO),
        "mrt_schedule is off-line: wrap with batch_online for release dates"
    );
    if jobs.is_empty() {
        return (Schedule::new(m), 0);
    }

    // Bracket λ*: lower bound from the area/tallest certificate, upper
    // bound by doubling until accepted.
    let lb = cmax_lower_bound(jobs, m).ticks().max(1);
    let mut lo = lb;
    let mut hi = lb;
    let mut best: Option<Schedule> = None;
    for _ in 0..64 {
        if let Some(s) = try_lambda(jobs, m, hi) {
            best = Some(s);
            break;
        }
        lo = hi + 1;
        hi = hi.saturating_mul(2);
    }
    let mut best = best.expect("doubling reaches a feasible λ (jobs fit the machine)");

    // Binary search down to relative accuracy ε.
    while (hi as f64) > (lo as f64) * (1.0 + params.eps) && lo < hi {
        let mid = lo + (hi - lo) / 2;
        match try_lambda(jobs, m, mid) {
            Some(s) => {
                best = s;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    (best, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::SimRng;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn amdahl(id: u64, seq: u64, f: f64, kmax: usize) -> Job {
        Job::moldable(
            id,
            MoldableProfile::from_model(d(seq), &SpeedupModel::Amdahl { seq_fraction: f }, kmax),
        )
    }

    #[test]
    fn single_job_uses_enough_procs() {
        let jobs = vec![amdahl(1, 1000, 0.0, 8)];
        let s = mrt_schedule(&jobs, 8, MrtParams::default());
        assert!(s.validate(&jobs).is_ok());
        // One job alone: ratio vs LB (min_time) must stay below 1.5(1+ε).
        let lb = cmax_lower_bound(&jobs, 8).ticks() as f64;
        let ratio = s.makespan().ticks() as f64 / lb;
        assert!(ratio <= 1.52, "ratio {ratio}");
    }

    #[test]
    fn identical_sequentialish_jobs_pack_tightly() {
        // m jobs of length L with no useful parallelism: OPT = L.
        let jobs: Vec<Job> = (0..8).map(|i| Job::sequential(i, d(100))).collect();
        let s = mrt_schedule(&jobs, 8, MrtParams::default());
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(s.makespan(), Time::from_ticks(100), "perfect pack");
    }

    #[test]
    fn ratio_bound_on_random_moldable_instances() {
        use crate::mrt::mrt_schedule_with_lambda;
        let mut rng = SimRng::seed_from(7);
        for trial in 0..12 {
            let m = [8usize, 16, 50][trial % 3];
            let n = 5 + (trial * 7) % 40;
            let jobs: Vec<Job> = (0..n)
                .map(|i| {
                    let seq = rng.int_range(50, 5000);
                    let f = rng.range(0.0, 0.3);
                    let kmax = rng.int_range(1, m as u64) as usize;
                    amdahl(i as u64, seq, f, kmax)
                })
                .collect();
            let (s, lambda) = mrt_schedule_with_lambda(&jobs, m, MrtParams::default());
            assert!(s.validate(&jobs).is_ok(), "trial {trial}");
            // Construction invariant: makespan ≤ 3λ*/2 exactly.
            assert!(
                s.makespan().ticks() as f64 <= 1.5 * lambda as f64 + 1.0,
                "trial {trial}: two-shelf invariant broken"
            );
            // Against the certified LOWER BOUND the ratio may exceed the
            // 3/2+ε guarantee (which is vs OPT ≥ LB); the LB gap on random
            // instances stays small, so 1.7 is a meaningful regression
            // guard (TAB-G records the actual distribution).
            let lb = cmax_lower_bound(&jobs, m).ticks() as f64;
            let ratio = s.makespan().ticks() as f64 / lb;
            assert!(
                ratio <= 1.7 + 1e-9,
                "trial {trial} (m={m}, n={n}): ratio {ratio}"
            );
        }
    }

    #[test]
    fn mixed_rigid_and_moldable() {
        let jobs = vec![
            Job::rigid(1, 3, d(200)),
            amdahl(2, 900, 0.1, 8),
            Job::rigid(3, 1, d(90)),
            amdahl(4, 400, 0.05, 4),
        ];
        let (s, lambda) = mrt_schedule_with_lambda(&jobs, 8, MrtParams::default());
        assert!(s.validate(&jobs).is_ok());
        assert!(s.makespan().ticks() as f64 <= 1.5 * lambda as f64 + 1.0);
        let lb = cmax_lower_bound(&jobs, 8).ticks() as f64;
        assert!(s.makespan().ticks() as f64 / lb <= 1.7);
    }

    #[test]
    fn tighter_eps_never_worse() {
        let mut rng = SimRng::seed_from(11);
        let jobs: Vec<Job> = (0..20)
            .map(|i| amdahl(i, rng.int_range(100, 2000), 0.1, 16))
            .collect();
        let loose = mrt_schedule(&jobs, 16, MrtParams { eps: 0.5 });
        let tight = mrt_schedule(&jobs, 16, MrtParams { eps: 0.001 });
        assert!(tight.makespan() <= loose.makespan());
    }

    #[test]
    fn knapsack_prefers_sequential_when_machine_is_scarce() {
        // Many jobs, small machine: shelving all at min-time allotments
        // would explode the work; the knapsack must keep most jobs narrow.
        let jobs: Vec<Job> = (0..20).map(|i| amdahl(i, 300, 0.0, 4)).collect();
        let s = mrt_schedule(&jobs, 4, MrtParams::default());
        assert!(s.validate(&jobs).is_ok());
        // Total work is 20×300 = 6000 ⇒ LB = 1500 on m=4; a work-oblivious
        // allotment (k=4 each) would serialize to ≥ 20×75=1500 as well but
        // the schedule must not exceed 1.5×(1+ε)×LB.
        let lb = cmax_lower_bound(&jobs, 4).ticks() as f64;
        assert!(s.makespan().ticks() as f64 / lb <= 1.52);
    }

    #[test]
    #[should_panic]
    fn release_dates_rejected() {
        let j = Job::sequential(1, d(10)).released_at(Time::from_ticks(5));
        mrt_schedule(&[j], 4, MrtParams::default());
    }

    #[test]
    fn empty_input_gives_empty_schedule() {
        let s = mrt_schedule(&[], 4, MrtParams::default());
        assert!(s.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lsps_workload::{MoldableProfile, SpeedupModel};
    use proptest::prelude::*;

    fn job_strategy(m: usize) -> impl Strategy<Value = (u64, f64, usize)> {
        (10u64..5_000, 0.0f64..0.4, 1usize..=m)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// On arbitrary moldable instances the MRT schedule validates and
        /// obeys the two-shelf invariant makespan <= 3λ*/2.
        #[test]
        fn mrt_valid_and_invariant(
            specs in prop::collection::vec(job_strategy(32), 1..30),
            m in 2usize..32,
        ) {
            let jobs: Vec<Job> = specs.iter().enumerate()
                .map(|(i, &(seq, f, kmax))| {
                    Job::moldable(i as u64, MoldableProfile::from_model(
                        Dur::from_ticks(seq),
                        &SpeedupModel::Amdahl { seq_fraction: f },
                        kmax.min(m),
                    ))
                })
                .collect();
            let (s, lambda) = mrt_schedule_with_lambda(&jobs, m, MrtParams::default());
            prop_assert_eq!(s.validate(&jobs), Ok(()));
            prop_assert!(s.makespan().ticks() <= lambda * 3 / 2 + 2,
                "invariant: {} > 1.5 × {lambda}", s.makespan().ticks());
            // λ* never sits below the certificate lower bound.
            let lb = cmax_lower_bound(&jobs, m).ticks();
            prop_assert!(lambda >= lb);
        }
    }
}
