//! FIG2 — regenerates Figure 2 of the paper.
//!
//! "A simulated implementation of a variation of the bi-criteria algorithm
//! has been realized […] the simulation assumed a cluster of 100 machines,
//! parallel and non-parallel jobs, and two criteria Cmax and Σ ωiCi."
//!
//! For n = 50..1000 tasks and the two job populations, this binary runs the
//! doubling-batch bi-criteria algorithm and reports the two ratios the
//! figure plots — Σ ωiCi and Cmax against the optimum, approximated from
//! below by certified lower bounds (the reported ratios upper-bound the
//! true ones; see DESIGN.md §2).
//!
//! Expected shape (paper): ratios between 1 and ~2.8, decreasing with the
//! number of tasks, the non-parallel series above the parallel one for
//! Σ ωiCi.

use lsps_bench::{write_csv, Table};
use lsps_core::{bicriteria_schedule, BiCriteriaParams};
use lsps_des::SimRng;
use lsps_metrics::{cmax_lower_bound, wsum_lower_bound, Criteria, Summary};
use lsps_workload::WorkloadSpec;

const M: usize = 100;
const SEEDS: u64 = 10;

fn run_point(n: usize, parallel: bool) -> (Summary, Summary) {
    let mut wici = Summary::new();
    let mut cmax = Summary::new();
    for seed in 0..SEEDS {
        let spec = if parallel {
            WorkloadSpec::fig2_parallel(n)
        } else {
            WorkloadSpec::fig2_sequential(n)
        };
        let mut rng = SimRng::seed_from(1000 + seed).child(n as u64);
        let jobs = spec.generate(M, &mut rng);
        let sched = bicriteria_schedule(&jobs, M, BiCriteriaParams::default());
        sched.validate(&jobs).expect("valid schedule");
        let crit = Criteria::evaluate(&sched.completed(&jobs));
        let wsum_lb = wsum_lower_bound(&jobs, M);
        let cmax_lb = cmax_lower_bound(&jobs, M).as_secs_f64();
        wici.add(crit.weighted_sum_completion / wsum_lb);
        cmax.add(crit.cmax / cmax_lb);
    }
    (wici, cmax)
}

fn main() {
    println!("FIG2 — bi-criteria simulation on {M} machines ({SEEDS} seeds/point)\n");
    let ns = [50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
    let mut table = Table::new(&[
        "n", "series", "WiCi ratio", "±", "Cmax ratio", "±",
    ]);
    let mut csv = String::from("n,series,wici_ratio_mean,wici_ratio_std,cmax_ratio_mean,cmax_ratio_std\n");
    for &n in &ns {
        for (parallel, name) in [(false, "Non Parallel"), (true, "Parallel")] {
            let (wici, cmax) = run_point(n, parallel);
            table.row(vec![
                n.to_string(),
                name.to_string(),
                format!("{:.3}", wici.mean()),
                format!("{:.3}", wici.std_dev()),
                format!("{:.3}", cmax.mean()),
                format!("{:.3}", cmax.std_dev()),
            ]);
            csv.push_str(&format!(
                "{n},{name},{:.6},{:.6},{:.6},{:.6}\n",
                wici.mean(),
                wici.std_dev(),
                cmax.mean(),
                cmax.std_dev()
            ));
        }
    }
    table.print();
    write_csv("fig2.csv", &csv);
    println!(
        "\npaper shape check: ratios should start high at small n and decrease \
         toward 1 as n grows (both plots of Fig. 2)."
    );
}
