//! Offline shim for `criterion`: the benchmark-definition API this
//! workspace uses (`criterion_group!`, `criterion_main!`, groups,
//! `bench_with_input`, `Bencher::iter`), backed by a simple
//! warmup-then-sample wall-clock harness that prints mean/min per
//! benchmark. No statistical analysis, plots or baselines — enough to
//! compare hot paths locally and to keep `cargo bench` runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `name/param`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build from a function name and a displayable parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Per-iteration timing callback target.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Filled by [`iter`](Bencher::iter).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly: brief warmup, then `sample_size` timed
    /// samples, each batching enough iterations to be clock-resolvable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size calibration.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / iters.max(1) as f64;
        // Aim each sample at measurement/sample_size seconds of work.
        let target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((target / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples — iter() not called)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    println!(
        "{name:<40} time: [mean {:>10}  min {:>10}]  ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        b.samples.len()
    );
}

/// A named set of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warmup budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &name.to_string(),
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
