//! The `lsps-worker` loop: read [`ToWorker`] requests line-by-line from
//! stdin, answer each with one [`FromWorker`] line on stdout.
//!
//! The worker is intentionally dumb: it holds the expanded
//! [`CampaignPlan`] per campaign id and runs whatever cell index the
//! daemon asks for, one at a time, single-threaded — parallelism is the
//! daemon's job (it runs N workers), and crash isolation is the whole
//! point of the process boundary. A worker that dies mid-cell loses only
//! that cell; the daemon reassigns it.
//!
//! For fault-injection tests, `LSPS_WORKER_FAULT=crash:<n>` exits the
//! process right before the n-th `Run` executes, and `hang:<n>` sleeps
//! long past any reasonable cell timeout instead. The daemon only passes
//! that environment to first-generation workers, so respawns run clean.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;

use lsps_scenario::{CampaignOptions, CampaignPlan};

use crate::protocol::{FromWorker, ToWorker};

/// Apply `LSPS_WORKER_FAULT` before the `runs`-th cell execution.
fn apply_fault(fault: &Option<String>, runs: usize) {
    let Some(f) = fault else { return };
    let Some((kind, n)) = f.split_once(':') else {
        return;
    };
    if n.parse() != Ok(runs) {
        return;
    }
    match kind {
        "crash" => std::process::exit(3),
        "hang" => std::thread::sleep(std::time::Duration::from_secs(3600)),
        _ => {}
    }
}

/// Serve requests from stdin until EOF (the daemon closing our stdin is
/// the shutdown signal).
pub fn worker_main() -> io::Result<()> {
    let fault = std::env::var("LSPS_WORKER_FAULT").ok();
    let mut runs = 0usize;
    let mut plans: HashMap<String, CampaignPlan> = HashMap::new();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<ToWorker>(&line) {
            Err(e) => FromWorker::Error {
                id: String::new(),
                cell: None,
                error: format!("unparseable request: {e}"),
            },
            Ok(ToWorker::Load { id, spec, base_dir }) => {
                let opts = CampaignOptions {
                    cache_dir: None,
                    threads: 1,
                    base_dir: base_dir.map(PathBuf::from),
                };
                match CampaignPlan::expand(&spec, &opts) {
                    Ok(plan) => {
                        let cells = plan.cells().len();
                        plans.insert(id.clone(), plan);
                        FromWorker::Loaded { id, cells }
                    }
                    Err(e) => FromWorker::Error {
                        id,
                        cell: None,
                        error: e.to_string(),
                    },
                }
            }
            Ok(ToWorker::Run { id, cell }) => {
                runs += 1;
                apply_fault(&fault, runs);
                match plans.get(&id) {
                    Some(plan) if cell < plan.cells().len() => FromWorker::Done {
                        id,
                        cell,
                        data: Box::new(plan.run_cell(cell)),
                    },
                    Some(plan) => FromWorker::Error {
                        id,
                        cell: Some(cell),
                        error: format!("cell {cell} out of range ({} cells)", plan.cells().len()),
                    },
                    None => FromWorker::Error {
                        id,
                        cell: Some(cell),
                        error: "campaign not loaded".into(),
                    },
                }
            }
        };
        writeln!(
            out,
            "{}",
            serde_json::to_string(&reply).expect("replies serialize")
        )?;
        out.flush()?;
    }
    Ok(())
}
