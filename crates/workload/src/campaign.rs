//! Multi-parametric campaigns (§5.2 of the paper).
//!
//! "A majority of the jobs submitted in this context are *multi-parametric*
//! jobs. Such a job consists of a large number (up to several hundreds of
//! thousands) of runs of the same program, each having different parameters.
//! Each run takes a relatively short time to complete, this time being often
//! the same for every run."
//!
//! A [`Campaign`] is that object: a bag of `n_runs` short, identical (or
//! near-identical), independent sequential runs. It is the discrete
//! counterpart of a [`JobKind::Divisible`](crate::job::JobKind::Divisible)
//! load and the payload of the CiGri best-effort layer, where runs are
//! killable and resubmittable at unit grain.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, SimRng, Time};

use crate::job::{Job, UserId};

/// A multi-parametric job: `n_runs` runs of the same program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Identifier of the campaign as a whole.
    pub id: u64,
    /// Number of runs.
    pub n_runs: usize,
    /// Nominal run length.
    pub run_len: Dur,
    /// Relative jitter on individual run lengths (0 = identical runs, the
    /// common case per the paper; 0.1 = ±10% uniform).
    pub jitter: f64,
    /// Submission date of the campaign.
    pub release: Time,
    /// Owning community.
    pub user: UserId,
}

impl Campaign {
    /// A campaign of `n_runs` runs of `run_len` each, no jitter.
    pub fn new(id: u64, n_runs: usize, run_len: Dur) -> Campaign {
        assert!(n_runs >= 1 && run_len > Dur::ZERO);
        Campaign {
            id,
            n_runs,
            run_len,
            jitter: 0.0,
            release: Time::ZERO,
            user: UserId::default(),
        }
    }

    /// Builder: relative jitter on run lengths.
    pub fn with_jitter(mut self, jitter: f64) -> Campaign {
        assert!((0.0..1.0).contains(&jitter));
        self.jitter = jitter;
        self
    }

    /// Builder: release date.
    pub fn released_at(mut self, t: Time) -> Campaign {
        self.release = t;
        self
    }

    /// Builder: owner.
    pub fn with_user(mut self, u: UserId) -> Campaign {
        self.user = u;
        self
    }

    /// Total sequential work of the campaign.
    pub fn total_work(&self) -> Dur {
        self.run_len.saturating_mul(self.n_runs as u64)
    }

    /// The equivalent divisible load, in abstract units (reference-CPU
    /// seconds) — what the DLT steady-state theory of §5.2 operates on.
    pub fn as_divisible_work(&self) -> f64 {
        self.total_work().as_secs_f64()
    }

    /// Materialize the runs as sequential jobs. Ids are
    /// `base_id + run_index`; run lengths get the configured jitter.
    pub fn runs(&self, base_id: u64, rng: &mut SimRng) -> Vec<Job> {
        (0..self.n_runs)
            .map(|i| {
                let len = if self.jitter > 0.0 {
                    let f = rng.range(1.0 - self.jitter, 1.0 + self.jitter);
                    self.run_len.scale_ceil(f).max(Dur::from_ticks(1))
                } else {
                    self.run_len
                };
                Job::sequential(base_id + i as u64, len)
                    .released_at(self.release)
                    .with_user(self.user)
            })
            .collect()
    }
}

/// Convenience: a jitter-free campaign's runs, with ids starting at
/// `base_id`.
pub fn campaign(n_runs: usize, run_len: Dur, base_id: u64) -> Vec<Job> {
    let mut rng = SimRng::seed_from(0); // unused without jitter
    Campaign::new(0, n_runs, run_len).runs(base_id, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn identical_runs_without_jitter() {
        let jobs = campaign(100, d(500), 10);
        assert_eq!(jobs.len(), 100);
        assert!(jobs.iter().all(|j| j.min_time() == d(500)));
        assert!(jobs.iter().all(|j| j.min_procs() == 1));
        assert_eq!(jobs[0].id, JobId(10));
        assert_eq!(jobs[99].id, JobId(109));
    }

    #[test]
    fn jitter_bounds_run_lengths() {
        let c = Campaign::new(1, 200, d(1000)).with_jitter(0.2);
        let mut rng = SimRng::seed_from(7);
        let jobs = c.runs(0, &mut rng);
        for j in &jobs {
            let t = j.min_time().ticks();
            assert!((800..=1201).contains(&t), "run len {t}");
        }
        // Jitter actually varies lengths.
        let distinct: std::collections::HashSet<_> =
            jobs.iter().map(|j| j.min_time().ticks()).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn totals() {
        let c = Campaign::new(2, 1000, d(250));
        assert_eq!(c.total_work(), d(250_000));
        assert!((c.as_divisible_work() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn release_and_user_propagate() {
        let c = Campaign::new(3, 5, d(10))
            .released_at(Time::from_ticks(99))
            .with_user(UserId(4));
        let mut rng = SimRng::seed_from(1);
        for j in c.runs(0, &mut rng) {
            assert_eq!(j.release, Time::from_ticks(99));
            assert_eq!(j.user, UserId(4));
        }
    }
}
