//! Micro-benchmarks of `ProcSet` — the bitset every allocation goes
//! through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsps_platform::ProcSet;

fn set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("procset");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &m in &[128usize, 512, 4096] {
        let a = ProcSet::from_indices((0..m).filter(|i| i % 3 != 0));
        let b = ProcSet::from_indices((0..m).filter(|i| i % 2 == 0));
        group.bench_with_input(BenchmarkId::new("union", m), &m, |bch, _| {
            bch.iter(|| a.union(&b));
        });
        group.bench_with_input(BenchmarkId::new("difference", m), &m, |bch, _| {
            bch.iter(|| a.difference(&b));
        });
        group.bench_with_input(BenchmarkId::new("is_disjoint", m), &m, |bch, _| {
            bch.iter(|| a.is_disjoint(&b));
        });
        group.bench_with_input(BenchmarkId::new("iter_sum", m), &m, |bch, _| {
            bch.iter(|| a.iter().map(|p| p.index()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("take_first_half", m), &m, |bch, _| {
            bch.iter(|| a.take_first(a.len() / 2));
        });
        // The profile-sweep hot paths: allocation-free feasibility count,
        // a small take out of a large set (early word-scan stop), and the
        // buffer-reusing scratch clone.
        group.bench_with_input(BenchmarkId::new("difference_len", m), &m, |bch, _| {
            bch.iter(|| a.difference_len(&b));
        });
        group.bench_with_input(BenchmarkId::new("take_first_16", m), &m, |bch, _| {
            bch.iter(|| a.take_first(16));
        });
        group.bench_with_input(BenchmarkId::new("clone_from", m), &m, |bch, _| {
            let mut scratch = ProcSet::full(m);
            bch.iter(|| scratch.clone_from(&a));
        });
        group.bench_with_input(BenchmarkId::new("subtract_in_place", m), &m, |bch, _| {
            let mut scratch = ProcSet::full(m);
            bch.iter(|| {
                scratch.clone_from(&a);
                scratch.subtract(&b);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, set_ops);
criterion_main!(benches);
