//! Machine-readable perf baseline: times the [`Timeline`] hot operations
//! (the backfill / CiGri / DES placement workhorse) plus the end-to-end
//! scheduler loops — conservative/EASY backfill of a `large-scale`
//! instance and a 100k-job `trace-100k` DesOnline replay through the
//! incremental planner — then writes the medians to `BENCH_timeline.json`,
//! the committed perf trajectory future PRs compare against.
//!
//! ```text
//! cargo run --release -p lsps-bench --bin bench_report            # BENCH_timeline.json
//! cargo run --release -p lsps-bench --bin bench_report -- out.json
//! cargo run --release -p lsps-bench --bin bench_report -- --check # CI perf smoke gate
//! ```
//!
//! `--check` re-measures with a reduced sample count and compares every
//! datapoint against the committed baseline (`BENCH_timeline.json` or the
//! path given after the flag): any op slower than 3× its committed median
//! fails the run. The 3× headroom absorbs machine noise and CI jitter —
//! the gate exists to catch algorithmic regressions (a dropped index, an
//! accidental O(n²)), not percent-level drift.
//!
//! The timed operations mirror `benches/bench_timeline.rs`; this binary
//! exists because the criterion harness prints for humans while the perf
//! trajectory needs stable JSON. Absolute numbers are machine-specific —
//! the trajectory tracks *relative* movement per op and size.

use std::path::Path;
use std::time::Instant;

use serde::{Serialize, Value};

use lsps_core::backfill::{backfill_schedule_estimated, BackfillPolicy};
use lsps_core::policy::{Backfilling, PolicyCtx, ReleaseMode};
use lsps_des::{Dur, EventQueue, SimRng, Time};
use lsps_platform::{BookingKind, ProcSet, Timeline};
use lsps_scenario::families::{large_scale_instance, trace_instance};
use lsps_scenario::runner::{des_online, des_online_open};
use lsps_scenario::spec::OpenEntry;
use lsps_workload::{DistSpec, JobClass, OpenArrival, OpenStreamSpec};

/// Median wall-clock nanoseconds per call of `f` over `samples` batches.
fn median_ns(samples: usize, batch: u32, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            (t0.elapsed().as_nanos() / batch as u128) as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// A randomly loaded timeline with `bookings` live bookings (same shape as
/// the criterion bench).
fn loaded_timeline(m: usize, bookings: usize, rng: &mut SimRng) -> Timeline {
    let mut tl = Timeline::with_procs(m);
    for _ in 0..bookings {
        let q = rng.int_range(1, (m as u64 / 4).max(1)) as usize;
        let len = Dur::from_ticks(rng.int_range(10, 500));
        let (start, procs) = tl
            .earliest_slot(Time::from_ticks(rng.int_range(0, 50_000)), len, q)
            .expect("fits");
        tl.book(start, start + len, procs, BookingKind::Job);
    }
    tl
}

/// One measured datapoint: a micro-op over a loaded timeline (`size` =
/// live bookings) or a scheduler-loop entry (`size` = instance jobs).
struct Datapoint {
    op: &'static str,
    size: usize,
    median_ns: u64,
}

/// Measure everything. `samples` scales the micro-op batching; the
/// scheduler loops are one-shot (they are seconds-scale already).
fn measure(samples: usize) -> (Vec<Datapoint>, Vec<Datapoint>) {
    let m = 1024;
    let mut micro: Vec<Datapoint> = Vec::new();
    let push = |v: &mut Vec<Datapoint>, op: &'static str, size: usize, ns: u64| {
        eprintln!("{op:<28} @ {size:>6}: {ns:>12} ns/op");
        v.push(Datapoint {
            op,
            size,
            median_ns: ns,
        });
    };

    for &bookings in &[100usize, 1_000, 4_000] {
        let mut rng = SimRng::seed_from(3);
        let tl = loaded_timeline(m, bookings, &mut rng);
        let horizon = tl.horizon(Time::ZERO);
        push(
            &mut micro,
            "earliest_slot",
            bookings,
            median_ns(samples, 64, || {
                std::hint::black_box(tl.earliest_slot(
                    Time::from_ticks(10_000),
                    Dur::from_ticks(100),
                    16,
                ));
            }),
        );
        push(
            &mut micro,
            "free_profile_full",
            bookings,
            median_ns(samples, 8, || {
                std::hint::black_box(tl.free_profile(Time::ZERO, horizon));
            }),
        );
        push(
            &mut micro,
            "free_at",
            bookings,
            median_ns(samples, 256, || {
                std::hint::black_box(tl.free_at(Time::from_ticks(25_000)));
            }),
        );
        push(
            &mut micro,
            "free_during_1k",
            bookings,
            median_ns(samples, 64, || {
                std::hint::black_box(
                    tl.free_during(Time::from_ticks(20_000), Time::from_ticks(21_000)),
                );
            }),
        );
        let mut churn = tl.clone();
        push(
            &mut micro,
            "book_remove_cycle",
            bookings,
            median_ns(samples, 64, || {
                let free = churn.free_during(Time::from_ticks(60_000), Time::from_ticks(60_100));
                let id = churn.book(
                    Time::from_ticks(60_000),
                    Time::from_ticks(60_100),
                    free.take_first(8.min(free.len())),
                    BookingKind::Job,
                );
                churn.remove(id).expect("present");
            }),
        );
    }

    // A ProcSet datapoint so the bitset layer has a trajectory too.
    let a = ProcSet::from_indices((0..m).filter(|i| i % 3 != 0));
    let b = ProcSet::from_indices((0..m).filter(|i| i % 2 == 0));
    push(
        &mut micro,
        "procset_difference_len",
        0,
        median_ns(samples, 4096, || {
            std::hint::black_box(a.difference_len(&b));
        }),
    );

    // The clone_from + in-place-op churn every hot timeline caller runs:
    // refresh a scratch set from a wide (heap-repr) source, mask it, then
    // do the same over a 64-proc inline source — the DES bench machine
    // width. Tracks that the pooling path stays allocation-free.
    let small_a = ProcSet::from_indices((0..64).filter(|i| i % 3 != 0));
    let small_b = ProcSet::from_indices((0..64).filter(|i| i % 2 == 0));
    let mut scratch = ProcSet::new();
    push(
        &mut micro,
        "procset_clone_hot",
        0,
        median_ns(samples, 4096, || {
            scratch.clone_from(&a);
            scratch.subtract(&b);
            std::hint::black_box(scratch.len());
            scratch.clone_from(&small_a);
            scratch.intersect_with(&small_b);
            std::hint::black_box(scratch.len());
        }),
    );

    // Scheduler loops, one-shot. Batch placement: conservative + EASY
    // backfill of a full `large-scale` instance — the workload
    // `examples/large_scale_campaign.json` sweeps.
    let mut ops: Vec<Datapoint> = Vec::new();
    let n = 5_000;
    let jobs = large_scale_instance(&mut SimRng::seed_from(7), n, m);
    for (name, policy) in [
        ("conservative_backfill_5k", BackfillPolicy::Conservative),
        ("easy_backfill_5k", BackfillPolicy::Easy),
    ] {
        let t0 = Instant::now();
        let sched = backfill_schedule_estimated(&jobs, m, &[], policy, 1.2);
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(sched.len(), n);
        push(&mut ops, name, n, ns);
    }

    // Raw event-queue throughput: a million schedule/cancel/pop rounds
    // against a rolling live set — the slab + 4-ary-heap hot path the DES
    // engine hits once per event, with a third of the events cancelled so
    // the tombstone compaction policy is part of what gets timed.
    let n = 1_000_000;
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SimRng::seed_from(11);
    let mut live_keys = Vec::new();
    let mut clock: u64 = 0;
    let mut digest: u64 = 0;
    let t0 = Instant::now();
    for i in 0..n as u64 {
        clock += rng.int_range(0, 3);
        live_keys.push(q.schedule(Time::from_ticks(clock + rng.int_range(1, 1_000)), i));
        if i % 3 == 0 {
            let victim = rng.int_range(0, live_keys.len() as u64 - 1) as usize;
            q.cancel(live_keys.swap_remove(victim));
        }
        if q.len() > 8_192 {
            if let Some((at, _, ev)) = q.pop() {
                digest = digest.wrapping_add(at.ticks() ^ ev);
            }
        }
    }
    while let Some((at, _, ev)) = q.pop() {
        digest = digest.wrapping_add(at.ticks() ^ ev);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    std::hint::black_box(digest);
    push(&mut ops, "event_queue_1m_churn", n, ns);

    // Event-driven placement: the full 100k-job `trace-100k` replay the
    // campaign `examples/trace_100k_campaign.json` runs — one decision per
    // arrival/completion through the incremental planner.
    let n = 100_000;
    let jobs = trace_instance(&mut SimRng::seed_from(4096).child(n as u64), n, m);
    let ctx = PolicyCtx {
        release_mode: ReleaseMode::Online,
        estimate_factor: 1.0,
        ..PolicyCtx::default()
    };
    let policy = Backfilling::conservative();
    let t0 = Instant::now();
    let run = des_online(&policy, &jobs, m, &ctx);
    let ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(run.records.len(), n);
    assert_eq!(run.replan_touched, Some(n as u64));
    push(&mut ops, "des_online_100k", n, ns);

    // Open-arrival steady state: a million completions at ρ = 0.9 through
    // the open driver — the `examples/open_1m_campaign.json` cell. Memory
    // stays `O(live jobs + completions counted)`, so this is the long-run
    // throughput trajectory of the whole arrive → plan → complete loop.
    let n = 1_000_000;
    let open = OpenEntry {
        stream: OpenStreamSpec {
            rho: 0.9,
            arrival: OpenArrival::Poisson,
            classes: vec![
                JobClass {
                    name: "narrow".into(),
                    mix: 3.0,
                    width: DistSpec::Fixed(1.0),
                    service_s: DistSpec::Exp(120.0),
                },
                JobClass {
                    name: "wide".into(),
                    mix: 1.0,
                    width: DistSpec::Uniform(2.0, 16.0),
                    service_s: DistSpec::Exp(600.0),
                },
            ],
        },
        stop_completions: n as u64,
        horizon_s: None,
        warmup: OpenEntry::DEFAULT_WARMUP,
        batches: OpenEntry::DEFAULT_BATCHES,
    };
    let policy = Backfilling::easy();
    let t0 = Instant::now();
    let out = des_online_open(&policy, &open, 64, &ctx, 9001);
    let ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(out.completions, n as u64);
    push(&mut ops, "des_online_open_1m", n, ns);

    // Service tier: `examples/small_campaign.json` end to end through the
    // lsps-campaignd machinery — daemon boot, spec submission, sharding
    // over worker processes, final aggregate — cold (every cell computed
    // by a worker) and warm (a restarted daemon serving every cell from
    // the content-addressed cache). Skipped when the `lsps-worker` binary
    // isn't built alongside this one; the `--check` gate ignores ops
    // present on only one side, so the skip is safe.
    let worker = lsps_service::daemon::default_worker_cmd();
    if worker.is_file() {
        let spec_path =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/small_campaign.json");
        let spec_text = std::fs::read_to_string(&spec_path).expect("small campaign spec");
        let root =
            std::env::temp_dir().join(format!("lsps-bench-campaignd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let base_dir = spec_path.parent().expect("spec dir").to_path_buf();
        let mut cells = 0usize;
        let mut run_service = |tag: &str| -> u64 {
            let mut cfg = lsps_service::daemon::config_under(&root, &worker);
            cfg.workers = 4;
            cfg.base_dir = Some(base_dir.clone());
            // A fresh journal per boot so each timing covers exactly one
            // submit-to-aggregate pass; the cache carries between passes.
            cfg.journal_dir = root.join(format!("journal-{tag}"));
            let t0 = Instant::now();
            let daemon = lsps_service::Daemon::start(cfg).expect("daemon starts");
            let id = daemon.submit(&spec_text).expect("spec accepted");
            loop {
                let status = daemon.status_json(&id).expect("status");
                assert!(status.contains("\"failed\":0"), "cells failed: {status}");
                if status.contains("\"complete\":true") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            let (_, agg) = daemon.csvs(&id).expect("aggregate");
            cells = agg.lines().count() - 1;
            daemon.shutdown();
            t0.elapsed().as_nanos() as u64
        };
        let cold = run_service("cold");
        let warm = run_service("warm");
        push(&mut ops, "campaignd_small_spec_cold", 54, cold);
        push(&mut ops, "campaignd_small_spec_warm", 54, warm);
        assert_eq!(cells, 18, "small campaign aggregates to 18 groups");
        let _ = std::fs::remove_dir_all(&root);
    } else {
        eprintln!(
            "[skip] campaignd_small_spec: lsps-worker not built ({})",
            worker.display()
        );
    }

    (micro, ops)
}

fn to_json(entries: &[Datapoint], size_key: &str) -> Value {
    Value::Seq(
        entries
            .iter()
            .map(|d| {
                Value::Map(vec![
                    ("op".into(), d.op.to_value()),
                    (size_key.into(), d.size.to_value()),
                    ("median_ns".into(), d.median_ns.to_value()),
                ])
            })
            .collect(),
    )
}

/// Flatten a committed report into `(op, size, median_ns)` rows. Reads
/// both the v1 layout (everything under `results`, size key `bookings`)
/// and v2 (`results` + `ops`, size key `n` for ops).
fn baseline_rows(report: &Value) -> Vec<(String, u64, u64)> {
    let mut rows = Vec::new();
    for section in ["results", "ops"] {
        let Some(Value::Seq(entries)) = report.get(section) else {
            continue;
        };
        for e in entries {
            let Some(Value::Str(op)) = e.get("op") else {
                continue;
            };
            let size = match e.get("bookings").or_else(|| e.get("n")) {
                Some(Value::UInt(v)) => *v,
                _ => 0,
            };
            let Some(Value::UInt(ns)) = e.get("median_ns") else {
                continue;
            };
            rows.push((op.clone(), size, *ns));
        }
    }
    rows
}

/// Compare fresh medians against the committed baseline: fail on any op
/// slower than `factor ×` its committed median. Ops present on only one
/// side are ignored (adding a datapoint must not break older baselines).
fn check(baseline_path: &str, factor: f64) -> Result<(), String> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let committed: Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {baseline_path}: {e:?}"))?;
    let baseline = baseline_rows(&committed);

    let (micro, ops) = measure(9);
    let fresh: Vec<(String, u64, u64)> = micro
        .iter()
        .chain(ops.iter())
        .map(|d| (d.op.to_string(), d.size as u64, d.median_ns))
        .collect();

    let mut regressions = Vec::new();
    for (op, size, committed_ns) in &baseline {
        let Some((_, _, fresh_ns)) = fresh
            .iter()
            .find(|(fop, fsize, _)| fop == op && fsize == size)
        else {
            continue;
        };
        let ratio = *fresh_ns as f64 / (*committed_ns).max(1) as f64;
        if ratio > factor {
            regressions.push(format!(
                "{op} @ {size}: {fresh_ns} ns vs committed {committed_ns} ns ({ratio:.2}x > {factor}x)"
            ));
        }
    }
    if regressions.is_empty() {
        eprintln!(
            "[check] {} datapoints within {factor}x of {baseline_path}",
            baseline.len()
        );
        Ok(())
    } else {
        Err(format!(
            "perf regression vs {baseline_path}:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let baseline = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_timeline.json");
        if let Err(msg) = check(baseline, 3.0) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }

    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_timeline.json".into());
    let samples = 30;
    let (micro, ops) = measure(samples);
    let report = Value::Map(vec![
        ("schema".into(), "lsps-bench/timeline-v2".to_value()),
        ("m".into(), 1024usize.to_value()),
        ("samples".into(), samples.to_value()),
        ("results".into(), to_json(&micro, "bookings")),
        ("ops".into(), to_json(&ops, "n")),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    let path = std::path::Path::new(&out);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let name = path
        .file_name()
        .unwrap_or_else(|| panic!("output path `{out}` has no file name"))
        .to_string_lossy();
    lsps_scenario::write_file_atomic(dir, &name, &(json + "\n"));
    println!("[written] {out}");
}
