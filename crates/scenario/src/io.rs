//! Result-file plumbing: the `results/` directory and atomic writes.

use std::fs;
use std::path::{Path, PathBuf};

/// Resolve (and create) the results directory: the nearest ancestor of the
/// current directory that looks like the workspace root (has `Cargo.toml`
/// and `crates/`), falling back to the current directory, so experiment
/// binaries work from any crate directory.
pub fn results_dir() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let base = cwd
        .ancestors()
        .find(|c| c.join("Cargo.toml").exists() && c.join("crates").exists())
        .unwrap_or(&cwd)
        .to_path_buf();
    let dir = base.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Atomically write `content` to `dir/<name>`: the bytes go to a hidden
/// sibling temp file first and land under the final name via `rename`, so a
/// reader (or a crash mid-write) never observes a torn or half-replaced
/// file — long sweeps re-running into the same `results/` replace each CSV
/// in one step instead of truncating it for the duration of the write.
pub fn write_file_atomic(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    // Per-process temp name: two concurrent writers of the same CSV must
    // not share a staging file, or one could publish the other's torn
    // half-write — last rename wins instead.
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    fs::write(&tmp, content).expect("write temp results file");
    fs::rename(&tmp, &path).expect("rename temp results file into place");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_wholesale_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("lsps-atomic-write-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let p1 = write_file_atomic(&dir, "out.csv", "first,version\n");
        assert_eq!(fs::read_to_string(&p1).unwrap(), "first,version\n");
        // Re-writing the same name replaces the content in one step…
        let p2 = write_file_atomic(&dir, "out.csv", "second\n");
        assert_eq!(p1, p2);
        assert_eq!(fs::read_to_string(&p2).unwrap(), "second\n");
        // …and no staging file outlives the call.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
