//! Fixed-width stdout tables shared by the experiment binaries.

/// Fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given headers.
    pub fn new(headers: &[&str]) -> Table {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.row(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "ragged table row");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("{}", sep.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["12345".into(), "1".into()]);
        t.print(); // smoke: no panic, widths grow
        assert_eq!(t.widths, vec![5, 4]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
