//! SMART — shelf scheduling of rigid tasks for (weighted) average
//! completion time (§4.3 of the paper, ref \[14\] Schwiegelshohn, Ludwig,
//! Wolf, Turek, Yu).
//!
//! "Schwiegelshohn et al. proposed for rigid PTs to use shelves (where all
//! the tasks start at the same time) filled with tasks of approximately the
//! same length (shelves sizes are powers of 2). The performance ratio is 8
//! for the unweighted case and 8.53 for the weighted case. The shelves here
//! were just filled with a first fit algorithm."
//!
//! The construction:
//!
//! 1. round every execution time up to the next power of two — jobs of a
//!    class share "approximately the same length";
//! 2. first-fit the jobs of each class into shelves of width `m`;
//! 3. treat each shelf as one task of a single machine — length = shelf
//!    height, weight = sum of its jobs' weights — and order shelves by
//!    Smith's rule (decreasing `weight / length`), the single-machine
//!    optimum of §4.3.

use lsps_des::{Dur, Time};
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobKind};

use crate::schedule::Schedule;

struct Shelf {
    /// Power-of-two height.
    height: Dur,
    used: usize,
    jobs: Vec<usize>, // indices into the input slice
    weight: f64,
}

/// Round up to the next power of two (ticks).
fn pow2_ceil(d: Dur) -> Dur {
    let t = d.ticks().max(1);
    Dur::from_ticks(t.next_power_of_two())
}

/// SMART schedule of rigid `jobs` (all released at 0) on `m` processors.
/// With `weighted = false`, shelf ordering ignores the job weights
/// (the paper's ratio-8 variant); with `true`, shelves are ordered by the
/// weighted Smith rule (ratio 8.53).
///
/// # Panics
/// If a job is not rigid, wider than `m`, or has a release date.
pub fn smart_schedule(jobs: &[Job], m: usize, weighted: bool) -> Schedule {
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Rigid { .. }),
            "smart_schedule expects rigid jobs; job {} is not",
            j.id
        );
        assert!(j.min_procs() <= m, "job {} wider than machine", j.id);
        assert!(
            j.release == Time::ZERO,
            "smart_schedule is off-line; job {} has a release date",
            j.id
        );
    }

    // 1–2. First-fit per power-of-two class. Iterate jobs widest-first
    // inside a class for tighter packing; classes in any order (the shelf
    // sequencing below is what matters).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| {
        (
            pow2_ceil(jobs[i].min_time()),
            std::cmp::Reverse(jobs[i].min_procs()),
            jobs[i].id,
        )
    });
    let mut shelves: Vec<Shelf> = Vec::new();
    for i in order {
        let job = &jobs[i];
        let h = pow2_ceil(job.min_time());
        let q = job.min_procs();
        let slot = shelves
            .iter_mut()
            .find(|s| s.height == h && s.used + q <= m);
        match slot {
            Some(s) => {
                s.used += q;
                s.weight += job.weight;
                s.jobs.push(i);
            }
            None => shelves.push(Shelf {
                height: h,
                used: q,
                jobs: vec![i],
                weight: job.weight,
            }),
        }
    }

    // 3. Smith order on shelves.
    shelves.sort_by(|a, b| {
        let wa = if weighted {
            a.weight
        } else {
            a.jobs.len() as f64
        };
        let wb = if weighted {
            b.weight
        } else {
            b.jobs.len() as f64
        };
        let ra = wa / a.height.ticks() as f64;
        let rb = wb / b.height.ticks() as f64;
        rb.partial_cmp(&ra)
            .expect("finite Smith ratios")
            .then(a.height.cmp(&b.height))
    });

    let mut sched = Schedule::new(m);
    let mut start = Time::ZERO;
    for shelf in &shelves {
        let mut offset = 0usize;
        for &i in &shelf.jobs {
            let job = &jobs[i];
            let q = job.min_procs();
            sched.place(job, start, ProcSet::range(offset, offset + q));
            offset += q;
        }
        start += shelf.height;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_metrics::{wsum_lower_bound, Criteria};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn wsum(s: &Schedule, jobs: &[Job]) -> f64 {
        Criteria::evaluate(&s.completed(jobs)).weighted_sum_completion
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(pow2_ceil(d(1)), d(1));
        assert_eq!(pow2_ceil(d(3)), d(4));
        assert_eq!(pow2_ceil(d(4)), d(4));
        assert_eq!(pow2_ceil(d(5)), d(8));
        assert_eq!(pow2_ceil(d(0)), d(1), "zero-length guards to 1");
    }

    #[test]
    fn same_class_jobs_share_a_shelf() {
        // Three jobs of class 8 (lengths 5..8), widths 2+3+3 = 8 = m: one
        // shelf, everything starts at 0.
        let jobs = vec![
            Job::rigid(1, 2, d(5)),
            Job::rigid(2, 3, d(7)),
            Job::rigid(3, 3, d(8)),
        ];
        let s = smart_schedule(&jobs, 8, true);
        assert!(s.validate(&jobs).is_ok());
        assert!(s.assignments().iter().all(|a| a.start == Time::ZERO));
    }

    #[test]
    fn short_heavy_shelf_goes_first() {
        // A long light job vs many short heavy jobs: Smith ordering puts
        // the short shelf first.
        let mut jobs = vec![Job::rigid(0, 4, d(64)).with_weight(1.0)];
        for i in 1..=4 {
            jobs.push(Job::rigid(i, 1, d(8)).with_weight(5.0));
        }
        let s = smart_schedule(&jobs, 4, true);
        assert!(s.validate(&jobs).is_ok());
        let long_start = s
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(0))
            .unwrap()
            .start;
        assert_eq!(long_start, Time::from_ticks(8), "short shelf first");
    }

    #[test]
    fn unweighted_ignores_weights() {
        // Same structure, but weights say "long job first"; the unweighted
        // variant must not listen.
        let mut jobs = vec![Job::rigid(0, 4, d(64)).with_weight(1000.0)];
        for i in 1..=4 {
            jobs.push(Job::rigid(i, 1, d(8)).with_weight(0.001));
        }
        let su = smart_schedule(&jobs, 4, false);
        let long_start = su
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(0))
            .unwrap()
            .start;
        assert_eq!(
            long_start,
            Time::from_ticks(8),
            "count rule: shelf of 4 first"
        );
        // The weighted variant flips the order.
        let sw = smart_schedule(&jobs, 4, true);
        let long_start_w = sw
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(0))
            .unwrap()
            .start;
        assert_eq!(long_start_w, Time::ZERO);
    }

    #[test]
    fn ratio_within_guarantee_on_random_instances() {
        use lsps_des::SimRng;
        let mut rng = SimRng::seed_from(42);
        for trial in 0..10 {
            let m = 16;
            let jobs: Vec<Job> = (0..40)
                .map(|i| {
                    Job::rigid(
                        i,
                        rng.int_range(1, m as u64) as usize,
                        d(rng.int_range(1, 500)),
                    )
                    .with_weight(rng.range(0.5, 5.0))
                })
                .collect();
            let s = smart_schedule(&jobs, m, true);
            assert!(s.validate(&jobs).is_ok());
            let lb = wsum_lower_bound(&jobs, m);
            let ratio = wsum(&s, &jobs) / lb;
            assert!(
                ratio <= 8.53 + 1e-9,
                "trial {trial}: ratio {ratio} above the proven 8.53"
            );
        }
    }

    #[test]
    fn empty_input() {
        let s = smart_schedule(&[], 4, true);
        assert!(s.is_empty());
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    #[should_panic]
    fn releases_rejected() {
        let j = Job::rigid(1, 1, d(4)).released_at(Time::from_ticks(3));
        smart_schedule(&[j], 4, true);
    }
}
