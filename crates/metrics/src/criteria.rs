//! The criteria of §3, computed in one pass.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};

use crate::completed::CompletedJob;

/// All §3 criteria evaluated over a set of completed jobs.
///
/// Time-valued criteria are reported in seconds (`f64`) for readability;
/// exact tick values are recoverable from the raw records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Criteria {
    /// Number of jobs.
    pub n: usize,
    /// Makespan `max Cj`, seconds.
    pub cmax: f64,
    /// `Σ Ci`, seconds.
    pub sum_completion: f64,
    /// `Σ ωi Ci`, weight-seconds.
    pub weighted_sum_completion: f64,
    /// Mean completion `Σ Ci / n`, seconds.
    pub mean_completion: f64,
    /// Paper's mean stretch: `Σ (Ci − ri) / n` (mean flow), seconds.
    pub mean_flow: f64,
    /// Paper's max stretch: `max (Ci − ri)` (longest wait between
    /// submission and completion), seconds.
    pub max_flow: f64,
    /// Mean normalized stretch (slowdown): `mean (Ci − ri) / pi(1)`.
    pub mean_slowdown: f64,
    /// Max normalized stretch.
    pub max_slowdown: f64,
    /// Mean *bounded* slowdown: `mean (Ci − ri) / max(pi(1), τ)` with
    /// τ = 10 s — the standard fix that stops sub-second jobs from
    /// dominating the stretch statistics.
    pub mean_bounded_slowdown: f64,
    /// Number of late jobs (tardiness criteria).
    pub n_late: usize,
    /// Total tardiness `Σ max(0, Ci − di)`, seconds.
    pub total_tardiness: f64,
    /// Maximum tardiness, seconds.
    pub max_tardiness: f64,
    /// Completed jobs per simulated hour over the span `[min ri, Cmax]`.
    pub throughput_per_hour: f64,
    /// Total work area `Σ procs·run`, CPU-seconds.
    pub total_area: f64,
}

impl Criteria {
    /// Evaluate over `jobs`. Panics on an empty slice — an empty schedule
    /// has no meaningful criteria.
    pub fn evaluate(jobs: &[CompletedJob]) -> Criteria {
        let mut acc = CriteriaAcc::new();
        for j in jobs {
            acc.push(j);
        }
        acc.finish()
    }

    /// Machine utilization over `[0, Cmax]` on `m` processors: area divided
    /// by `m · Cmax`.
    pub fn utilization(&self, m: usize) -> f64 {
        if self.cmax == 0.0 {
            return 0.0;
        }
        self.total_area / (m as f64 * self.cmax)
    }
}

/// Streaming accumulator behind [`Criteria::evaluate`]: push completions
/// one at a time and [`finish`](CriteriaAcc::finish) at the end. Constant
/// memory, so open-arrival runs can fold millions of completions into
/// criteria without retaining the [`CompletedJob`] records.
#[derive(Clone, Debug)]
pub struct CriteriaAcc {
    n: usize,
    cmax: Time,
    first_release: Time,
    sum_completion: f64,
    weighted_sum: f64,
    sum_flow: f64,
    max_flow: Dur,
    sum_slow: f64,
    max_slow: f64,
    sum_bsld: f64,
    n_late: usize,
    total_tard: Dur,
    max_tard: Dur,
    area: Dur,
}

impl Default for CriteriaAcc {
    fn default() -> CriteriaAcc {
        CriteriaAcc::new()
    }
}

impl CriteriaAcc {
    /// Bounded-slowdown floor τ = 10 s.
    const TAU_S: f64 = 10.0;

    /// An empty accumulator.
    pub fn new() -> CriteriaAcc {
        CriteriaAcc {
            n: 0,
            cmax: Time::ZERO,
            first_release: Time::MAX,
            sum_completion: 0.0,
            weighted_sum: 0.0,
            sum_flow: 0.0,
            max_flow: Dur::ZERO,
            sum_slow: 0.0,
            max_slow: 0.0,
            sum_bsld: 0.0,
            n_late: 0,
            total_tard: Dur::ZERO,
            max_tard: Dur::ZERO,
            area: Dur::ZERO,
        }
    }

    /// Fold one completion in.
    pub fn push(&mut self, j: &CompletedJob) {
        self.n += 1;
        self.cmax = self.cmax.max(j.completion);
        self.first_release = self.first_release.min(j.release);
        let c = j.completion.as_secs_f64();
        self.sum_completion += c;
        self.weighted_sum += j.weight * c;
        self.sum_flow += j.flow().as_secs_f64();
        self.max_flow = self.max_flow.max(j.flow());
        let s = j.slowdown();
        self.sum_slow += s;
        self.max_slow = self.max_slow.max(s);
        let denom = j.seq_time.as_secs_f64().max(Self::TAU_S);
        self.sum_bsld += (j.flow().as_secs_f64() / denom).max(1.0);
        if j.is_late() {
            self.n_late += 1;
        }
        self.total_tard += j.tardiness();
        self.max_tard = self.max_tard.max(j.tardiness());
        self.area += j.area();
    }

    /// Completions folded so far.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The criteria over everything pushed. Panics when nothing was.
    pub fn finish(&self) -> Criteria {
        assert!(self.n > 0, "criteria of an empty job set");
        let n = self.n;
        // A zero-length span (single instantaneous job, or cmax ≤ first
        // release after the saturating subtraction) carries no rate
        // information; report 0.0 rather than an inf/NaN that would poison
        // downstream aggregate statistics (Summary::add rejects non-finite
        // observations).
        let span_s = (self.cmax.saturating_sub(self.first_release)).as_secs_f64();
        let throughput_per_hour = if span_s > 0.0 {
            n as f64 / span_s * 3600.0
        } else {
            0.0
        };
        Criteria {
            n,
            cmax: self.cmax.as_secs_f64(),
            sum_completion: self.sum_completion,
            weighted_sum_completion: self.weighted_sum,
            mean_completion: self.sum_completion / n as f64,
            mean_flow: self.sum_flow / n as f64,
            max_flow: self.max_flow.as_secs_f64(),
            mean_slowdown: self.sum_slow / n as f64,
            max_slowdown: self.max_slow,
            mean_bounded_slowdown: self.sum_bsld / n as f64,
            n_late: self.n_late,
            total_tardiness: self.total_tard.as_secs_f64(),
            max_tardiness: self.max_tard.as_secs_f64(),
            throughput_per_hour,
            total_area: self.area.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_workload::Job;

    fn t(x: u64) -> Time {
        Time::from_secs(x)
    }

    /// Two sequential jobs on one machine: j1 [0,10), j2 released 2, runs
    /// [10, 30).
    fn two_jobs() -> Vec<CompletedJob> {
        let j1 = Job::sequential(1, Dur::from_secs(10));
        let j2 = Job::sequential(2, Dur::from_secs(20))
            .released_at(t(2))
            .with_weight(3.0)
            .with_due(t(25));
        vec![
            CompletedJob::from_job(&j1, t(0), t(10), 1),
            CompletedJob::from_job(&j2, t(10), t(30), 1),
        ]
    }

    #[test]
    fn hand_computed_values() {
        let c = Criteria::evaluate(&two_jobs());
        assert_eq!(c.n, 2);
        assert!((c.cmax - 30.0).abs() < 1e-9);
        assert!((c.sum_completion - 40.0).abs() < 1e-9);
        // 1·10 + 3·30 = 100.
        assert!((c.weighted_sum_completion - 100.0).abs() < 1e-9);
        assert!((c.mean_completion - 20.0).abs() < 1e-9);
        // Flows: 10 and 28.
        assert!((c.mean_flow - 19.0).abs() < 1e-9);
        assert!((c.max_flow - 28.0).abs() < 1e-9);
        // Slowdowns: 10/10 = 1 and 28/20 = 1.4.
        assert!((c.mean_slowdown - 1.2).abs() < 1e-9);
        assert!((c.max_slowdown - 1.4).abs() < 1e-9);
        // Bounded slowdown with τ=10 s: both jobs exceed τ, and the BSLD
        // floors at 1: same values here.
        assert!((c.mean_bounded_slowdown - 1.2).abs() < 1e-9);
        // j2 due at 25, finished 30.
        assert_eq!(c.n_late, 1);
        assert!((c.total_tardiness - 5.0).abs() < 1e-9);
        assert!((c.max_tardiness - 5.0).abs() < 1e-9);
        // Area = 10 + 20 CPU-seconds.
        assert!((c.total_area - 30.0).abs() < 1e-9);
        // Utilization on 1 machine over [0, 30].
        assert!((c.utilization(1) - 1.0).abs() < 1e-9);
        assert!((c.utilization(2) - 0.5).abs() < 1e-9);
        // Throughput: 2 jobs over a 30 s span.
        assert!((c.throughput_per_hour - 240.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_floors_tiny_jobs() {
        // A 1 s job waiting 100 s: raw slowdown 101, bounded 101/10 ≈ 10.1.
        let j = Job::sequential(1, Dur::from_secs(1));
        let rec = CompletedJob::from_job(&j, t(100), t(101), 1);
        let c = Criteria::evaluate(&[rec]);
        assert!((c.max_slowdown - 101.0).abs() < 1e-9);
        assert!((c.mean_bounded_slowdown - 10.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_is_rejected() {
        Criteria::evaluate(&[]);
    }

    #[test]
    fn streaming_accumulator_matches_batch_evaluate() {
        let jobs = two_jobs();
        let mut acc = CriteriaAcc::new();
        for j in &jobs {
            acc.push(j);
        }
        assert_eq!(acc.n(), 2);
        assert_eq!(acc.finish(), Criteria::evaluate(&jobs));
    }

    #[test]
    fn zero_span_throughput_is_zero_not_infinite() {
        // Regression: a zero-length span once produced f64::INFINITY, which
        // poisoned aggregate CSV statistics. It must be finite (0.0).
        let j = Job::sequential(1, Dur::from_ticks(1));
        let rec = CompletedJob::from_job(&j, Time::ZERO, Time::ZERO, 1);
        let c = Criteria::evaluate(&[rec]);
        assert_eq!(c.throughput_per_hour, 0.0);
        assert!(c.throughput_per_hour.is_finite());
    }
}
