//! Off-line moldable scheduling on one cluster: the §4.1 MRT two-shelf
//! algorithm against the classical two-phase approach, with a Gantt chart.
//!
//! ```sh
//! cargo run --example moldable_cluster --release
//! ```

use lsps::core::allot::{two_phase_moldable, AllotRule};
use lsps::core::mrt::mrt_schedule_with_lambda;
use lsps::prelude::*;

fn main() {
    let m = 16;
    let mut rng = SimRng::seed_from(7);

    // A batch of moldable jobs with Amdahl-style penalty profiles.
    let jobs: Vec<Job> = (0..12)
        .map(|i| {
            let seq = Dur::from_secs(rng.int_range(60, 1_800));
            let profile = MoldableProfile::from_model(
                seq,
                &SpeedupModel::Amdahl {
                    seq_fraction: rng.range(0.02, 0.25),
                },
                rng.int_range(2, m as u64) as usize,
            );
            Job::moldable(i, profile)
        })
        .collect();

    let lb = cmax_lower_bound(&jobs, m);
    println!("lower bound: {lb}\n");

    // Baselines: the "choose allotment, then pack rigid" decomposition.
    for rule in [
        AllotRule::Sequential,
        AllotRule::MinTime,
        AllotRule::Balanced,
    ] {
        let s = two_phase_moldable(&jobs, m, rule, JobOrder::Lpt);
        s.validate(&jobs).expect("valid");
        println!(
            "two-phase {:?}: makespan {} ({:.2}x LB)",
            rule,
            s.makespan(),
            s.makespan().ticks() as f64 / lb.ticks() as f64
        );
    }

    // MRT: allotment selection and packing coupled through the knapsack.
    let (s, lambda) = mrt_schedule_with_lambda(&jobs, m, MrtParams::default());
    s.validate(&jobs).expect("valid");
    println!(
        "MRT          : makespan {} ({:.2}x LB, lambda* = {} ticks, two-shelf invariant {:.3} <= 1.5)",
        s.makespan(),
        s.makespan().ticks() as f64 / lb.ticks() as f64,
        lambda,
        s.makespan().ticks() as f64 / lambda as f64,
    );

    println!("\nMRT Gantt (processors x time):");
    print!("{}", s.gantt_ascii(100));
}
