//! One-round distribution over a shared bus (§2.1 of the paper).
//!
//! "Simple problems as the single round distribution on processors
//! connected by a common bus are polynomial."
//!
//! A bus is a star whose links all share one bandwidth, so the closed form
//! is [`crate::star`]'s with uniform links; this module adds the optional
//! **result gathering** the paper describes: "the communications gathering
//! the results can be done as a mirror image of the data distribution".

use crate::model::{DltPlan, Worker};
use crate::star::{star_single_round, WorkerOrder};

/// One-round bus distribution of `w` units to workers of the given
/// `speeds`, over a bus of `bandwidth` (units/s) and per-message `latency`.
///
/// `gather_ratio` is the output-to-input volume ratio δ: after computing,
/// worker `i` returns `δ·α_i` units over the bus in the mirror (reverse)
/// order of the distribution; `0.0` means "only one processor sends back
/// data" in negligible volume (the paper's database-search example). The
/// gathering phase reuses the distribution chunk sizes (it is not
/// re-optimized — matching the paper's mirror-image description).
pub fn bus_single_round(
    w: f64,
    speeds: &[f64],
    bandwidth: f64,
    latency: f64,
    gather_ratio: f64,
) -> DltPlan {
    assert!(bandwidth > 0.0 && latency >= 0.0 && gather_ratio >= 0.0);
    let workers: Vec<Worker> = speeds
        .iter()
        .map(|&s| Worker::new(s, bandwidth, latency))
        .collect();
    // On a bus all links are equal: the star order degenerates; serve
    // fastest CPUs first (they get the biggest chunks, amortizing their
    // wait the least — and it is the conventional bus ordering).
    let mut plan = star_single_round(w, &workers, WorkerOrder::BySpeed);
    if gather_ratio > 0.0 {
        // Mirror gathering: after every worker has finished (they finish
        // simultaneously at `makespan`), results come back serialized on
        // the bus in reverse service order.
        let gather: f64 = plan
            .alphas
            .iter()
            .filter(|&&a| a > 0.0)
            .map(|&a| latency + gather_ratio * a / bandwidth)
            .sum();
        plan.makespan += gather;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_bus_splits_almost_evenly() {
        let plan = bus_single_round(100.0, &[1.0; 4], 100.0, 0.0, 0.0);
        plan.check(100.0);
        // Earlier-served workers get slightly more (they wait less), but
        // with a fast bus the split is near-even.
        for &a in &plan.alphas {
            assert!((20.0..30.0).contains(&a), "alpha {a}");
        }
        let mono = plan.alphas.windows(2).all(|w| w[0] >= w[1] - 1e-9);
        assert!(mono, "earlier workers carry no less load");
    }

    #[test]
    fn faster_cpu_gets_more_load() {
        let plan = bus_single_round(90.0, &[3.0, 1.0], 1000.0, 0.0, 0.0);
        plan.check(90.0);
        assert!(plan.alphas[0] > 2.5 * plan.alphas[1]);
    }

    #[test]
    fn slow_bus_bounds_improvement() {
        // Bus as slow as the CPUs: adding workers barely helps because the
        // pipe feeds one worker's appetite at a time.
        let single = bus_single_round(100.0, &[1.0], 1.0, 0.0, 0.0);
        let many = bus_single_round(100.0, &[1.0; 8], 1.0, 0.0, 0.0);
        assert!(many.makespan < single.makespan);
        // Communication floor: the whole load crosses the bus once.
        assert!(many.makespan >= 100.0 / 1.0);
    }

    #[test]
    fn gather_adds_mirror_cost() {
        let no_gather = bus_single_round(100.0, &[1.0; 4], 10.0, 0.01, 0.0);
        let with_gather = bus_single_round(100.0, &[1.0; 4], 10.0, 0.01, 0.5);
        // Mirror phase: 4 latencies + 0.5·100/10 = 0.04 + 5.0.
        let expected = no_gather.makespan + 4.0 * 0.01 + 0.5 * 100.0 / 10.0;
        assert!(
            (with_gather.makespan - expected).abs() < 1e-6,
            "{} vs {}",
            with_gather.makespan,
            expected
        );
    }

    #[test]
    fn matches_star_with_uniform_links() {
        use crate::model::Worker;
        use crate::star::star_single_round;
        let speeds = [2.0, 1.0, 0.5];
        let bus = bus_single_round(60.0, &speeds, 5.0, 0.02, 0.0);
        let ws: Vec<Worker> = speeds.iter().map(|&s| Worker::new(s, 5.0, 0.02)).collect();
        let star = star_single_round(60.0, &ws, crate::star::WorkerOrder::BySpeed);
        assert!((bus.makespan - star.makespan).abs() < 1e-9);
        assert_eq!(bus.alphas.len(), star.alphas.len());
    }
}
