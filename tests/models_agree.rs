//! Cross-model consistency: the PT and DLT views of the same computation
//! must agree where they overlap, and the simulated dynamic policies must
//! respect the analytic bounds.

use lsps::dlt::multiround::multi_round;
use lsps::dlt::MultiRoundParams;
use lsps::grid::cigri::run_cigri;
use lsps::platform::presets;
use lsps::prelude::*;

#[test]
fn campaign_as_pt_jobs_matches_divisible_work() {
    // A campaign's total work must be identical whether counted as
    // discrete sequential runs (PT view) or as a divisible load (DLT view).
    let c = Campaign::new(1, 500, Dur::from_secs(120));
    let runs = c.runs(0, &mut SimRng::seed_from(1));
    let pt_work: f64 = runs.iter().map(|j| j.seq_time().as_secs_f64()).sum();
    assert!((pt_work - c.as_divisible_work()).abs() < 1e-9);
}

#[test]
fn steady_state_bounds_every_distribution_policy() {
    // No finite policy beats W / steady-throughput minus nothing: the
    // steady-state rate is an upper bound on sustainable speed.
    let ws: Vec<Worker> = (0..8)
        .map(|i| Worker::new(1.0 + (i % 2) as f64, 4.0, 0.01))
        .collect();
    let w = 10_000.0;
    let bound = w / star_steady_state(&ws).throughput;
    let one = star_single_round(w, &ws, WorkerOrder::ByBandwidth);
    let multi = multi_round(
        w,
        &ws,
        MultiRoundParams {
            rounds: 8,
            growth: 1.5,
        },
    );
    let dynamic = self_schedule(w, &ws, 50.0);
    for (name, makespan) in [
        ("one round", one.makespan),
        ("multi round", multi.makespan),
        ("self sched", dynamic.makespan),
    ] {
        assert!(
            makespan >= bound * 0.999,
            "{name}: {makespan} beats the steady-state bound {bound}"
        );
    }
}

#[test]
fn grid_campaign_drain_respects_capacity() {
    // The CiGri layer cannot complete a campaign faster than the platform's
    // aggregate power allows.
    let p = presets::ciment();
    let c = Campaign::new(1, 2_000, Dur::from_secs(100));
    let report = run_cigri(&p, vec![], vec![c.clone()], Dur::from_secs(10), true);
    assert_eq!(report.be_completed, 2_000);
    let total_work_s = c.total_work().as_secs_f64(); // reference CPU-s
    let floor = total_work_s / p.total_power();
    assert!(
        report.campaign_done_at.as_secs_f64() >= floor * 0.999,
        "drained at {} but the power floor is {floor}",
        report.campaign_done_at.as_secs_f64()
    );
}

#[test]
fn advisor_agrees_with_measured_winner_on_moldable_makespan() {
    // The advisor says MRT-batch for moldable/makespan; verify it actually
    // beats the naive alternatives on a random instance.
    let m = 64;
    let jobs: Vec<Job> = {
        let mut rng = SimRng::seed_from(11);
        let mut js = WorkloadSpec::fig2_parallel(80).generate(m, &mut rng);
        for j in &mut js {
            j.release = Time::ZERO;
        }
        js
    };
    let rec = advise(Application::Moldable, Objective::Makespan, false);
    assert_eq!(rec.policy, PolicyChoice::MrtBatch);
    let mrt = mrt_schedule(&jobs, m, MrtParams::default());
    mrt.validate(&jobs).expect("valid");
    let seq = lsps::core::allot::two_phase_moldable(
        &jobs,
        m,
        lsps::core::allot::AllotRule::Sequential,
        JobOrder::Lpt,
    );
    let fast = lsps::core::allot::two_phase_moldable(
        &jobs,
        m,
        lsps::core::allot::AllotRule::MinTime,
        JobOrder::Lpt,
    );
    assert!(mrt.makespan() <= seq.makespan());
    assert!(mrt.makespan() <= fast.makespan());
}

#[test]
fn heterogeneous_cluster_scaling_is_conservative() {
    // The grid layer scales job durations by cluster speed with a ceiling:
    // a job must never finish *earlier* on a slower cluster.
    let p = presets::ciment(); // cluster 3 runs at 0.55
    let job = Job::sequential(1, Dur::from_secs(100));
    let fast = run_cigri(&p, vec![(0, job.clone())], vec![], Dur::from_secs(10), true);
    let slow = run_cigri(&p, vec![(3, job)], vec![], Dur::from_secs(10), true);
    let f = fast.local.unwrap().cmax;
    let s = slow.local.unwrap().cmax;
    assert!(s > f, "slower cluster must take longer: {s} vs {f}");
    assert!((f - 100.0).abs() < 1e-6);
    assert!((s - 100.0 / 0.55).abs() < 1.0);
}
