//! Processor identifiers and processor sets.
//!
//! A [`ProcSet`] is a growable bitset over processor indices. Allocations,
//! free maps and reservation masks are all `ProcSet`s; set algebra (union,
//! intersection, difference, disjointness) is word-parallel over `u64`s.
//!
//! Storage is small-size optimized: sets spanning up to
//! `INLINE_WORDS * 64 = 256` processors live inline in the struct (no heap
//! allocation — cloning a busy mask inside the availability-profile sweep
//! is a 4-word copy), and only wider sets spill to a `Vec<u64>`. The two
//! representations are observationally identical: equality, hashing and the
//! serialized form (`{"words": [...]}`) depend only on the logical word
//! content, never on where it is stored.
//!
//! The representation keeps a trailing-zero-word invariant (`normalize`),
//! so equality and emptiness checks are structural; the inline repr
//! additionally keeps its unused words zeroed.

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Index of a processor within a [`Platform`](crate::Platform)'s global
/// numbering (cluster-major, node-major inside the cluster).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

const WORD_BITS: usize = 64;

/// Words per kernel chunk. The binary set operations below run over
/// `LANES`-word blocks (4×u64 = one 256-bit vector register) so the
/// compiler can keep them branch-free and vectorized; a 1024-processor
/// machine is 16 words = 4 chunks per operation.
const LANES: usize = 4;

/// Words stored inline before spilling to the heap — 256 processors, which
/// covers every rectangle-policy machine in the paper sweeps and the whole
/// open-arrival bench family.
const INLINE_WORDS: usize = 4;

/// The two storage forms. `Inline` keeps `words[len..]` zeroed so kernels
/// can hand out `&words[..len]` without masking.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, words: [u64; INLINE_WORDS] },
    Heap(Vec<u64>),
}

/// A set of processors, stored as a bitset.
pub struct ProcSet {
    repr: Repr,
}

impl Default for ProcSet {
    fn default() -> Self {
        ProcSet::new()
    }
}

impl Clone for ProcSet {
    fn clone(&self) -> ProcSet {
        // Compact on clone: a heap-stored set that fits inline comes back
        // inline (representation never leaks — see `PartialEq`/`Hash`).
        let words = self.words();
        match Repr::inline_from(words) {
            Some(repr) => ProcSet { repr },
            None => ProcSet {
                repr: Repr::Heap(words.to_vec()),
            },
        }
    }

    /// Reuses the existing storage — the profile-maintenance hot loops
    /// clone into scratch sets every query, so this avoids an allocation
    /// per query. A heap destination keeps its buffer even for small
    /// sources (that buffer is exactly what the scratch exists to retain).
    fn clone_from(&mut self, source: &ProcSet) {
        let src = source.words();
        if let Repr::Heap(v) = &mut self.repr {
            v.clear();
            v.extend_from_slice(src);
        } else if let Some(repr) = Repr::inline_from(src) {
            self.repr = repr;
        } else {
            self.repr = Repr::Heap(src.to_vec());
        }
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &ProcSet) -> bool {
        self.words() == other.words()
    }
}
impl Eq for ProcSet {}

impl Hash for ProcSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Same bytes a `Vec<u64>` would feed the hasher (length prefix +
        // elements), so the repr split is invisible to hash maps.
        self.words().hash(state);
    }
}

impl Repr {
    /// Inline repr holding exactly `words` (already normalized), or `None`
    /// if it needs more than [`INLINE_WORDS`].
    fn inline_from(words: &[u64]) -> Option<Repr> {
        if words.len() > INLINE_WORDS {
            return None;
        }
        let mut inline = [0u64; INLINE_WORDS];
        inline[..words.len()].copy_from_slice(words);
        Some(Repr::Inline {
            len: words.len() as u8,
            words: inline,
        })
    }
}

impl ProcSet {
    /// The empty set.
    pub fn new() -> Self {
        ProcSet {
            repr: Repr::Inline {
                len: 0,
                words: [0; INLINE_WORDS],
            },
        }
    }

    /// The set `{0, 1, …, n-1}` — the full capacity of an `n`-processor
    /// machine.
    pub fn full(n: usize) -> Self {
        let mut s = ProcSet::new();
        s.insert_range(0, n);
        s
    }

    /// The set containing the contiguous range `[lo, hi)`.
    pub fn range(lo: usize, hi: usize) -> Self {
        let mut s = ProcSet::new();
        if hi > lo {
            s.insert_range(lo, hi);
        }
        s
    }

    /// Build from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = ProcSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The logical word content — normalized (no trailing zero words),
    /// independent of where it is stored.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, words } => &words[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Mutable view of the logical words (length unchanged).
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline { len, words } => &mut words[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of logical words.
    #[inline]
    fn word_len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Grow to `n` words (zero-filled), spilling inline → heap when `n`
    /// exceeds the inline capacity. Never shrinks.
    fn grow_words(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, words } => {
                if n <= INLINE_WORDS {
                    // Unused inline words are already zero.
                    *len = (*len).max(n as u8);
                } else {
                    let mut v = Vec::with_capacity(n);
                    v.extend_from_slice(&words[..*len as usize]);
                    v.resize(n, 0);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => {
                if v.len() < n {
                    v.resize(n, 0);
                }
            }
        }
    }

    /// Shrink to `n` words (no-op if already at most `n`). Inline storage
    /// re-zeroes the dropped words to keep the repr invariant.
    fn truncate_words(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, words } => {
                if n < *len as usize {
                    words[n..*len as usize].fill(0);
                    *len = n as u8;
                }
            }
            Repr::Heap(v) => v.truncate(n),
        }
    }

    #[inline]
    fn ensure_word(&mut self, w: usize) {
        if self.word_len() <= w {
            self.grow_words(w + 1);
        }
    }

    fn normalize(&mut self) {
        let words = self.words();
        let mut n = words.len();
        while n > 0 && words[n - 1] == 0 {
            n -= 1;
        }
        self.truncate_words(n);
    }

    /// Add processor `i`. Returns `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.ensure_word(w);
        let word = &mut self.words_mut()[w];
        let had = *word & (1 << b) != 0;
        *word |= 1 << b;
        !had
    }

    /// Add all of `[lo, hi)`.
    pub fn insert_range(&mut self, lo: usize, hi: usize) {
        if hi <= lo {
            return;
        }
        let last = (hi - 1) / WORD_BITS;
        self.ensure_word(last);
        let words = self.words_mut();
        let first = lo / WORD_BITS;
        for (w, word) in words.iter_mut().enumerate().take(last + 1).skip(first) {
            let from = if w == first { lo % WORD_BITS } else { 0 };
            let to = if w == last {
                (hi - 1) % WORD_BITS + 1
            } else {
                WORD_BITS
            };
            let mask = if to - from == WORD_BITS {
                u64::MAX
            } else {
                ((1u64 << (to - from)) - 1) << from
            };
            *word |= mask;
        }
    }

    /// Remove processor `i`. Returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w >= self.word_len() {
            return false;
        }
        let word = &mut self.words_mut()[w];
        let had = *word & (1 << b) != 0;
        *word &= !(1 << b);
        self.normalize();
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words()
            .get(w)
            .is_some_and(|&word| word & (1 << b) != 0)
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        let (chunks, tail) = self.words().as_chunks::<LANES>();
        let mut n = 0usize;
        for c in chunks {
            n += c.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        n + tail.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words().is_empty()
    }

    /// Smallest index in the set.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest index in the set.
    pub fn last(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ProcSet) {
        let n = other.word_len();
        self.ensure_word(n.saturating_sub(1));
        let words = self.words_mut();
        let (a_chunks, _) = words[..n].as_chunks_mut::<LANES>();
        let (b_chunks, _) = other.words().as_chunks::<LANES>();
        for (a, b) in a_chunks.iter_mut().zip(b_chunks) {
            for i in 0..LANES {
                a[i] |= b[i];
            }
        }
        let tail = (n / LANES) * LANES;
        for (a, b) in words[tail..n].iter_mut().zip(&other.words()[tail..n]) {
            *a |= *b;
        }
        self.normalize();
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &ProcSet) {
        let n = self.word_len().min(other.word_len());
        self.truncate_words(n);
        let words = self.words_mut();
        let (a_chunks, a_tail) = words.as_chunks_mut::<LANES>();
        let (b_chunks, _) = other.words().as_chunks::<LANES>();
        for (a, b) in a_chunks.iter_mut().zip(b_chunks) {
            for i in 0..LANES {
                a[i] &= b[i];
            }
        }
        let off = (n / LANES) * LANES;
        for (a, &b) in a_tail.iter_mut().zip(&other.words()[off..n]) {
            *a &= b;
        }
        self.normalize();
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &ProcSet) {
        let n = self.word_len().min(other.word_len());
        let words = self.words_mut();
        let (a_chunks, a_tail) = words[..n].as_chunks_mut::<LANES>();
        let (b_chunks, _) = other.words().as_chunks::<LANES>();
        for (a, b) in a_chunks.iter_mut().zip(b_chunks) {
            for i in 0..LANES {
                a[i] &= !b[i];
            }
        }
        let off = (n / LANES) * LANES;
        for (a, &b) in a_tail.iter_mut().zip(&other.words()[off..n]) {
            *a &= !b;
        }
        self.normalize();
    }

    /// Union, by value.
    pub fn union(&self, other: &ProcSet) -> ProcSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Intersection, by value.
    pub fn intersection(&self, other: &ProcSet) -> ProcSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Difference, by value.
    pub fn difference(&self, other: &ProcSet) -> ProcSet {
        let mut s = self.clone();
        s.subtract(other);
        s
    }

    /// True iff the two sets share no processor.
    pub fn is_disjoint(&self, other: &ProcSet) -> bool {
        let (sw, ow) = (self.words(), other.words());
        let n = sw.len().min(ow.len());
        let (a_chunks, _) = sw[..n].as_chunks::<LANES>();
        let (b_chunks, _) = ow[..n].as_chunks::<LANES>();
        for (a, b) in a_chunks.iter().zip(b_chunks) {
            let mut acc = 0u64;
            for i in 0..LANES {
                acc |= a[i] & b[i];
            }
            if acc != 0 {
                return false;
            }
        }
        let off = (n / LANES) * LANES;
        sw[off..n]
            .iter()
            .zip(&ow[off..n])
            .all(|(&a, &b)| a & b == 0)
    }

    /// True iff every processor of `self` is in `other`.
    pub fn is_subset(&self, other: &ProcSet) -> bool {
        let (sw, ow) = (self.words(), other.words());
        let n = sw.len().min(ow.len());
        let (a_chunks, _) = sw[..n].as_chunks::<LANES>();
        let (b_chunks, _) = ow[..n].as_chunks::<LANES>();
        for (a, b) in a_chunks.iter().zip(b_chunks) {
            let mut acc = 0u64;
            for i in 0..LANES {
                acc |= a[i] & !b[i];
            }
            if acc != 0 {
                return false;
            }
        }
        let off = (n / LANES) * LANES;
        if !sw[off..n]
            .iter()
            .zip(&ow[off..n])
            .all(|(&a, &b)| a & !b == 0)
        {
            return false;
        }
        // The normalize invariant allows non-zero words only up to len();
        // anything of `self` beyond `other`'s words is outside `other`.
        sw[n..].iter().all(|&a| a == 0)
    }

    /// `|self \ other|` without materializing the difference — the
    /// feasibility test of the availability-profile sweep ("are at least
    /// `width` of the capacity procs outside this busy union?") runs this
    /// per candidate start, so it must not allocate.
    pub fn difference_len(&self, other: &ProcSet) -> usize {
        let (sw, ow) = (self.words(), other.words());
        let n = sw.len().min(ow.len());
        let (a_chunks, _) = sw[..n].as_chunks::<LANES>();
        let (b_chunks, _) = ow[..n].as_chunks::<LANES>();
        let mut count = 0usize;
        for (a, b) in a_chunks.iter().zip(b_chunks) {
            for i in 0..LANES {
                count += (a[i] & !b[i]).count_ones() as usize;
            }
        }
        let off = (n / LANES) * LANES;
        for (&a, &b) in sw[off..n].iter().zip(&ow[off..n]) {
            count += (a & !b).count_ones() as usize;
        }
        // Words of `self` past `other`'s length survive the difference
        // whole.
        for &a in &sw[n..] {
            count += a.count_ones() as usize;
        }
        count
    }

    /// The `k` smallest-index processors of the set (a deterministic
    /// allocation rule: identical machines are interchangeable, so policies
    /// always take the lowest free indices). Word-parallel: whole words are
    /// taken at once and the scan stops at the word containing the `k`-th
    /// member. Panics if fewer than `k` processors are available.
    pub fn take_first(&self, k: usize) -> ProcSet {
        let mut out = ProcSet::new();
        if k == 0 {
            return out;
        }
        let mut remaining = k;
        // Chunked fast path: whole `LANES`-word blocks whose combined
        // popcount fits in `remaining` are copied wholesale; the scan
        // drops to word granularity only inside the block holding the
        // k-th member.
        let (chunks, _) = self.words().as_chunks::<LANES>();
        let mut wi0 = 0usize;
        for c in chunks {
            let here: usize = c.iter().map(|w| w.count_ones() as usize).sum();
            if here >= remaining {
                break;
            }
            if here > 0 {
                let block = *c;
                out.ensure_word(wi0 + LANES - 1);
                out.words_mut()[wi0..wi0 + LANES].copy_from_slice(&block);
                remaining -= here;
            }
            wi0 += LANES;
        }
        for wi in wi0..self.word_len() {
            let w = self.words()[wi];
            let here = w.count_ones() as usize;
            if here == 0 {
                continue;
            }
            if here <= remaining {
                out.ensure_word(wi);
                out.words_mut()[wi] = w;
                remaining -= here;
            } else {
                // The k-th member lies in this word: keep its `remaining`
                // lowest set bits, one isolate-lowest-bit step each.
                let mut bits = w;
                let mut kept = 0u64;
                for _ in 0..remaining {
                    let lowest = bits & bits.wrapping_neg();
                    kept |= lowest;
                    bits ^= lowest;
                }
                out.ensure_word(wi);
                out.words_mut()[wi] = kept;
                remaining = 0;
            }
            if remaining == 0 {
                return out;
            }
        }
        panic!("take_first({k}) from a set of {} procs", self.len());
    }

    /// Iterate over members in increasing index order.
    pub fn iter(&self) -> ProcSetIter<'_> {
        ProcSetIter {
            words: self.words(),
            word: 0,
            bits: self.words().first().copied().unwrap_or(0),
        }
    }

    /// Force the heap representation — test hook for the inline-vs-heap
    /// equivalence proptests (the public API never exposes the repr).
    #[cfg(test)]
    fn spilled(self) -> ProcSet {
        ProcSet {
            repr: Repr::Heap(self.words().to_vec()),
        }
    }

    /// True iff the words are stored inline — test hook.
    #[cfg(test)]
    fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

// The wire form is `{"words": [...]}` — exactly what the pre-SSO
// `#[derive]` on `struct ProcSet { words: Vec<u64> }` produced. Campaign
// cache keys hash this JSON, so the representation split must never show
// up here.
impl Serialize for ProcSet {
    fn to_value(&self) -> Value {
        let words = Value::Seq(self.words().iter().map(|w| w.to_value()).collect());
        Value::Map(vec![("words".into(), words)])
    }
}

impl Deserialize for ProcSet {
    fn from_value(v: &Value) -> Result<ProcSet, SerdeError> {
        let words: Vec<u64> = Deserialize::from_value(serde::field(v, "words")?)?;
        let mut s = match Repr::inline_from(&words) {
            Some(repr) => ProcSet { repr },
            None => ProcSet {
                repr: Repr::Heap(words),
            },
        };
        // Tolerate non-normalized input (hand-written fixtures).
        s.normalize();
        Ok(s)
    }
}

/// Iterator over the members of a [`ProcSet`].
pub struct ProcSetIter<'a> {
    words: &'a [u64],
    word: usize,
    bits: u64,
}

impl Iterator for ProcSetIter<'_> {
    type Item = ProcId;

    fn next(&mut self) -> Option<ProcId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1; // clear lowest set bit
                return Some(ProcId((self.word * WORD_BITS + b) as u32));
            }
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
    }
}

impl FromIterator<usize> for ProcSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        ProcSet::from_indices(iter)
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcSet{{{self}}}")
    }
}

impl fmt::Display for ProcSet {
    /// Renders as compact ranges: `0-3,7,9-10`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut run: Option<(usize, usize)> = None;
        let flush =
            |f: &mut fmt::Formatter<'_>, run: (usize, usize), first: &mut bool| -> fmt::Result {
                if !*first {
                    write!(f, ",")?;
                }
                *first = false;
                if run.0 == run.1 {
                    write!(f, "{}", run.0)
                } else {
                    write!(f, "{}-{}", run.0, run.1)
                }
            };
        for p in self.iter() {
            let i = p.index();
            match run {
                Some((lo, hi)) if i == hi + 1 => run = Some((lo, i)),
                Some(r) => {
                    flush(f, r, &mut first)?;
                    run = Some((i, i));
                }
                None => run = Some((i, i)),
            }
        }
        if let Some(r) = run {
            flush(f, r, &mut first)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_range() {
        let s = ProcSet::full(130);
        assert_eq!(s.len(), 130);
        assert!(s.contains(0) && s.contains(129) && !s.contains(130));
        let r = ProcSet::range(60, 70);
        assert_eq!(r.len(), 10);
        assert!(r.contains(60) && r.contains(69) && !r.contains(59) && !r.contains(70));
        assert!(ProcSet::range(5, 5).is_empty());
    }

    #[test]
    fn insert_range_word_boundaries() {
        let mut s = ProcSet::new();
        s.insert_range(63, 65); // straddles the first word boundary
        assert_eq!(
            s.iter().map(|p| p.index()).collect::<Vec<_>>(),
            vec![63, 64]
        );
        let mut t = ProcSet::new();
        t.insert_range(0, 64); // exactly one full word
        assert_eq!(t.len(), 64);
        assert_eq!(t.last(), Some(63));
    }

    #[test]
    fn set_algebra() {
        let a = ProcSet::range(0, 10);
        let b = ProcSet::range(5, 15);
        assert_eq!(a.union(&b), ProcSet::range(0, 15));
        assert_eq!(a.intersection(&b), ProcSet::range(5, 10));
        assert_eq!(a.difference(&b), ProcSet::range(0, 5));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(!a.is_disjoint(&b));
        assert!(ProcSet::range(5, 10).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(ProcSet::new().is_subset(&a), "∅ ⊆ anything");
        assert!(ProcSet::new().is_disjoint(&ProcSet::new()));
    }

    #[test]
    fn normalization_keeps_equality_structural() {
        let mut a = ProcSet::new();
        a.insert(200);
        a.remove(200);
        assert_eq!(a, ProcSet::new());
        let mut b = ProcSet::range(0, 3);
        b.subtract(&ProcSet::full(300));
        assert_eq!(b, ProcSet::new());
    }

    #[test]
    fn small_sets_stay_inline_and_spill_transparently() {
        // Up to 256 procs: inline, no heap.
        let mut s = ProcSet::full(256);
        assert!(s.is_inline());
        assert!(s.clone().is_inline());
        // Bit 256 needs a fifth word: spills, logically unchanged.
        s.insert(256);
        assert!(!s.is_inline());
        assert_eq!(s.len(), 257);
        assert!(ProcSet::full(256).is_subset(&s));
        // Clone compacts back once the wide tail is gone.
        s.remove(256);
        assert!(s.clone().is_inline());
        assert_eq!(s, ProcSet::full(256));
    }

    #[test]
    fn inline_and_heap_reprs_are_equal_and_hash_alike() {
        use std::collections::hash_map::DefaultHasher;
        let inline = ProcSet::from_indices([3, 70, 128]);
        let heap = inline.clone().spilled();
        assert!(inline.is_inline() && !heap.is_inline());
        assert_eq!(inline, heap);
        let h = |s: &ProcSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&inline), h(&heap));
    }

    #[test]
    fn first_last_iter() {
        let s = ProcSet::from_indices([3, 70, 128]);
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.last(), Some(128));
        assert_eq!(
            s.iter().map(|p| p.index()).collect::<Vec<_>>(),
            vec![3, 70, 128]
        );
        assert_eq!(ProcSet::new().first(), None);
        assert_eq!(ProcSet::new().last(), None);
    }

    #[test]
    fn take_first() {
        let s = ProcSet::from_indices([2, 4, 6, 8]);
        assert_eq!(s.take_first(2), ProcSet::from_indices([2, 4]));
        assert_eq!(s.take_first(0), ProcSet::new());
        assert_eq!(s.take_first(4), s);
        // Across word boundaries, including a whole-word take.
        let wide = ProcSet::from_indices((0..64).chain([70, 130, 200]));
        assert_eq!(wide.take_first(64), ProcSet::range(0, 64));
        assert_eq!(
            wide.take_first(66),
            ProcSet::from_indices((0..64).chain([70, 130]))
        );
        // Gap words (an empty middle word) are skipped.
        let sparse = ProcSet::from_indices([1, 200, 201]);
        assert_eq!(sparse.take_first(2), ProcSet::from_indices([1, 200]));
    }

    #[test]
    fn difference_len_matches_difference() {
        let a = ProcSet::from_indices([0, 5, 64, 100, 300]);
        let b = ProcSet::from_indices([5, 100, 350]);
        assert_eq!(a.difference_len(&b), a.difference(&b).len());
        assert_eq!(a.difference_len(&ProcSet::new()), a.len());
        assert_eq!(ProcSet::new().difference_len(&a), 0);
        // `other` longer than `self` in words.
        assert_eq!(ProcSet::from_indices([1]).difference_len(&b), 1);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let a = ProcSet::from_indices([3, 70, 128]);
        let mut b = ProcSet::full(500);
        b.clone_from(&a);
        assert_eq!(a, b);
        // Shrinking keeps the trailing-zero-word invariant (structural
        // equality with a fresh clone).
        let mut c = ProcSet::full(500);
        c.clone_from(&ProcSet::new());
        assert_eq!(c, ProcSet::new());
        assert!(c.is_empty());
    }

    #[test]
    fn serde_form_is_repr_independent() {
        let inline = ProcSet::from_indices([3, 70, 128]);
        let heap = inline.clone().spilled();
        assert_eq!(inline.to_value(), heap.to_value());
        let wide = ProcSet::from_indices([1, 300]);
        for s in [&inline, &heap, &wide, &ProcSet::new()] {
            let back = ProcSet::from_value(&s.to_value()).expect("roundtrip");
            assert_eq!(&back, s);
        }
    }

    #[test]
    #[should_panic]
    fn take_first_too_many_panics() {
        ProcSet::range(0, 3).take_first(4);
    }

    #[test]
    fn display_ranges() {
        let s = ProcSet::from_indices([0, 1, 2, 3, 7, 9, 10]);
        assert_eq!(format!("{s}"), "0-3,7,9-10");
        assert_eq!(format!("{}", ProcSet::new()), "");
        assert_eq!(format!("{}", ProcSet::from_indices([5])), "5");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn idx() -> impl Strategy<Value = usize> {
        0usize..400
    }

    proptest! {
        /// ProcSet behaves exactly like a BTreeSet<usize> model.
        #[test]
        fn matches_btreeset_model(inserts in prop::collection::vec(idx(), 0..80),
                                  removes in prop::collection::vec(idx(), 0..40)) {
            let mut s = ProcSet::new();
            let mut model = BTreeSet::new();
            for &i in &inserts {
                prop_assert_eq!(s.insert(i), model.insert(i));
            }
            for &i in &removes {
                prop_assert_eq!(s.remove(i), model.remove(&i));
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.first(), model.iter().next().copied());
            prop_assert_eq!(s.last(), model.iter().next_back().copied());
            let got: Vec<usize> = s.iter().map(|p| p.index()).collect();
            let want: Vec<usize> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }

        /// Algebra laws against the BTreeSet model.
        #[test]
        fn algebra_matches_model(a in prop::collection::btree_set(idx(), 0..60),
                                 b in prop::collection::btree_set(idx(), 0..60)) {
            let sa = ProcSet::from_indices(a.iter().copied());
            let sb = ProcSet::from_indices(b.iter().copied());
            let union: BTreeSet<_> = a.union(&b).copied().collect();
            let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
            let diff: BTreeSet<_> = a.difference(&b).copied().collect();
            prop_assert_eq!(sa.union(&sb), ProcSet::from_indices(union));
            prop_assert_eq!(sa.intersection(&sb), ProcSet::from_indices(inter.clone()));
            prop_assert_eq!(sa.difference(&sb), ProcSet::from_indices(diff.clone()));
            prop_assert_eq!(sa.is_disjoint(&sb), inter.is_empty());
            prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
            prop_assert_eq!(sa.difference_len(&sb), diff.len());
            let mut scratch = ProcSet::full(64);
            scratch.clone_from(&sa);
            prop_assert_eq!(&scratch, &sa);
        }

        /// Every binary op agrees across all four inline/heap repr pairings,
        /// and in-place ops land in the same logical state regardless of the
        /// receiver's repr. Indices up to 400 cross the 256-proc inline
        /// boundary, so sets sit on both sides of the spill threshold and
        /// word counts hit the 4-word edge exactly.
        #[test]
        fn inline_and_heap_reprs_agree(a in prop::collection::btree_set(idx(), 0..60),
                                       b in prop::collection::btree_set(idx(), 0..60)) {
            let ai = ProcSet::from_indices(a.iter().copied());
            let bi = ProcSet::from_indices(b.iter().copied());
            let ah = ai.clone().spilled();
            let bh = bi.clone().spilled();
            prop_assert_eq!(&ai, &ah);
            for (x, y) in [(&ai, &bi), (&ai, &bh), (&ah, &bi), (&ah, &bh)] {
                prop_assert_eq!(x.union(y), ai.union(&bi));
                prop_assert_eq!(x.intersection(y), ai.intersection(&bi));
                prop_assert_eq!(x.difference(y), ai.difference(&bi));
                prop_assert_eq!(x.is_disjoint(y), ai.is_disjoint(&bi));
                prop_assert_eq!(x.is_subset(y), ai.is_subset(&bi));
                prop_assert_eq!(x.difference_len(y), ai.difference_len(&bi));
            }
            for recv in [ai.clone(), ah.clone()] {
                let mut u = recv.clone();
                u.union_with(&bh);
                prop_assert_eq!(&u, &ai.union(&bi));
                let mut i = recv.clone();
                i.intersect_with(&bh);
                prop_assert_eq!(&i, &ai.intersection(&bi));
                let mut d = recv.clone();
                d.subtract(&bh);
                prop_assert_eq!(&d, &ai.difference(&bi));
                let mut c = recv;
                c.clone_from(&bh);
                prop_assert_eq!(&c, &bi);
            }
            if !a.is_empty() {
                let k = a.len() / 2;
                prop_assert_eq!(ai.take_first(k), ah.take_first(k));
            }
        }

        /// `insert_range` equals element-wise insertion.
        #[test]
        fn insert_range_matches_loop(lo in 0usize..300, width in 0usize..150) {
            let hi = lo + width;
            let mut bulk = ProcSet::new();
            bulk.insert_range(lo, hi);
            let loop_set = ProcSet::from_indices(lo..hi);
            prop_assert_eq!(bulk, loop_set);
        }

        /// take_first returns the k smallest members and is a subset.
        #[test]
        fn take_first_is_prefix(set in prop::collection::btree_set(idx(), 1..60), k_frac in 0.0f64..1.0) {
            let s = ProcSet::from_indices(set.iter().copied());
            let k = ((set.len() as f64) * k_frac) as usize;
            let t = s.take_first(k);
            prop_assert_eq!(t.len(), k);
            prop_assert!(t.is_subset(&s));
            let want: Vec<usize> = set.iter().take(k).copied().collect();
            let got: Vec<usize> = t.iter().map(|p| p.index()).collect();
            prop_assert_eq!(got, want);
        }
    }
}
