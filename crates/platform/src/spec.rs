//! Machine hierarchy: nodes, clusters, platforms (light grids).
//!
//! Global processor numbering is cluster-major then node-major: cluster 0's
//! processors come first, inside a cluster node 0's CPUs come first. All
//! scheduling code addresses processors through this global numbering via
//! [`ProcSet`]s.

use serde::{Deserialize, Serialize};

use crate::network::{LinkClass, NetworkModel};
use crate::procset::{ProcId, ProcSet};

/// One machine (PC or SMP node).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Number of CPUs on the node (1 for a simple PC, 2 for the bi-processor
    /// nodes of Fig. 3).
    pub cpus: u32,
    /// Relative speed of each CPU (1.0 = reference). Within a cluster speeds
    /// differ only mildly — the paper's *weak* heterogeneity (different
    /// generations of the same processor family).
    pub speed: f64,
}

impl Node {
    /// A node with `cpus` CPUs at relative speed `speed`.
    pub fn new(cpus: u32, speed: f64) -> Self {
        assert!(cpus > 0 && speed > 0.0);
        Node { cpus, speed }
    }
}

/// A cluster: a set of nodes behind one interconnect, administrated and
/// submitted-to as a unit (paper §1.2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Human-readable name ("icluster", "xeon", …).
    pub name: String,
    /// The machines.
    pub nodes: Vec<Node>,
    /// The cluster interconnect class.
    pub interconnect: LinkClass,
}

impl Cluster {
    /// A homogeneous cluster of `n_nodes` nodes with `cpus_per_node` CPUs
    /// each at relative speed `speed`.
    pub fn homogeneous(
        name: impl Into<String>,
        n_nodes: usize,
        cpus_per_node: u32,
        speed: f64,
        interconnect: LinkClass,
    ) -> Self {
        Cluster {
            name: name.into(),
            nodes: vec![Node::new(cpus_per_node, speed); n_nodes],
            interconnect,
        }
    }

    /// Total CPU count of the cluster.
    pub fn total_procs(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus as usize).sum()
    }

    /// Mean relative CPU speed (weighted by CPU count).
    pub fn mean_speed(&self) -> f64 {
        let cpus: f64 = self.total_procs() as f64;
        let sum: f64 = self.nodes.iter().map(|n| n.cpus as f64 * n.speed).sum();
        sum / cpus
    }

    /// Speed of the `i`-th CPU of this cluster (cluster-local index).
    pub fn proc_speed(&self, i: usize) -> f64 {
        let mut rest = i;
        for node in &self.nodes {
            if rest < node.cpus as usize {
                return node.speed;
            }
            rest -= node.cpus as usize;
        }
        panic!("cluster {}: proc index {i} out of range", self.name);
    }
}

/// A light grid: a few clusters plus the network hierarchy connecting them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Name of the platform ("CIMENT", …).
    pub name: String,
    /// The clusters, in global numbering order.
    pub clusters: Vec<Cluster>,
    /// The three-level network model.
    pub network: NetworkModel,
}

impl Platform {
    /// A platform from explicit clusters.
    pub fn new(name: impl Into<String>, clusters: Vec<Cluster>, network: NetworkModel) -> Self {
        assert!(
            !clusters.is_empty(),
            "a platform needs at least one cluster"
        );
        Platform {
            name: name.into(),
            clusters,
            network,
        }
    }

    /// A single homogeneous cluster of `m` single-CPU machines at speed 1 —
    /// the setting of the paper's Fig. 2 simulation (m = 100) and of all
    /// identical-machine theory results.
    pub fn uniform(name: impl Into<String>, m: usize) -> Self {
        Platform::new(
            name,
            vec![Cluster::homogeneous("c0", m, 1, 1.0, LinkClass::gige())],
            NetworkModel::light_grid_default(),
        )
    }

    /// Total number of CPUs across all clusters.
    pub fn total_procs(&self) -> usize {
        self.clusters.iter().map(|c| c.total_procs()).sum()
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Global index of the first CPU of cluster `ci`.
    pub fn cluster_offset(&self, ci: usize) -> usize {
        self.clusters[..ci].iter().map(|c| c.total_procs()).sum()
    }

    /// The global [`ProcSet`] owned by cluster `ci`.
    pub fn cluster_procs(&self, ci: usize) -> ProcSet {
        let off = self.cluster_offset(ci);
        ProcSet::range(off, off + self.clusters[ci].total_procs())
    }

    /// The full processor set of the platform.
    pub fn all_procs(&self) -> ProcSet {
        ProcSet::full(self.total_procs())
    }

    /// Which cluster a global processor index belongs to.
    pub fn cluster_of(&self, p: ProcId) -> usize {
        let mut rest = p.index();
        for (ci, c) in self.clusters.iter().enumerate() {
            let n = c.total_procs();
            if rest < n {
                return ci;
            }
            rest -= n;
        }
        panic!("platform {}: proc {p} out of range", self.name);
    }

    /// Relative speed of a global processor.
    pub fn proc_speed(&self, p: ProcId) -> f64 {
        let ci = self.cluster_of(p);
        let local = p.index() - self.cluster_offset(ci);
        self.clusters[ci].proc_speed(local)
    }

    /// Aggregate compute power (sum of relative speeds) — the quantity the
    /// steady-state DLT throughput is limited by.
    pub fn total_power(&self) -> f64 {
        (0..self.total_procs())
            .map(|i| self.proc_speed(ProcId(i as u32)))
            .sum()
    }

    /// The flattened per-processor speed vector, in global processor
    /// order — the bridge from a structured [`Platform`] to the
    /// uniform-machine model (`lsps_core::uniform`, the scenario layer's
    /// speeded platform axis).
    pub fn proc_speeds(&self) -> Vec<f64> {
        self.clusters
            .iter()
            .flat_map(|c| {
                c.nodes
                    .iter()
                    .flat_map(|n| std::iter::repeat_n(n.speed, n.cpus as usize))
            })
            .collect()
    }

    /// A one-paragraph ASCII rendition of the platform (Fig. 1 / Fig. 3
    /// style), for the `platforms` experiment binary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "platform {} — {} clusters, {} CPUs, power {:.1}",
            self.name,
            self.n_clusters(),
            self.total_procs(),
            self.total_power()
        );
        for (ci, c) in self.clusters.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{}] {:<12} {:>4} nodes × {} cpus  speed {:.2}  link {:>6.0} µs / {:>7.1} MB/s  procs {}",
                ci,
                c.name,
                c.nodes.len(),
                c.nodes.first().map(|n| n.cpus).unwrap_or(0),
                c.mean_speed(),
                c.interconnect.latency_s * 1e6,
                c.interconnect.bandwidth_bps / 1e6,
                self.cluster_procs(ci),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster() -> Platform {
        Platform::new(
            "t",
            vec![
                Cluster::homogeneous("a", 2, 2, 1.0, LinkClass::myrinet()),
                Cluster::homogeneous("b", 3, 1, 0.5, LinkClass::eth100()),
            ],
            NetworkModel::light_grid_default(),
        )
    }

    #[test]
    fn totals_and_offsets() {
        let p = two_cluster();
        assert_eq!(p.total_procs(), 7);
        assert_eq!(p.cluster_offset(0), 0);
        assert_eq!(p.cluster_offset(1), 4);
        assert_eq!(p.cluster_procs(0), ProcSet::range(0, 4));
        assert_eq!(p.cluster_procs(1), ProcSet::range(4, 7));
        assert_eq!(p.all_procs(), ProcSet::full(7));
    }

    #[test]
    fn cluster_of_and_speed() {
        let p = two_cluster();
        assert_eq!(p.cluster_of(ProcId(0)), 0);
        assert_eq!(p.cluster_of(ProcId(3)), 0);
        assert_eq!(p.cluster_of(ProcId(4)), 1);
        assert_eq!(p.cluster_of(ProcId(6)), 1);
        assert_eq!(p.proc_speed(ProcId(1)), 1.0);
        assert_eq!(p.proc_speed(ProcId(5)), 0.5);
        assert!((p.total_power() - (4.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn proc_speeds_flattens_in_global_order() {
        let p = two_cluster();
        let speeds = p.proc_speeds();
        assert_eq!(speeds, vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5]);
        // Consistent with the per-proc accessor and the aggregate power.
        for (i, &s) in speeds.iter().enumerate() {
            assert_eq!(s, p.proc_speed(ProcId(i as u32)));
        }
        assert!((speeds.iter().sum::<f64>() - p.total_power()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn proc_out_of_range_panics() {
        two_cluster().cluster_of(ProcId(7));
    }

    #[test]
    fn uniform_platform() {
        let p = Platform::uniform("fig2", 100);
        assert_eq!(p.total_procs(), 100);
        assert_eq!(p.n_clusters(), 1);
        assert!((p.total_power() - 100.0).abs() < 1e-12);
        assert_eq!(p.proc_speed(ProcId(99)), 1.0);
    }

    #[test]
    fn heterogeneous_node_speeds() {
        let c = Cluster {
            name: "mix".into(),
            nodes: vec![Node::new(2, 1.0), Node::new(2, 0.8)],
            interconnect: LinkClass::gige(),
        };
        assert_eq!(c.proc_speed(0), 1.0);
        assert_eq!(c.proc_speed(1), 1.0);
        assert_eq!(c.proc_speed(2), 0.8);
        assert_eq!(c.proc_speed(3), 0.8);
        assert!((c.mean_speed() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_all_clusters() {
        let p = two_cluster();
        let r = p.render();
        assert!(r.contains("a") && r.contains("b") && r.contains("7 CPUs"));
    }
}
