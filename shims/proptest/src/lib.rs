//! Offline shim for `proptest`: the strategy combinators and the
//! `proptest!` macro this workspace uses, backed by plain random sampling.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with its sampled inputs intact
//!   (the assert message), which is enough to reproduce deterministically
//!   because the RNG seed is derived from the test's module path;
//! * `prop_assert!`/`prop_assert_eq!` are hard asserts rather than early
//!   returns.
//!
//! The sampled distributions (uniform ranges, uniform vec lengths) match
//! what the workspace's property tests assume.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Seed from a test name (FNV-1a hash) so each test gets a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        let span = hi - lo + 1;
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }
}

/// Test-runner configuration (`cases` is the only knob the shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the listed options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.u64_in(0, self.options.len() as u64 - 1) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u64_in(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.u64_in(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Closed interval: draw the unit sample from [0, 1] *inclusive* so
        // `end` is reachable.
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = rng.u64_in(0, 1 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

/// Strategy returned by [`any`].
pub struct ArbStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    ArbStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with uniformly sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_in(self.size.lo as u64, self.size.hi as u64 - 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` (duplicates collapse, as upstream).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set whose elements come from `element`; `size` bounds the number
    /// of *draws*, so the resulting set may be smaller after dedup.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let draws = rng.u64_in(self.size.lo as u64, self.size.hi as u64 - 1) as usize;
            (0..draws).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Hard-assert stand-in for proptest's early-return assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Hard-assert stand-in for proptest's early-return equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        // One `let` so every option unifies on the same `Value` type.
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec![::std::boxed::Box::new($first)];
        $( __options.push(::std::boxed::Box::new($rest)); )*
        $crate::Union::new(__options)
    }};
}

/// Define property tests: each `name(arg in strategy, ...)` block becomes a
/// `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestRng, Union,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let x = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(0.5f64..=1.0), &mut rng);
            assert!((0.5..=1.0).contains(&y));
            let v = Strategy::sample(&collection::vec(0usize..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1u64), (10u64..20).prop_map(|x| x * 2)];
        let mut rng = TestRng::new(2);
        let mut seen_small = false;
        let mut seen_big = false;
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            if v == 1 {
                seen_small = true;
            } else {
                assert!((20..40).contains(&v));
                seen_big = true;
            }
        }
        assert!(seen_small && seen_big);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself wires arguments and config.
        #[test]
        fn macro_smoke(a in 1u64..5, flag in any::<bool>(), xs in collection::vec(0u8..3, 0..4)) {
            prop_assert!((1..5).contains(&a));
            let _ = flag;
            prop_assert!(xs.len() < 4);
        }
    }
}
