//! "Which policy for which application?" — the paper's question, as code.
//!
//! The paper's thesis is that no single model/policy fits all light-grid
//! workloads: divisible loads want steady-state distribution, moldable
//! batches want MRT-style shelves, multi-user queues want bi-criteria or
//! backfilling, campaigns want best-effort hole filling. [`advise`] encodes
//! that decision matrix with the rationale attached, and the
//! `models_compare` experiment (TAB-P) validates it quantitatively.

use serde::{Deserialize, Serialize};

/// What the application looks like (§2's classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Application {
    /// Independent sequential jobs (no internal parallelism).
    SequentialBag,
    /// Rigid parallel tasks — processor counts fixed a priori.
    RigidParallel,
    /// Moldable parallel tasks — the scheduler picks the allotment.
    Moldable,
    /// Malleable parallel tasks — the allotment may change mid-run (§2.2:
    /// "requires advanced capabilities from the runtime environment").
    MalleableCapable,
    /// Multi-parametric campaign / arbitrarily splittable fine-grain work.
    DivisibleLoad,
}

/// What the owner cares about (§3's criteria).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Finish the whole set as early as possible (single-user view).
    Makespan,
    /// Average (weighted) completion — multi-user responsiveness.
    WeightedCompletion,
    /// Both of the above at once.
    BiCriteria,
    /// Sustained rate of task completions (campaigns, steady state).
    Throughput,
    /// Don't disturb local users while sharing (the light-grid constraint).
    GridFairness,
}

/// The policy families implemented in this workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// [`crate::mrt`] off-line, or wrapped in [`crate::batch`] on-line.
    MrtBatch,
    /// [`crate::smart`].
    SmartShelves,
    /// [`crate::bicriteria`].
    BiCriteriaBatches,
    /// [`crate::backfill`] (EASY or conservative).
    Backfilling,
    /// Single-machine Smith rule spread over processors
    /// ([`crate::list`] with [`crate::list::JobOrder::WeightDensity`]).
    WsptList,
    /// [`crate::malleable`] dynamic equipartition.
    DynamicEquipartition,
    /// `lsps-dlt` steady-state / multi-round distribution.
    DivisibleSteadyState,
    /// `lsps-grid` CiGri-style best-effort hole filling.
    BestEffortGrid,
}

impl PolicyChoice {
    /// Instantiate this choice as a runnable [`crate::policy::Policy`].
    ///
    /// Returns `None` for the two choices that are not Parallel-Task
    /// rectangle policies: [`PolicyChoice::DivisibleSteadyState`] lives in
    /// `lsps-dlt` (divisible loads have no per-job rectangles) and
    /// [`PolicyChoice::BestEffortGrid`] is the event-driven `lsps-grid`
    /// layer. Everything else round-trips into the registry instance the
    /// experiment runner uses.
    pub fn instantiate(self) -> Option<Box<dyn crate::policy::Policy>> {
        use crate::policy::{
            Backfilling, BatchedMrt, BiCriteriaDoubling, DeqEquipartition, ListScheduling,
            SmartShelves,
        };
        match self {
            PolicyChoice::MrtBatch => Some(Box::new(BatchedMrt::default())),
            PolicyChoice::SmartShelves => Some(Box::new(SmartShelves::weighted())),
            PolicyChoice::BiCriteriaBatches => Some(Box::new(BiCriteriaDoubling::default())),
            PolicyChoice::Backfilling => Some(Box::new(Backfilling::easy())),
            PolicyChoice::WsptList => Some(Box::new(ListScheduling::new(
                crate::list::JobOrder::WeightDensity,
            ))),
            PolicyChoice::DynamicEquipartition => Some(Box::new(DeqEquipartition)),
            PolicyChoice::DivisibleSteadyState | PolicyChoice::BestEffortGrid => None,
        }
    }
}

/// A recommendation with its justification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The policy to use.
    pub policy: PolicyChoice,
    /// Proven performance ratio, when one exists for this pairing.
    pub guarantee: Option<f64>,
    /// Why — in the paper's terms.
    pub rationale: String,
}

/// The decision matrix. `on_line` says whether jobs keep arriving (release
/// dates unknown in advance).
pub fn advise(app: Application, objective: Objective, on_line: bool) -> Recommendation {
    use Application as A;
    use Objective as O;
    use PolicyChoice as P;
    match (app, objective) {
        // Divisible / campaign work: the DLT model is the whole point.
        (A::DivisibleLoad, O::Throughput) | (A::DivisibleLoad, O::Makespan) => Recommendation {
            policy: P::DivisibleSteadyState,
            guarantee: Some(1.0),
            rationale: "fine-grain independent units: steady-state divisible-load \
                        distribution is asymptotically optimal in polynomial time (§5.2)"
                .into(),
        },
        (A::DivisibleLoad, O::GridFairness) => Recommendation {
            policy: P::BestEffortGrid,
            guarantee: None,
            rationale: "campaign runs are small and killable: submit them best-effort \
                        into the holes of local schedules; locals are never delayed (§5.2)"
                .into(),
        },
        (A::DivisibleLoad, _) => Recommendation {
            policy: P::DivisibleSteadyState,
            guarantee: None,
            rationale: "divisible work has no per-task completion semantics beyond \
                        throughput; distribute for steady state (§2.1)"
                .into(),
        },

        // Sequential bags.
        (A::SequentialBag, O::WeightedCompletion) => Recommendation {
            policy: P::WsptList,
            guarantee: None,
            rationale: "sequential jobs: Smith's rule is optimal per machine (§4.3); \
                        list it across processors"
                .into(),
        },
        (A::SequentialBag, O::BiCriteria) => Recommendation {
            policy: P::BiCriteriaBatches,
            guarantee: Some(8.0),
            rationale: "doubling batches give 4ρ on both Cmax and Σ ωC (§4.4, ρ=2)".into(),
        },
        (A::SequentialBag, O::GridFairness) | (A::RigidParallel, O::GridFairness) => {
            Recommendation {
                policy: P::BestEffortGrid,
                guarantee: None,
                rationale: "cross-cluster sharing must not delay owners: best-effort \
                            submission with kill-and-resubmit (§5.2)"
                    .into(),
            }
        }
        (A::SequentialBag, _) => Recommendation {
            policy: P::Backfilling,
            guarantee: None,
            rationale: "independent sequential jobs pack greedily; backfilling keeps \
                        utilization high under on-line arrivals (§5.1)"
                .into(),
        },

        // Rigid parallel tasks.
        (A::RigidParallel, O::WeightedCompletion) => Recommendation {
            policy: P::SmartShelves,
            guarantee: Some(8.53),
            rationale: "SMART shelves: power-of-two shelves in Smith order, ratio 8 \
                        unweighted / 8.53 weighted (§4.3)"
                .into(),
        },
        (A::RigidParallel, O::BiCriteria) => Recommendation {
            policy: P::BiCriteriaBatches,
            guarantee: Some(8.0),
            rationale: "rigid jobs enter the first doubling batch they fit (§5.1), \
                        keeping both guarantees (§4.4)"
                .into(),
        },
        (A::RigidParallel, _) => Recommendation {
            policy: P::Backfilling,
            guarantee: None,
            rationale: "fixed-width rectangles with reservations: conservative/EASY \
                        backfilling is the production answer (§5.1)"
                .into(),
        },

        // Moldable tasks — the paper's favourite model.
        (A::Moldable, O::Makespan) => Recommendation {
            policy: P::MrtBatch,
            guarantee: Some(if on_line { 3.0 } else { 1.5 }),
            rationale: if on_line {
                "MRT (3/2+ε) inside Shmoys batches doubles to 3+ε with release \
                 dates (§4.2)"
                    .into()
            } else {
                "MRT two-shelf dual approximation: 3/2+ε off-line (§4.1)".into()
            },
        },
        (A::Moldable, O::WeightedCompletion) | (A::Moldable, O::BiCriteria) => Recommendation {
            policy: P::BiCriteriaBatches,
            guarantee: Some(8.0),
            rationale: "ACmax-driven doubling batches: 4ρ simultaneously on Cmax and \
                        Σ ωC (§4.4) — the algorithm behind Fig. 2"
                .into(),
        },
        (A::Moldable, O::Throughput) => Recommendation {
            policy: P::MrtBatch,
            guarantee: None,
            rationale: "keeping work minimal (canonical allotments) maximizes the \
                        sustainable completion rate (§4.1)"
                .into(),
        },
        (A::Moldable, O::GridFairness) => Recommendation {
            policy: P::BestEffortGrid,
            guarantee: None,
            rationale: "share the grid without disturbing locals: local moldable \
                        scheduling + best-effort exchange (§5.2)"
                .into(),
        },

        // Malleable tasks: "much more easily usable from the scheduling
        // point of view" (§2.2) — equipartition adapts at every event.
        (A::MalleableCapable, O::GridFairness) => Recommendation {
            policy: P::BestEffortGrid,
            guarantee: None,
            rationale: "malleable grid jobs shrink instead of dying when locals \
                        arrive; best-effort submission still rules sharing (§5.2)"
                .into(),
        },
        (A::MalleableCapable, _) => Recommendation {
            policy: P::DynamicEquipartition,
            guarantee: None,
            rationale: "the runtime supports resizing: dynamic equipartition is \
                        work-conserving and adapts to every arrival/completion, \
                        dominating batch reshuffling (§2.2)"
                .into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moldable_makespan_gets_mrt_with_right_guarantee() {
        let off = advise(Application::Moldable, Objective::Makespan, false);
        assert_eq!(off.policy, PolicyChoice::MrtBatch);
        assert_eq!(off.guarantee, Some(1.5));
        let on = advise(Application::Moldable, Objective::Makespan, true);
        assert_eq!(on.policy, PolicyChoice::MrtBatch);
        assert_eq!(on.guarantee, Some(3.0));
    }

    #[test]
    fn rigid_weighted_completion_gets_smart() {
        let r = advise(
            Application::RigidParallel,
            Objective::WeightedCompletion,
            true,
        );
        assert_eq!(r.policy, PolicyChoice::SmartShelves);
        assert_eq!(r.guarantee, Some(8.53));
    }

    #[test]
    fn campaigns_get_dlt_or_best_effort() {
        let t = advise(Application::DivisibleLoad, Objective::Throughput, true);
        assert_eq!(t.policy, PolicyChoice::DivisibleSteadyState);
        let f = advise(Application::DivisibleLoad, Objective::GridFairness, true);
        assert_eq!(f.policy, PolicyChoice::BestEffortGrid);
    }

    #[test]
    fn bicriteria_objective_always_gets_doubling_batches() {
        for app in [
            Application::SequentialBag,
            Application::RigidParallel,
            Application::Moldable,
        ] {
            let r = advise(app, Objective::BiCriteria, true);
            assert_eq!(r.policy, PolicyChoice::BiCriteriaBatches, "{app:?}");
            assert_eq!(r.guarantee, Some(8.0));
        }
    }

    #[test]
    fn every_cell_has_a_rationale() {
        for app in [
            Application::SequentialBag,
            Application::RigidParallel,
            Application::Moldable,
            Application::MalleableCapable,
            Application::DivisibleLoad,
        ] {
            for obj in [
                Objective::Makespan,
                Objective::WeightedCompletion,
                Objective::BiCriteria,
                Objective::Throughput,
                Objective::GridFairness,
            ] {
                for on_line in [false, true] {
                    let r = advise(app, obj, on_line);
                    assert!(r.rationale.len() > 20, "{app:?}/{obj:?}: empty rationale");
                }
            }
        }
    }
}
