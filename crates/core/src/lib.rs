//! # lsps-core — the scheduling policies of the paper
//!
//! This crate implements every Parallel-Task scheduling result surveyed in
//! *Dutot, Eyraud, Mounié, Trystram — IPDPS 2004*, §4–5:
//!
//! | paper § | result | module |
//! |---------|--------|--------|
//! | 4.1 | MRT two-shelf dual-approximation for off-line moldable makespan, ratio 3/2 + ε (ref \[8\]) | [`mrt`] |
//! | 4.2 | batch transformation of an off-line ρ-approximation into an on-line 2ρ algorithm with release dates (ref \[17\]) | [`batch`] |
//! | 4.3 | SMART shelf scheduling of rigid tasks for (weighted) average completion time, ratio 8 / 8.53 (ref \[14\]) | [`smart`] |
//! | 4.4 | bi-criteria doubling-batch algorithm from a makespan procedure ACmax, simultaneous ratio 4ρ (ref \[10\]) | [`bicriteria`] |
//! | 5.1 | mixes of rigid and moldable jobs; advance reservations | [`mixed`], [`backfill`] |
//! | 3 / 4.3 | single-machine SPT / WSPT optimal substrate | [`single`] |
//! | whole paper | "which policy for which application" | [`advisor`] |
//!
//! plus the classical baselines the paper positions itself against: rigid
//! list scheduling ([`list`]), NFDH/FFDH shelf packing ([`shelf`]),
//! EASY/conservative backfilling with reservations ([`backfill`]), and
//! moldable allotment-selection heuristics ([`allot`]).
//!
//! All algorithms produce a [`Schedule`] — an exact, validated set of
//! `(job, start, processor-set)` assignments over `m` identical processors —
//! from which [`lsps_metrics::CompletedJob`] records and every §3 criterion
//! follow.
//!
//! Heterogeneity note: per DESIGN.md, algorithms assume identical processors
//! *within a cluster* (the paper's weak internal heterogeneity); the grid
//! layer (`lsps-grid`) handles between-cluster heterogeneity by normalising
//! job durations per cluster speed before calling into this crate.

pub mod advisor;
pub mod allot;
pub mod backfill;
pub mod batch;
pub mod bicriteria;
pub mod gantt;
pub mod list;
pub mod malleable;
pub mod mixed;
pub mod mrt;
pub mod nonclairvoyant;
pub mod outcome;
pub mod policy;
pub mod replan;
pub mod schedule;
pub mod shelf;
pub mod single;
pub mod smart;
pub mod uniform;

pub use advisor::{advise, Application, Objective, PolicyChoice, Recommendation};
pub use backfill::{backfill_schedule, backfill_schedule_estimated, BackfillPolicy, Reservation};
pub use batch::batch_online;
pub use bicriteria::{bicriteria_schedule, BiCriteriaParams};
pub use gantt::{gantt_svg, GanttOptions};
pub use list::{list_schedule, JobOrder};
pub use malleable::{deq_schedule, MalleableSchedule, MalleableSegment};
pub use mrt::{mrt_schedule, MrtParams};
pub use nonclairvoyant::{exponential_trial_schedule, TrialStats};
pub use outcome::{Outcome, OutcomeError, OutcomeKind, OutcomeRun};
pub use policy::{registry, Knowledge, PinnedBooking, Policy, PolicyCtx, PolicyRun, ReleaseMode};
pub use schedule::{Assignment, Schedule, ValidationError};
pub use shelf::{shelf_schedule, ShelfAlgo};
pub use single::{single_machine, SingleRule};
pub use smart::smart_schedule;
pub use uniform::{uniform_list_schedule, UniformSchedule};

/// Commonly used items.
pub mod prelude {
    pub use crate::advisor::{advise, Application, Objective, PolicyChoice, Recommendation};
    pub use crate::backfill::{
        backfill_schedule, backfill_schedule_estimated, BackfillPolicy, Reservation,
    };
    pub use crate::batch::batch_online;
    pub use crate::bicriteria::{bicriteria_schedule, BiCriteriaParams};
    pub use crate::gantt::{gantt_svg, GanttOptions};
    pub use crate::list::{list_schedule, JobOrder};
    pub use crate::malleable::{deq_schedule, MalleableSchedule, MalleableSegment};
    pub use crate::mrt::{mrt_schedule, MrtParams};
    pub use crate::nonclairvoyant::{exponential_trial_schedule, TrialStats};
    pub use crate::outcome::{Outcome, OutcomeError, OutcomeKind, OutcomeRun};
    pub use crate::policy::{
        registry, Knowledge, PinnedBooking, Policy, PolicyCtx, PolicyRun, ReleaseMode,
    };
    pub use crate::schedule::{Assignment, Schedule, ValidationError};
    pub use crate::shelf::{shelf_schedule, ShelfAlgo};
    pub use crate::single::{single_machine, SingleRule};
    pub use crate::smart::smart_schedule;
    pub use crate::uniform::{uniform_list_schedule, UniformSchedule};
}
