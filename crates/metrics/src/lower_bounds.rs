//! Certified lower bounds on the optimal criteria values.
//!
//! The paper's Fig. 2 plots performance *ratios* to the optimum. Computing
//! the optimum is NP-hard for every variant at hand, so — like every
//! empirical study in this literature — we divide by certified lower
//! bounds; the reported ratios are therefore *upper bounds* on the true
//! ones, which is conservative.
//!
//! * [`cmax_lower_bound`]: `max( ⌈W/m⌉ , max_j (rj + pj^min) )` where `W`
//!   is total minimal work — the *area* bound and the *tallest job* bound.
//! * [`wsum_lower_bound`]: the squashed-area WSPT bound used in the SMART
//!   analysis (\[14\] in the paper): compress each job to its minimal work on
//!   a single speed-`m` resource, order by Smith ratio (work/weight), and
//!   charge each job the max of its squashed completion and its individual
//!   bound `rj + pj^min`. Both components bound any feasible schedule from
//!   below, hence so does the combination.

use lsps_des::Dur;
use lsps_workload::Job;

/// Lower bound on the optimal makespan of `jobs` on `m` identical
/// processors (moldable jobs contribute their minimal work and minimal
/// time).
pub fn cmax_lower_bound(jobs: &[Job], m: usize) -> Dur {
    assert!(m >= 1);
    let total_work: u128 = jobs.iter().map(|j| j.min_work().ticks() as u128).sum();
    let area = Dur::from_ticks(total_work.div_ceil(m as u128) as u64);
    let tallest = jobs
        .iter()
        .map(|j| (j.release + j.min_time()).since_epoch())
        .fold(Dur::ZERO, Dur::max);
    area.max(tallest)
}

/// Lower bound on the optimal `Σ ωj Cj` of `jobs` on `m` identical
/// processors, in weight-seconds.
///
/// The maximum of two certified totals:
///
/// * **squashed area** — relax release dates and compress all minimal work
///   onto one speed-`m` preemptive resource; the Smith-order (WSPT) value
///   of that relaxation bounds every feasible schedule from below;
/// * **individual** — `Σ ωj (rj + pj^min)`, since every job satisfies
///   `Cj ≥ rj + pj^min`.
///
/// Note the max is over the *totals*, not per job: a per-job max would
/// pair each job's release bound with a squashed completion that assumes a
/// specific relaxed order, which is not simultaneously achievable — that
/// combination exceeds the optimum on some on-line instances.
pub fn wsum_lower_bound(jobs: &[Job], m: usize) -> f64 {
    assert!(m >= 1);
    // Order by Smith ratio work/weight (ascending) — the WSPT-optimal order
    // on the squashed machine. Zero-weight jobs go last (ratio ∞).
    let mut order: Vec<&Job> = jobs.iter().collect();
    order.sort_by(|a, b| {
        let ra = a.min_work().ticks() as f64 / a.weight.max(f64::MIN_POSITIVE);
        let rb = b.min_work().ticks() as f64 / b.weight.max(f64::MIN_POSITIVE);
        ra.partial_cmp(&rb)
            .expect("finite ratios")
            .then(a.id.cmp(&b.id))
    });
    let mut acc_work: u128 = 0;
    let mut squashed_total = 0.0;
    let mut individual_total = 0.0;
    for j in order {
        acc_work += j.min_work().ticks() as u128;
        // Squashed completion on the speed-m resource, in ticks.
        squashed_total += j.weight * (acc_work as f64 / m as f64);
        individual_total += j.weight * (j.release + j.min_time()).since_epoch().ticks() as f64;
    }
    squashed_total.max(individual_total) / lsps_des::TICKS_PER_SEC as f64
}

/// Lower bound on the optimal *sum of completion times* (unweighted):
/// [`wsum_lower_bound`] with all weights forced to one.
pub fn csum_lower_bound(jobs: &[Job], m: usize) -> f64 {
    let unweighted: Vec<Job> = jobs
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.weight = 1.0;
            j
        })
        .collect();
    wsum_lower_bound(&unweighted, m)
}

/// Assert a uniform-machine speed vector is usable for bounding.
fn check_speeds(speeds: &[f64]) -> (f64, f64) {
    assert!(
        !speeds.is_empty() && speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
        "speeds must be non-empty, positive and finite"
    );
    let total: f64 = speeds.iter().sum();
    let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
    (total, max)
}

/// Lower bound (seconds) on the optimal makespan of sequential `jobs` on
/// *uniform* machines with the given relative `speeds`: the speed-aware
/// area bound `Σ p / Σ s` and the tallest-job bound `max_j (rj + pj/s_max)`
/// — the identical-machine [`cmax_lower_bound`] with the machine count
/// replaced by aggregate speed and the per-job height scaled by the
/// fastest processor.
pub fn uniform_cmax_lower_bound(jobs: &[Job], speeds: &[f64]) -> f64 {
    let (total_speed, max_speed) = check_speeds(speeds);
    let ticks = lsps_des::TICKS_PER_SEC as f64;
    let total_work: f64 = jobs.iter().map(|j| j.min_work().ticks() as f64).sum();
    let area = total_work / total_speed / ticks;
    let tallest = jobs
        .iter()
        .map(|j| j.release.as_secs_f64() + j.min_time().ticks() as f64 / max_speed / ticks)
        .fold(0.0, f64::max);
    area.max(tallest)
}

/// Lower bound on the optimal `Σ ωj Cj` on uniform machines, in
/// weight-seconds — [`wsum_lower_bound`]'s two certified totals with the
/// squashed resource running at the aggregate speed `Σ s` and the
/// individual bound `Cj ≥ rj + pj / s_max`.
pub fn uniform_wsum_lower_bound(jobs: &[Job], speeds: &[f64]) -> f64 {
    let (total_speed, max_speed) = check_speeds(speeds);
    let ticks = lsps_des::TICKS_PER_SEC as f64;
    let mut order: Vec<&Job> = jobs.iter().collect();
    order.sort_by(|a, b| {
        let ra = a.min_work().ticks() as f64 / a.weight.max(f64::MIN_POSITIVE);
        let rb = b.min_work().ticks() as f64 / b.weight.max(f64::MIN_POSITIVE);
        ra.partial_cmp(&rb)
            .expect("finite ratios")
            .then(a.id.cmp(&b.id))
    });
    let mut acc_work = 0.0;
    let mut squashed_total = 0.0;
    let mut individual_total = 0.0;
    for j in order {
        acc_work += j.min_work().ticks() as f64;
        squashed_total += j.weight * (acc_work / total_speed);
        individual_total += j.weight
            * (j.release.since_epoch().ticks() as f64 + j.min_time().ticks() as f64 / max_speed);
    }
    squashed_total.max(individual_total) / ticks
}

/// Lower bound on the optimal sum of completion times on uniform machines:
/// [`uniform_wsum_lower_bound`] with all weights forced to one.
pub fn uniform_csum_lower_bound(jobs: &[Job], speeds: &[f64]) -> f64 {
    let unweighted: Vec<Job> = jobs
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.weight = 1.0;
            j
        })
        .collect();
    uniform_wsum_lower_bound(&unweighted, speeds)
}

/// Hint for sizing experiments: the time `Σ min_work / m` it takes the
/// whole machine to chew through the workload area (seconds).
pub fn area_seconds(jobs: &[Job], m: usize) -> f64 {
    let total: u128 = jobs.iter().map(|j| j.min_work().ticks() as u128).sum();
    total as f64 / m as f64 / lsps_des::TICKS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Time;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn cmax_area_bound_dominates_when_machine_small() {
        // 10 unit jobs on 2 machines: area bound 5.
        let jobs: Vec<Job> = (0..10).map(|i| Job::sequential(i, d(1))).collect();
        assert_eq!(cmax_lower_bound(&jobs, 2), d(5));
        // On 100 machines the tallest job (1) dominates.
        assert_eq!(cmax_lower_bound(&jobs, 100), d(1));
    }

    #[test]
    fn cmax_tallest_includes_release() {
        let jobs = vec![Job::sequential(0, d(10)).released_at(Time::from_ticks(90))];
        assert_eq!(cmax_lower_bound(&jobs, 4), d(100));
    }

    #[test]
    fn cmax_moldable_uses_min_work_and_min_time() {
        let prof = MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 4);
        let min_t = prof.min_time();
        let jobs = vec![Job::moldable(0, prof)];
        // Area bound on 1 machine = sequential work; tallest = min time.
        assert_eq!(cmax_lower_bound(&jobs, 1), d(100));
        assert_eq!(cmax_lower_bound(&jobs, 64), min_t);
    }

    #[test]
    fn uniform_bounds_reduce_to_identical_machine_bounds_at_unit_speed() {
        let jobs: Vec<Job> = (0..9)
            .map(|i| Job::sequential(i, Dur::from_secs(10 + i * 7)).with_weight(1.0 + i as f64))
            .collect();
        let speeds = vec![1.0; 4];
        let cmax = uniform_cmax_lower_bound(&jobs, &speeds);
        // The identical-machine bound ceils the area to whole ticks; the
        // uniform one does not — equal up to that rounding.
        let ident = cmax_lower_bound(&jobs, 4).as_secs_f64();
        assert!((cmax - ident).abs() < 1e-3, "{cmax} vs {ident}");
        let wsum = uniform_wsum_lower_bound(&jobs, &speeds);
        assert!((wsum - wsum_lower_bound(&jobs, 4)).abs() < 1e-6);
        let csum = uniform_csum_lower_bound(&jobs, &speeds);
        assert!((csum - csum_lower_bound(&jobs, 4)).abs() < 1e-6);
    }

    #[test]
    fn uniform_cmax_uses_aggregate_speed_and_fastest_height() {
        // Work 100 s on speeds (3, 1): area bound 25 s; a single 100 s job
        // bounded by 100/3 on the fastest machine.
        let jobs = vec![Job::sequential(0, Dur::from_secs(100))];
        let lb = uniform_cmax_lower_bound(&jobs, &[3.0, 1.0]);
        assert!((lb - 100.0 / 3.0).abs() < 1e-9, "lb = {lb}");
        let many: Vec<Job> = (0..8)
            .map(|i| Job::sequential(i, Dur::from_secs(100)))
            .collect();
        let lb = uniform_cmax_lower_bound(&many, &[3.0, 1.0]);
        assert!(
            (lb - 800.0 / 4.0).abs() < 1e-9,
            "area bound dominates: {lb}"
        );
    }

    #[test]
    #[should_panic]
    fn uniform_bounds_reject_bad_speeds() {
        uniform_cmax_lower_bound(&[], &[1.0, 0.0]);
    }

    #[test]
    fn wsum_single_machine_matches_wspt_exactly() {
        // On m = 1 with all releases 0, the squashed bound *is* the optimal
        // WSPT value. Jobs: (len 2, w 1), (len 1, w 1).
        let jobs = vec![
            Job::sequential(0, Dur::from_secs(2)),
            Job::sequential(1, Dur::from_secs(1)),
        ];
        // WSPT order: the 1s job first → C = 1 and 3 → Σ = 4.
        let lb = wsum_lower_bound(&jobs, 1);
        assert!((lb - 4.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn wsum_respects_weights() {
        // Same lengths, one heavy job: it must come first in the bound.
        let jobs = vec![
            Job::sequential(0, Dur::from_secs(1)).with_weight(1.0),
            Job::sequential(1, Dur::from_secs(1)).with_weight(10.0),
        ];
        // Optimal on one machine: heavy first → 10·1 + 1·2 = 12.
        let lb = wsum_lower_bound(&jobs, 1);
        assert!((lb - 12.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn wsum_individual_bound_kicks_in() {
        // A job released late: its completion can't precede release + len.
        let jobs = vec![Job::sequential(0, Dur::from_secs(1)).released_at(Time::from_secs(100))];
        let lb = wsum_lower_bound(&jobs, 8);
        assert!((lb - 101.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_scale_with_machines() {
        let jobs: Vec<Job> = (0..32)
            .map(|i| Job::sequential(i, Dur::from_secs(1)))
            .collect();
        // More machines ⇒ weaker (smaller) bounds.
        assert!(wsum_lower_bound(&jobs, 1) > wsum_lower_bound(&jobs, 4));
        assert!(cmax_lower_bound(&jobs, 1) > cmax_lower_bound(&jobs, 4));
        assert!((area_seconds(&jobs, 32) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csum_is_unweighted_wsum() {
        let jobs = vec![
            Job::sequential(0, Dur::from_secs(3)).with_weight(7.0),
            Job::sequential(1, Dur::from_secs(1)).with_weight(0.5),
        ];
        let a = csum_lower_bound(&jobs, 1);
        // Unweighted WSPT: 1 then 3 → 1 + 4 = 5.
        assert!((a - 5.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The squashed bound never exceeds the value of an explicit
        /// single-machine WSPT schedule built on a speed-m resource — i.e.
        /// it is what it claims to be.
        #[test]
        fn wsum_bound_below_any_list_schedule(
            lens in prop::collection::vec(1u64..1000, 1..40),
            m in 1usize..16,
        ) {
            let jobs: Vec<Job> = lens.iter().enumerate()
                .map(|(i, &l)| Job::sequential(i as u64, Dur::from_ticks(l)))
                .collect();
            let lb = wsum_lower_bound(&jobs, m);
            // Feasible schedule value: actually run the jobs one per
            // machine in arbitrary (id) order via a greedy earliest-machine
            // rule and compute its Σ C.
            let mut free = vec![0u64; m];
            let mut sum = 0.0;
            for j in &jobs {
                let (idx, _) = free.iter().enumerate().min_by_key(|&(_, &f)| f).unwrap();
                let start = free[idx];
                let end = start + j.min_work().ticks();
                free[idx] = end;
                sum += end as f64 / lsps_des::TICKS_PER_SEC as f64;
            }
            prop_assert!(lb <= sum + 1e-6, "lb {lb} > feasible {sum}");
        }

        /// Cmax lower bound is below a greedy feasible schedule too.
        #[test]
        fn cmax_bound_below_greedy(
            lens in prop::collection::vec(1u64..1000, 1..40),
            m in 1usize..16,
        ) {
            let jobs: Vec<Job> = lens.iter().enumerate()
                .map(|(i, &l)| Job::sequential(i as u64, Dur::from_ticks(l)))
                .collect();
            let lb = cmax_lower_bound(&jobs, m).ticks();
            let mut free = vec![0u64; m];
            for j in &jobs {
                let idx = (0..m).min_by_key(|&i| free[i]).unwrap();
                free[idx] += j.min_work().ticks();
            }
            let cmax = free.into_iter().max().unwrap();
            prop_assert!(lb <= cmax, "lb {lb} > feasible {cmax}");
        }
    }
}
