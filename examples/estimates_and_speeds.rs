//! Two practical §2.2/§4.2 effects, both through the unified `Policy` /
//! `Outcome` surface — no bespoke entry points:
//!
//! 1. **Unknown runtimes** — the registry's `nonclairvoyant-exp-trial`
//!    policy discovers execution times by kill-and-resubmit doubling; the
//!    ctx `Knowledge` knob sweeps the initial estimate and the
//!    `Outcome::Trial` counters price the non-clairvoyance.
//! 2. **Weak intra-cluster heterogeneity** — the registry's `uniform-mct`
//!    policy on a two-CPU-generation cluster, driven end-to-end by the
//!    checked-in declarative campaign spec
//!    (`examples/heterogeneous_campaign.json`).
//!
//! ```sh
//! cargo run --example estimates_and_speeds --release
//! ```

use std::path::Path;

use lsps::core::policy::{by_name, Knowledge, PolicyCtx};
use lsps::prelude::*;
use lsps::scenario::campaign::aggregate_header;
use lsps::scenario::{run_campaign, CampaignOptions, CampaignSpec};

fn main() {
    let m = 32;
    let mut rng = SimRng::seed_from(23);
    let jobs: Vec<Job> = (0..80)
        .map(|i| {
            Job::rigid(
                i,
                rng.int_range(1, 8) as usize,
                Dur::from_secs(rng.int_range(30, 1_800)),
            )
            .released_at(Time::from_secs(rng.int_range(0, 3_600)))
        })
        .collect();

    // 1. Non-clairvoyance priced by the trial counters: the worse the
    // first estimate, the more machine time is burnt on killed trials.
    let trial = by_name("nonclairvoyant-exp-trial").expect("registered");
    println!("unknown runtimes vs initial estimate (m = {m}, 80 rigid jobs):");
    println!(
        "{:>14}  {:>10}  {:>6}  {:>14}  {:>10}",
        "estimate (s)", "trials", "kills", "wasted (CPU-s)", "Cmax (s)"
    );
    for estimate_s in [30u64, 120, 600, 3_600] {
        let ctx = PolicyCtx {
            knowledge: Knowledge::NonClairvoyant {
                initial_estimate: Dur::from_secs(estimate_s),
            },
            ..PolicyCtx::default()
        };
        let run = trial.run_outcome(&jobs, m, &ctx);
        run.validate().expect("valid");
        let stats = run.outcome.trial_stats().expect("trial outcome");
        println!(
            "{estimate_s:>14}  {:>10}  {:>6}  {:>14.0}  {:>10.0}",
            stats.trials,
            stats.kills,
            stats.wasted_ticks as f64 / lsps::des::TICKS_PER_SEC as f64,
            run.outcome.makespan().as_secs_f64(),
        );
    }
    println!(
        "reading: the doubling pays < 4p + 2e per job, so even a 30 s seed \
         estimate\nonly costs a constant factor — the §4.2 price of not \
         knowing runtimes.\n"
    );

    // 2. Uniform machines, declaratively: the checked-in spec sweeps the
    // two CIMENT Athlon generations (8 x 1.0 + 8 x 0.55) against a
    // homogeneous 16-processor reference, three seeded replications each.
    let spec_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/heterogeneous_campaign.json");
    let text = std::fs::read_to_string(&spec_path).expect("checked-in spec");
    let spec: CampaignSpec = serde_json::from_str(&text).expect("spec parses");
    let opts = CampaignOptions {
        base_dir: spec_path.parent().map(Into::into),
        ..CampaignOptions::default()
    };
    let report = run_campaign(&spec, &opts).expect("campaign runs");
    println!(
        "uniform machines via campaign `{}` ({} cells):",
        spec.name, report.total
    );
    println!(
        "{:>10}  {:>9}  {:>12}  {:>8}",
        "platform", "reps", "Cmax ratio", "util %"
    );
    let col = |name: &str| {
        aggregate_header()
            .split(',')
            .position(|h| h == name)
            .expect("known aggregate column")
    };
    for line in report.aggregate_csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        let util: f64 = f[col("utilization_mean")].parse().unwrap_or(f64::NAN);
        println!(
            "{:>10}  {:>9}  {:>12}  {:>8.1}",
            f[3],
            f[5],
            f[col("cmax_ratio_mean")],
            util * 100.0
        );
    }
    println!(
        "reading: MCT lands work on the fast generation first; the \
         speed-aware\nlower bound keeps the ratio honest on both platforms."
    );
}
