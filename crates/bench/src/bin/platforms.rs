//! FIG1 — renders the platform models (the paper's light-grid picture and
//! the Fig. 3 CIMENT inventory) as text + JSON.

use lsps_bench::write_csv;
use lsps_platform::presets;

fn main() {
    println!("FIG1/FIG3 — platform inventory\n");
    let platforms = [presets::ciment(), presets::imag(), presets::fig2()];
    for p in &platforms {
        println!("{}", p.render());
    }
    let json = serde_json::to_string_pretty(&platforms.to_vec()).expect("serializable");
    write_csv("platforms.json", &json);
}
