//! One-round distribution on a heterogeneous star.
//!
//! A master holds `W` units of divisible load and serves `n` workers over
//! dedicated links, one at a time (one-port model). In an optimal one-round
//! distribution **all participating workers finish simultaneously** — any
//! idle tail could be shifted to someone else. That equal-finish condition
//! gives an affine recurrence between consecutive chunk sizes, solved here
//! in closed form (two passes, no iteration).
//!
//! With per-worker link bandwidths the *service order* matters; the
//! classical result is to serve **fastest links first** (bandwidth, not CPU
//! speed, drives the choice) — [`WorkerOrder`] exposes the alternatives so
//! the `dlt_policies` experiment can ablate them.
//!
//! When the load is too small to amortize a worker's latency, the solver
//! drops trailing workers until every chunk is non-negative — the standard
//! resource-selection rule.

use crate::model::{DltPlan, Worker};

/// Service orders for the one-port master.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerOrder {
    /// Decreasing link bandwidth — the provably good order.
    ByBandwidth,
    /// Decreasing CPU speed — the intuitive but wrong order when links
    /// differ.
    BySpeed,
    /// Exactly as passed in.
    AsGiven,
}

/// Solve the equal-finish one-round distribution of `w` units over
/// `workers` served in `order`. Returns chunk sizes (in the input worker
/// indexing; unused workers get 0) and the makespan.
///
/// ```
/// use lsps_dlt::{star_single_round, Worker, WorkerOrder};
///
/// let workers = vec![Worker::new(1.0, 5.0, 0.01), Worker::new(2.0, 3.0, 0.01)];
/// let plan = star_single_round(100.0, &workers, WorkerOrder::ByBandwidth);
/// plan.check(100.0);
/// assert!(plan.makespan < 0.01 + 100.0 / 5.0 + 100.0 / 1.0); // beats worker 0 alone
/// ```
///
/// # Panics
/// If `w <= 0` or no worker is given.
pub fn star_single_round(w: f64, workers: &[Worker], order: WorkerOrder) -> DltPlan {
    assert!(w > 0.0, "load must be positive");
    assert!(!workers.is_empty(), "need at least one worker");

    let mut idx: Vec<usize> = (0..workers.len()).collect();
    match order {
        WorkerOrder::ByBandwidth => idx.sort_by(|&a, &b| {
            workers[b]
                .bandwidth
                .partial_cmp(&workers[a].bandwidth)
                .expect("finite bandwidths")
                .then(a.cmp(&b))
        }),
        WorkerOrder::BySpeed => idx.sort_by(|&a, &b| {
            workers[b]
                .speed
                .partial_cmp(&workers[a].speed)
                .expect("finite speeds")
                .then(a.cmp(&b))
        }),
        WorkerOrder::AsGiven => {}
    }

    // Solve for every participant prefix and keep the best makespan: with
    // latencies, using *fewer* workers can win even when all chunks stay
    // non-negative, so drop-tail alone is not enough.
    let mut best: Option<DltPlan> = None;
    for n in 1..=idx.len() {
        let sel: Vec<&Worker> = idx[..n].iter().map(|&i| &workers[i]).collect();
        let Some(betas) = solve_equal_finish(w, &sel) else {
            break; // longer prefixes only add more latency pressure
        };
        let first = sel[0];
        let makespan = first.latency + betas[0] / first.bandwidth + betas[0] / first.speed;
        if best.as_ref().is_none_or(|b| makespan < b.makespan) {
            let mut alphas = vec![0.0; workers.len()];
            for (slot, &i) in idx[..n].iter().enumerate() {
                alphas[i] = betas[slot];
            }
            best = Some(DltPlan { alphas, makespan });
        }
    }
    let plan = best.expect("n = 1 always solves");
    plan.check(w);
    plan
}

/// Solve `β` for the ordered worker list, or `None` if some chunk would be
/// negative (too many participants for this load).
///
/// Equal finish between neighbours `i` and `i+1`:
/// `β_i/s_i = θ_{i+1} + β_{i+1}/b_{i+1} + β_{i+1}/s_{i+1}`,
/// affine in `β_n`; normalize with `Σ β = W`.
fn solve_equal_finish(w: f64, sel: &[&Worker]) -> Option<Vec<f64>> {
    let n = sel.len();
    // β_i = p_i·x + q_i with x = β_n.
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    p[n - 1] = 1.0;
    q[n - 1] = 0.0;
    for i in (0..n - 1).rev() {
        let nxt = sel[i + 1];
        let a = sel[i].speed * (1.0 / nxt.bandwidth + 1.0 / nxt.speed);
        p[i] = a * p[i + 1];
        q[i] = sel[i].speed * nxt.latency + a * q[i + 1];
    }
    let sum_p: f64 = p.iter().sum();
    let sum_q: f64 = q.iter().sum();
    let x = (w - sum_q) / sum_p;
    if x < 0.0 {
        return None;
    }
    let betas: Vec<f64> = (0..n).map(|i| p[i] * x + q[i]).collect();
    debug_assert!(betas.iter().all(|&b| b >= -1e-9));
    Some(betas)
}

/// Recompute each used worker's finish time under `plan` (one-port service
/// in `order`) — test/diagnostic helper.
pub fn finish_times(w_order: &[usize], workers: &[Worker], plan: &DltPlan) -> Vec<f64> {
    let mut port = 0.0;
    let mut finishes = Vec::new();
    for &i in w_order {
        let beta = plan.alphas[i];
        if beta == 0.0 {
            continue;
        }
        let wk = &workers[i];
        port += wk.latency + beta / wk.bandwidth;
        finishes.push(port + beta / wk.speed);
    }
    finishes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, speed: f64, bw: f64, lat: f64) -> Vec<Worker> {
        vec![Worker::new(speed, bw, lat); n]
    }

    #[test]
    fn single_worker_closed_form() {
        let ws = [Worker::new(2.0, 10.0, 0.5)];
        let plan = star_single_round(100.0, &ws, WorkerOrder::AsGiven);
        assert!((plan.alphas[0] - 100.0).abs() < 1e-9);
        // 0.5 + 100/10 + 100/2.
        assert!((plan.makespan - 60.5).abs() < 1e-9);
    }

    #[test]
    fn all_used_workers_finish_simultaneously() {
        let ws = vec![
            Worker::new(1.0, 5.0, 0.01),
            Worker::new(2.0, 3.0, 0.02),
            Worker::new(0.5, 8.0, 0.005),
            Worker::new(3.0, 1.0, 0.0),
        ];
        let plan = star_single_round(500.0, &ws, WorkerOrder::ByBandwidth);
        plan.check(500.0);
        // Service order used internally: bandwidth desc = [2,0,1,3].
        let order = [2usize, 0, 1, 3];
        let fins = finish_times(&order, &ws, &plan);
        for f in &fins {
            assert!(
                (f - plan.makespan).abs() < 1e-6,
                "finish {f} != makespan {}",
                plan.makespan
            );
        }
    }

    #[test]
    fn more_workers_never_hurt_with_zero_latency() {
        let w = 1000.0;
        let one = star_single_round(w, &uniform(1, 1.0, 2.0, 0.0), WorkerOrder::AsGiven);
        let four = star_single_round(w, &uniform(4, 1.0, 2.0, 0.0), WorkerOrder::AsGiven);
        assert!(four.makespan < one.makespan);
        assert_eq!(four.used_workers(), 4);
    }

    #[test]
    fn bandwidth_order_beats_speed_order() {
        // Fast CPU behind a slow link vs slow CPU behind a fast link: the
        // classical ordering result says serve the fast link first.
        let ws = vec![
            Worker::new(10.0, 1.0, 0.0), // fast CPU, slow link
            Worker::new(1.0, 10.0, 0.0), // slow CPU, fast link
        ];
        let by_bw = star_single_round(100.0, &ws, WorkerOrder::ByBandwidth);
        let by_speed = star_single_round(100.0, &ws, WorkerOrder::BySpeed);
        assert!(
            by_bw.makespan <= by_speed.makespan + 1e-9,
            "bw {} vs speed {}",
            by_bw.makespan,
            by_speed.makespan
        );
    }

    #[test]
    fn latency_drops_excess_workers() {
        // Tiny load, brutal latencies: only a few workers are worth it.
        let ws = uniform(16, 1.0, 10.0, 5.0);
        let plan = star_single_round(1.0, &ws, WorkerOrder::AsGiven);
        plan.check(1.0);
        assert!(plan.used_workers() < 16, "latency must exclude workers");
        assert!(plan.used_workers() >= 1);
    }

    #[test]
    fn makespan_bounds() {
        let ws = uniform(8, 2.0, 4.0, 0.01);
        let w = 800.0;
        let plan = star_single_round(w, &ws, WorkerOrder::AsGiven);
        let total_speed: f64 = ws.iter().map(|x| x.speed).sum();
        // Cannot beat infinite-bandwidth perfection…
        assert!(plan.makespan >= w / total_speed);
        // …and must beat a single worker doing everything.
        assert!(plan.makespan <= 0.01 + w / 4.0 + w / 2.0);
    }

    #[test]
    fn load_monotonicity() {
        let ws = uniform(4, 1.0, 2.0, 0.1);
        let a = star_single_round(100.0, &ws, WorkerOrder::AsGiven);
        let b = star_single_round(200.0, &ws, WorkerOrder::AsGiven);
        assert!(b.makespan > a.makespan);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn worker_strategy() -> impl Strategy<Value = Worker> {
        (0.1f64..10.0, 0.1f64..20.0, 0.0f64..0.5).prop_map(|(s, b, l)| Worker::new(s, b, l))
    }

    proptest! {
        /// The closed form always yields a consistent plan dominating the
        /// infinite-bandwidth bound; the first worker of the service order
        /// alone is a candidate the prefix search must not lose to.
        #[test]
        fn plan_always_consistent(
            ws in prop::collection::vec(worker_strategy(), 1..10),
            w in 1.0f64..10_000.0,
        ) {
            let plan = star_single_round(w, &ws, WorkerOrder::ByBandwidth);
            plan.check(w);
            let total_speed: f64 = ws.iter().map(|x| x.speed).sum();
            prop_assert!(plan.makespan >= w / total_speed - 1e-9);
            let first = ws.iter().cloned().reduce(|a, b| {
                if b.bandwidth > a.bandwidth { b } else { a }
            }).expect("non-empty");
            let first_alone = first.latency + w / first.bandwidth + w / first.speed;
            prop_assert!(plan.makespan <= first_alone + 1e-6,
                "plan {} worse than its own n=1 prefix {first_alone}", plan.makespan);
        }

        /// With zero latencies, the equal-finish plan over the full worker
        /// set beats ANY single worker (zero-size messages are free, so
        /// every single-worker schedule is a feasible point of the fixed-
        /// order problem the closed form optimizes).
        #[test]
        fn zero_latency_beats_any_single(
            specs in prop::collection::vec((0.1f64..10.0, 0.1f64..20.0), 1..10),
            w in 1.0f64..10_000.0,
        ) {
            let ws: Vec<Worker> = specs.iter()
                .map(|&(s, b)| Worker::new(s, b, 0.0))
                .collect();
            let plan = star_single_round(w, &ws, WorkerOrder::ByBandwidth);
            let best_single = ws.iter()
                .map(|x| w / x.bandwidth + w / x.speed)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(plan.makespan <= best_single + 1e-6);
        }
    }
}
