//! The scenario runner in five statements: cross the whole policy registry
//! with two workload families on one platform, get every §3 criterion and
//! the standard CSV, with every schedule validated on the way.
//!
//! ```sh
//! cargo run --example experiment_runner --release
//! ```

use lsps_bench::runner::{self, ExperimentRunner, PlatformCase, WorkloadCase};
use lsps_core::policy::registry;
use lsps_workload::WorkloadSpec;

fn main() {
    let mut experiment = ExperimentRunner::new(registry());
    experiment.platforms = vec![PlatformCase::new("cluster", 64)];
    experiment.workloads = (0..3)
        .flat_map(|seed| {
            [
                WorkloadCase::from_spec("parallel", seed, WorkloadSpec::fig2_parallel(120)),
                WorkloadCase::from_spec("sequential", seed, WorkloadSpec::fig2_sequential(120)),
            ]
        })
        .collect();
    let cells = experiment.run();

    runner::print_cells(&cells);
    println!("\nmean Cmax ratio per policy over all cells:");
    for (policy, summary) in runner::summarize_by(&cells, |c| c.policy.clone(), |c| c.cmax_ratio) {
        println!("  {policy:<22} {:.3}", summary.mean());
    }
}
