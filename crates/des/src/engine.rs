//! Generic event-driven simulation engine.
//!
//! A [`Model`] owns the domain state (clusters, queues, jobs…) and reacts to
//! its own event type; the [`Simulation`] owns the clock and the event queue
//! and drives the model. The model schedules future events through the
//! [`Ctx`] handle it receives on every callback, which also carries the
//! execution trace.
//!
//! The engine enforces the causality invariant: a model may never schedule an
//! event strictly in the past (it may schedule at `now`, which re-enters the
//! dispatch loop after currently pending same-time events — FIFO order).

use crate::queue::{EventKey, EventQueue};
use crate::time::Time;
use crate::trace::Trace;

/// Domain logic plugged into a [`Simulation`].
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// React to `event` occurring at `now`. New events are scheduled through
    /// `ctx`; domain state lives in `self`.
    fn handle(&mut self, now: Time, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

/// Scheduling handle passed to [`Model::handle`].
pub struct Ctx<'a, E> {
    now: Time,
    queue: &'a mut EventQueue<E>,
    trace: &'a mut Trace,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// If `at` is strictly in the past (causality violation — always a bug in
    /// the model).
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {:?} while now is {:?}",
            at,
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedule `event` after a delay of `d`.
    pub fn schedule_in(&mut self, d: crate::time::Dur, event: E) -> EventKey {
        let at = self.now + d;
        self.queue.schedule(at, event)
    }

    /// Cancel a pending event. Returns `true` if it was still live.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Append a line to the execution trace (no-op when tracing is off).
    pub fn trace(&mut self, text: impl FnOnce() -> String) {
        self.trace.record(self.now, text);
    }
}

/// Counters reported by the [`Simulation::run_to_completion`] /
/// [`Simulation::run_until`] variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events dispatched to the model.
    pub events_dispatched: u64,
    /// Simulated time of the last dispatched event.
    pub last_event_time: Time,
    /// High-water mark of *live* queued events over the simulation's
    /// lifetime — the agenda depth the model actually required.
    pub peak_queue_live: usize,
    /// High-water mark of the queue's heap footprint (live + tombstoned
    /// entries). Compaction keeps this within 2× the live count; a gap
    /// between the two peaks measures how cancel-heavy the run was.
    pub peak_queue_heap: usize,
}

/// Event-driven simulation: clock + queue + model.
pub struct Simulation<M: Model> {
    now: Time,
    queue: EventQueue<M::Event>,
    model: M,
    trace: Trace,
    dispatched: u64,
    peak_live: usize,
    peak_heap: usize,
}

impl<M: Model> Simulation<M> {
    /// A simulation at time zero with an empty agenda.
    pub fn new(model: M) -> Self {
        Simulation {
            now: Time::ZERO,
            queue: EventQueue::new(),
            model,
            trace: Trace::disabled(),
            dispatched: 0,
            peak_live: 0,
            peak_heap: 0,
        }
    }

    /// Enable execution tracing, keeping at most `capacity` most recent lines.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Trace::enabled(capacity);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Immutable access to the domain model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the domain model (for setup between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The execution trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Seed the agenda before running.
    pub fn schedule_at(&mut self, at: Time, event: M::Event) -> EventKey {
        assert!(at >= self.now, "cannot seed event in the past");
        let key = self.queue.schedule(at, event);
        self.note_queue_health();
        key
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events dispatched over the simulation's whole lifetime (the
    /// per-run counts are in the [`RunStats`] each run variant returns).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Record the queue's current live/heap depths into the lifetime
    /// high-water marks reported through [`RunStats`]. Sampled once per
    /// dispatch (after the previous handler's schedules landed), so the
    /// cost is two comparisons per event.
    #[inline]
    fn note_queue_health(&mut self) {
        self.peak_live = self.peak_live.max(self.queue.len());
        self.peak_heap = self.peak_heap.max(self.queue.heap_len());
    }

    /// Dispatch a single event; returns `false` when the agenda is empty.
    pub fn step(&mut self) -> bool {
        self.note_queue_health();
        match self.queue.pop() {
            Some((at, _key, event)) => {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                let mut ctx = Ctx {
                    now: at,
                    queue: &mut self.queue,
                    trace: &mut self.trace,
                };
                self.model.handle(at, event, &mut ctx);
                self.dispatched += 1;
                true
            }
            None => false,
        }
    }

    /// Run until the agenda empties. `max_events` bounds runaway models
    /// (panics when exceeded — a model that self-perpetuates past the bound
    /// is a bug, not a workload).
    pub fn run_to_completion(&mut self, max_events: u64) -> RunStats {
        let start = self.dispatched;
        while self.step() {
            assert!(
                self.dispatched - start <= max_events,
                "simulation exceeded {} events — runaway model?",
                max_events
            );
        }
        RunStats {
            events_dispatched: self.dispatched - start,
            last_event_time: self.now,
            peak_queue_live: self.peak_live,
            peak_queue_heap: self.peak_heap,
        }
    }

    /// Run while events exist with a timestamp `<= horizon`. Events beyond
    /// the horizon stay pending; the clock advances to the last dispatched
    /// event (not to the horizon).
    pub fn run_until(&mut self, horizon: Time) -> RunStats {
        let start = self.dispatched;
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {
                    let progressed = self.step();
                    debug_assert!(progressed);
                }
                _ => break,
            }
        }
        self.note_queue_health();
        RunStats {
            events_dispatched: self.dispatched - start,
            last_event_time: self.now,
            peak_queue_live: self.peak_live,
            peak_queue_heap: self.peak_heap,
        }
    }

    /// Consume the simulation and return the model (for extracting results).
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Dur, Time};

    /// A model that computes Fibonacci-by-events: each `Tick(n)` schedules
    /// `Tick(n-1)` and `Tick(n-2)` — a stress test of dispatch order.
    struct Counter {
        fired: Vec<(u64, u64)>, // (time, payload)
    }

    enum Ev {
        Tick(u64),
        Chain(u64),
    }

    impl Model for Counter {
        type Event = Ev;
        fn handle(&mut self, now: Time, event: Ev, ctx: &mut Ctx<'_, Ev>) {
            match event {
                Ev::Tick(n) => {
                    self.fired.push((now.ticks(), n));
                }
                Ev::Chain(n) => {
                    self.fired.push((now.ticks(), n));
                    if n > 0 {
                        ctx.schedule_in(Dur::from_ticks(10), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn dispatches_in_order() {
        let mut sim = Simulation::new(Counter { fired: vec![] });
        sim.schedule_at(Time::from_ticks(5), Ev::Tick(1));
        sim.schedule_at(Time::from_ticks(1), Ev::Tick(2));
        sim.schedule_at(Time::from_ticks(5), Ev::Tick(3)); // tie with first
        let stats = sim.run_to_completion(100);
        assert_eq!(stats.events_dispatched, 3);
        assert_eq!(stats.last_event_time, Time::from_ticks(5));
        assert_eq!(sim.model().fired, vec![(1, 2), (5, 1), (5, 3)]);
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Counter { fired: vec![] });
        sim.schedule_at(Time::ZERO, Ev::Chain(3));
        sim.run_to_completion(100);
        assert_eq!(sim.model().fired, vec![(0, 3), (10, 2), (20, 1), (30, 0)]);
        assert_eq!(sim.now(), Time::from_ticks(30));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Simulation::new(Counter { fired: vec![] });
        sim.schedule_at(Time::from_ticks(10), Ev::Tick(1));
        sim.schedule_at(Time::from_ticks(20), Ev::Tick(2));
        let stats = sim.run_until(Time::from_ticks(15));
        assert_eq!(stats.events_dispatched, 1);
        assert_eq!(sim.pending(), 1);
        sim.run_to_completion(10);
        assert_eq!(sim.model().fired.len(), 2);
    }

    #[test]
    fn run_stats_report_queue_peaks() {
        let mut sim = Simulation::new(Counter { fired: vec![] });
        for i in 0..5 {
            sim.schedule_at(Time::from_ticks(i), Ev::Tick(i));
        }
        let stats = sim.run_to_completion(100);
        assert_eq!(stats.peak_queue_live, 5);
        assert!(stats.peak_queue_heap >= stats.peak_queue_live);
    }

    #[test]
    #[should_panic(expected = "runaway")]
    fn runaway_guard_fires() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: Time, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.schedule_in(Dur::from_ticks(1), ());
            }
        }
        let mut sim = Simulation::new(Forever);
        sim.schedule_at(Time::ZERO, ());
        sim.run_to_completion(1000);
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn past_scheduling_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: Time, _: (), ctx: &mut Ctx<'_, ()>) {
                if now > Time::ZERO {
                    ctx.schedule_at(Time::ZERO, ());
                }
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(Time::from_ticks(5), ());
        sim.run_to_completion(10);
    }

    #[test]
    fn trace_records_when_enabled() {
        struct Talks;
        impl Model for Talks {
            type Event = u32;
            fn handle(&mut self, _: Time, e: u32, ctx: &mut Ctx<'_, u32>) {
                ctx.trace(|| format!("saw {e}"));
            }
        }
        let mut sim = Simulation::new(Talks).with_trace(16);
        sim.schedule_at(Time::from_ticks(3), 7);
        sim.run_to_completion(10);
        let lines: Vec<_> = sim.trace().entries().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text, "saw 7");
        assert_eq!(lines[0].at, Time::from_ticks(3));
    }
}
