//! Non-clairvoyant scheduling (§4.2).
//!
//! "We distinguish two types of on-line algorithms, namely, clairvoyant
//! on-line algorithms when most parameters of the Parallel Tasks are known
//! as soon as they arrive, and non-clairvoyant ones when only a partial
//! knowledge of these parameters is available."
//!
//! The workspace's policies are clairvoyant; this module provides the
//! classical bridge for unknown execution times: **exponential trial**
//! scheduling. Each job is run with a runtime *estimate*; if it has not
//! finished when the estimate expires it is killed and resubmitted with a
//! doubled estimate. The total processing paid for a job with true time `p`
//! and initial estimate `e` is less than `4·p + 2e` (geometric series), so
//! any clairvoyant policy's guarantee degrades by a constant factor —
//! the standard price of non-clairvoyance.

use lsps_des::{Dur, Time};
use lsps_platform::BookingKind;
use lsps_platform::Timeline;
use lsps_workload::{Job, JobKind};

use crate::schedule::{Assignment, Schedule};

/// Outcome counters of a non-clairvoyant run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Total trials started (≥ number of jobs).
    pub trials: u64,
    /// Trials killed at their estimate.
    pub kills: u64,
    /// CPU-ticks spent on killed trials (the non-clairvoyance overhead).
    pub wasted_ticks: u64,
}

/// Schedule rigid jobs whose execution times are *unknown* to the policy:
/// run every job FCFS with exponentially growing estimates, killing and
/// resubmitting on expiry. `initial_estimate` seeds the doubling.
///
/// Returns the resulting (valid, actual-times) schedule: the final —
/// successful — trial of each job is its real execution; killed trials
/// occupy the machine but appear only in the stats.
pub fn exponential_trial_schedule(
    jobs: &[Job],
    m: usize,
    initial_estimate: Dur,
) -> (Schedule, TrialStats) {
    assert!(!initial_estimate.is_zero(), "estimate must be positive");
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Rigid { .. }),
            "exponential_trial_schedule expects rigid jobs; job {} is not",
            j.id
        );
        assert!(j.min_procs() <= m, "job {} wider than machine", j.id);
    }
    // Trial queue: (job index, estimate, earliest start). FCFS by
    // (release/requeue time, id) — a resubmitted trial goes to the back.
    let mut tl = Timeline::with_procs(m);
    let mut sched = Schedule::new(m);
    let mut stats = TrialStats::default();
    let mut queue: Vec<(usize, Dur, Time)> = {
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (jobs[i].release, jobs[i].id));
        order
            .into_iter()
            .map(|i| (i, initial_estimate, jobs[i].release))
            .collect()
    };

    let mut cursor = 0usize;
    while cursor < queue.len() {
        let (idx, estimate, earliest) = queue[cursor];
        cursor += 1;
        let job = &jobs[idx];
        let q = job.min_procs();
        let true_len = job.time_on(q);
        stats.trials += 1;
        if true_len <= estimate {
            // The trial succeeds: book the real duration.
            let (start, procs) = tl
                .earliest_slot(earliest, true_len, q)
                .expect("q <= m, so a slot always exists");
            tl.book(start, start + true_len, procs.clone(), BookingKind::Job);
            sched.push(Assignment {
                job: job.id,
                start,
                end: start + true_len,
                procs,
            });
        } else {
            // The trial is killed at the estimate; the machine time is
            // burnt and the job re-enters with a doubled estimate.
            let (start, procs) = tl
                .earliest_slot(earliest, estimate, q)
                .expect("q <= m, so a slot always exists");
            tl.book(start, start + estimate, procs, BookingKind::Job);
            stats.kills += 1;
            stats.wasted_ticks += estimate.ticks() * q as u64;
            queue.push((idx, estimate * 2, start + estimate));
        }
    }
    (sched, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::SimRng;
    use lsps_metrics::cmax_lower_bound;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn exact_estimate_means_no_kills() {
        let jobs = vec![Job::rigid(1, 1, d(100)), Job::rigid(2, 2, d(50))];
        let (s, stats) = exponential_trial_schedule(&jobs, 4, d(100));
        assert_eq!(s.validate(&jobs), Ok(()));
        assert_eq!(stats.kills, 0);
        assert_eq!(stats.trials, 2);
        assert_eq!(stats.wasted_ticks, 0);
    }

    #[test]
    fn doubling_finds_the_right_estimate() {
        // True length 700, initial estimate 100: kills at 100, 200, 400,
        // succeeds at 800 ⇒ 3 kills, 700 wasted ticks.
        let jobs = vec![Job::rigid(1, 1, d(700))];
        let (s, stats) = exponential_trial_schedule(&jobs, 1, d(100));
        assert_eq!(s.validate(&jobs), Ok(()));
        assert_eq!(stats.kills, 3);
        assert_eq!(stats.wasted_ticks, 100 + 200 + 400);
        // The job completes after its kills: 700 burnt + 700 real.
        assert_eq!(s.makespan(), Time::from_ticks(1400));
    }

    #[test]
    fn overhead_bounded_by_constant_factor() {
        // Geometric trials waste < 2× the true length when the initial
        // estimate is below it (100+200+…+2^k·e < 2·p for the first
        // power of two ≥ p); whole-schedule makespan stays within ~4× of
        // the clairvoyant lower bound on random instances.
        let mut rng = SimRng::seed_from(5);
        let m = 8;
        let jobs: Vec<Job> = (0..30)
            .map(|i| Job::rigid(i, rng.int_range(1, 4) as usize, d(rng.int_range(10, 2_000))))
            .collect();
        let (s, stats) = exponential_trial_schedule(&jobs, m, d(10));
        assert_eq!(s.validate(&jobs), Ok(()));
        let lb = cmax_lower_bound(&jobs, m).ticks() as f64;
        let ratio = s.makespan().ticks() as f64 / lb;
        assert!(ratio <= 4.0, "non-clairvoyant ratio {ratio}");
        assert!(stats.kills > 0, "instance long enough to force kills");
        // Per-job waste bound: total wasted < 2 × total true work.
        let total_work: u64 = jobs.iter().map(|j| j.min_work().ticks()).sum();
        assert!(stats.wasted_ticks < 2 * total_work);
    }

    #[test]
    fn release_dates_respected() {
        let jobs = vec![Job::rigid(1, 1, d(50)).released_at(Time::from_ticks(500))];
        let (s, _) = exponential_trial_schedule(&jobs, 2, d(10));
        assert_eq!(s.validate(&jobs), Ok(()));
        assert!(s.assignments()[0].start >= Time::from_ticks(500));
    }

    #[test]
    fn empty_input() {
        let (s, stats) = exponential_trial_schedule(&[], 4, d(10));
        assert!(s.is_empty());
        assert_eq!(stats, TrialStats::default());
    }
}
