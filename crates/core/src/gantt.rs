//! Gantt chart rendering: SVG export for schedules.
//!
//! The ASCII renderer ([`Schedule::gantt_ascii`]) is for terminals; this
//! module produces a standalone SVG — one lane per processor, one rectangle
//! per assignment, color-keyed by job id — suitable for inspecting the
//! two-shelf structure of MRT or the batch pattern of the bi-criteria
//! algorithm at a glance.

use std::fmt::Write;

use lsps_des::Time;

use crate::schedule::Schedule;

/// Rendering options.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GanttOptions {
    /// Total drawing width in pixels (time axis).
    pub width: u32,
    /// Height of one processor lane in pixels.
    pub lane_height: u32,
    /// Draw job-id labels when rectangles are wide enough.
    pub labels: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 1000,
            lane_height: 14,
            labels: true,
        }
    }
}

/// Deterministic pastel color for a job id (golden-angle hue walk).
fn color(job: u64) -> String {
    let hue = (job as f64 * 137.507_764) % 360.0;
    format!("hsl({hue:.1}, 65%, 62%)")
}

/// Render `sched` as a standalone SVG document.
pub fn gantt_svg(sched: &Schedule, opts: GanttOptions) -> String {
    let m = sched.machine_size();
    let span = sched.makespan().ticks().max(1);
    let w = opts.width.max(100) as f64;
    let lane = opts.lane_height.max(4) as f64;
    let height = lane * m as f64 + 30.0;
    let x_of = |t: Time| -> f64 { t.ticks() as f64 / span as f64 * w };

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" viewBox="0 0 {w} {height}">"#
    );
    let _ = writeln!(
        out,
        r##"<rect width="{w}" height="{height}" fill="#ffffff"/>"##
    );
    // Lane separators.
    for i in 0..=m {
        let y = i as f64 * lane;
        let _ = writeln!(
            out,
            r##"<line x1="0" y1="{y}" x2="{w}" y2="{y}" stroke="#eeeeee" stroke-width="1"/>"##
        );
    }
    // Assignments.
    for a in sched.assignments() {
        let x0 = x_of(a.start);
        let x1 = x_of(a.end).max(x0 + 1.0);
        let fill = color(a.job.0);
        for p in a.procs.iter() {
            let y = p.index() as f64 * lane;
            let _ = writeln!(
                out,
                r##"<rect x="{x0:.2}" y="{y:.2}" width="{:.2}" height="{lane:.2}" fill="{fill}" stroke="#333333" stroke-width="0.4"><title>{} [{} - {}] procs {}</title></rect>"##,
                x1 - x0,
                a.job,
                a.start,
                a.end,
                a.procs,
            );
        }
        if opts.labels && x1 - x0 > 24.0 {
            let first = a.procs.first().unwrap_or(0);
            let y = first as f64 * lane + lane * 0.75;
            let _ = writeln!(
                out,
                r##"<text x="{:.2}" y="{y:.2}" font-size="{:.1}" font-family="monospace" fill="#222222">{}</text>"##,
                x0 + 2.0,
                lane * 0.7,
                a.job,
            );
        }
    }
    // Time axis caption.
    let _ = writeln!(
        out,
        r##"<text x="2" y="{:.1}" font-size="11" font-family="monospace" fill="#555555">0 .. {} ({} procs, {} jobs)</text>"##,
        lane * m as f64 + 20.0,
        sched.makespan(),
        m,
        sched.len(),
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_platform::ProcSet;
    use lsps_workload::Job;

    fn sample() -> (Schedule, Vec<Job>) {
        let jobs = vec![
            Job::rigid(1, 2, Dur::from_ticks(50)),
            Job::rigid(2, 1, Dur::from_ticks(30)),
        ];
        let mut s = Schedule::new(3);
        s.place(&jobs[0], Time::ZERO, ProcSet::range(0, 2));
        s.place(&jobs[1], Time::from_ticks(10), ProcSet::from_indices([2]));
        (s, jobs)
    }

    #[test]
    fn svg_structure() {
        let (s, jobs) = sample();
        assert!(s.validate(&jobs).is_ok());
        let svg = gantt_svg(&s, GanttOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per (assignment, proc) + background: job 1 covers 2
        // procs, job 2 one proc.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 3);
        assert!(svg.contains("j1") && svg.contains("j2"));
        assert!(svg.contains("3 procs, 2 jobs"));
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(color(5), color(5));
        assert_ne!(color(5), color(6));
    }

    #[test]
    fn empty_schedule_renders() {
        let s = Schedule::new(2);
        let svg = gantt_svg(&s, GanttOptions::default());
        assert!(svg.contains("</svg>"));
        assert!(svg.contains("0 jobs"));
    }

    #[test]
    fn tiny_width_clamped() {
        let (s, _) = sample();
        let svg = gantt_svg(
            &s,
            GanttOptions {
                width: 1,
                lane_height: 1,
                labels: false,
            },
        );
        assert!(svg.contains("</svg>"));
    }
}
