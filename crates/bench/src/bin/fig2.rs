//! FIG2 — regenerates Figure 2 of the paper.
//!
//! "A simulated implementation of a variation of the bi-criteria algorithm
//! has been realized […] the simulation assumed a cluster of 100 machines,
//! parallel and non-parallel jobs, and two criteria Cmax and Σ ωiCi."
//!
//! A thin wrapper over the built-in
//! [`lsps_scenario::campaign::builtin::fig2_spec`] campaign: one policy
//! (`bicriteria` from the registry), workloads = the two Fig. 2 job
//! populations × n = 50..1000 × 10 seeds, one platform (m = 100). The
//! table reports the two ratios the figure plots, aggregated over seeds;
//! the CSV carries every raw cell in the standard runner schema
//! (byte-identical to the pre-campaign hand-rolled sweep).
//!
//! Expected shape (paper): ratios between 1 and ~2.8, decreasing with the
//! number of tasks, the non-parallel series above the parallel one for
//! Σ ωiCi.

use lsps_bench::runner::{self, summarize_by};
use lsps_bench::{write_csv, Table};
use lsps_scenario::campaign::builtin::fig2_spec;
use lsps_scenario::{run_campaign, CampaignOptions};

fn main() {
    let spec = fig2_spec();
    // Banner shape comes from the spec itself: m from the single platform,
    // seeds/point from how many entries share one series name.
    let m = spec.platforms[0].m;
    let seeds = spec
        .workloads
        .iter()
        .filter(|w| w.name == spec.workloads[0].name)
        .count();
    println!("FIG2 — bi-criteria simulation on {m} machines ({seeds} seeds/point)\n");

    let report =
        run_campaign(&spec, &CampaignOptions::default()).expect("built-in campaign spec runs");
    let cells = report.cells;

    let wici = summarize_by(&cells, |c| c.workload.clone(), |c| c.wsum_ratio);
    let cmax = summarize_by(&cells, |c| c.workload.clone(), |c| c.cmax_ratio);
    let cmax_of = |key: &String| {
        cmax.iter()
            .find(|(k, _)| k == key)
            .map(|(_, s)| s)
            .expect("same grouping")
    };

    let mut table = Table::new(&["n", "series", "WiCi ratio", "±", "Cmax ratio", "±"]);
    for (key, w) in &wici {
        let (series, n) = key.split_once('/').expect("series/n key");
        let c = cmax_of(key);
        table.row(vec![
            n.to_string(),
            series.to_string(),
            format!("{:.3}", w.mean()),
            format!("{:.3}", w.std_dev()),
            format!("{:.3}", c.mean()),
            format!("{:.3}", c.std_dev()),
        ]);
    }
    table.print();
    write_csv("fig2.csv", &runner::to_csv(&cells));
    println!(
        "\npaper shape check: ratios should start high at small n and decrease \
         toward 1 as n grows (both plots of Fig. 2)."
    );
}
