//! Offline shim for `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` over the local `serde` value model.
//!
//! The input grammar is parsed directly from the token stream (no `syn`):
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, newtype, tuple or struct-shaped — exactly the shapes this
//! workspace derives on. Layout conventions match real serde: named structs
//! become maps, one-field tuple structs are transparent newtypes, enums are
//! externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple arity.
    Tuple(usize),
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skip `#[...]` attribute groups (including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Split a token list on top-level commas, tracking `<...>` depth so that
/// commas inside generic arguments do not split.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.into_iter().filter(|c| !c.is_empty()).collect()
}

/// Parse the fields of a named-struct body `{ a: T, b: U }`.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    split_commas(body)
        .iter()
        .map(|chunk| {
            let i = skip_vis(chunk, skip_attrs(chunk, 0));
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => Fields::Named(parse_named_fields(&body)),
        Delimiter::Parenthesis => Fields::Tuple(split_commas(&body).len()),
        other => panic!("serde shim derive: unexpected delimiter {other:?}"),
    }
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type {name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) => parse_fields_group(g),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => panic!("serde shim derive: bad struct body: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: bad enum body: {other}"),
            };
            let body: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_commas(&body)
                .iter()
                .map(|chunk| {
                    let j = skip_attrs(chunk, 0);
                    let vname = match &chunk[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde shim derive: expected variant, got {other}"),
                    };
                    let fields = match chunk.get(j + 1) {
                        Some(TokenTree::Group(g)) => parse_fields_group(g),
                        None => Fields::Unit,
                        other => panic!("serde shim derive: bad variant body: {other:?}"),
                    };
                    (vname, fields)
                })
                .collect();
            Input::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

fn named_to_value(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

fn named_from_value(src: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field({src}, {f:?})?)?,"))
        .collect::<Vec<_>>()
        .join("")
}

/// Generate the `Serialize` impl source.
fn gen_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => named_to_value(fs, |f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(""))
                }
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let inner = named_to_value(fs, |f| f.to_string());
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),"
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(""))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

/// Generate the `Deserialize` impl source.
fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    named_from_value("__v", fs)
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(__s.get({i})\
                                 .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let __s = __v.as_seq()\
                         .ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\
                         ::std::result::Result::Ok({name}({}))",
                        items.join("")
                    )
                }
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Named(fs) => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                        named_from_value("__inner", fs)
                    ),
                    Fields::Tuple(1) => format!(
                        "{v:?} => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__s.get({i})\
                                     .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?,"
                                )
                            })
                            .collect();
                        format!(
                            "{v:?} => {{\
                             let __s = __inner.as_seq()\
                             .ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            items.join("")
                        )
                    }
                    Fields::Unit => unreachable!(),
                })
                .collect();
            let body = format!(
                "match __v {{\
                   ::serde::Value::Str(__s) => match __s.as_str() {{\
                     {unit}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\
                   }},\
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\
                     let (__tag, __inner) = &__entries[0];\
                     match __tag.as_str() {{\
                       {tagged}\
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\
                     }}\
                   }},\
                   _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected externally tagged enum\")),\
                 }}",
                unit = unit_arms.join(""),
                tagged = tagged_arms.join(""),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
           fn from_value(__v: &::serde::Value)\
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
}

/// Derive the shim `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
