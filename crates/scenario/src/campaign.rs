//! Campaign execution: expand a [`CampaignSpec`] into runner cells, skip
//! the cached ones, run the rest, aggregate replications.
//!
//! The canonical cell order is executor-major, then the runner's own order
//! (platform → failure entry → workload entry → replication → policy). The cache never
//! affects ordering — a warm, partially warm or cold run emits exactly the
//! same bytes — so interrupting a campaign and re-running it *is* resume.
//!
//! The expansion itself is a first-class surface: [`CampaignPlan`] holds
//! the canonical cell list with each cell's content-addressed cache key
//! and runs any single cell in isolation ([`CampaignPlan::run_cell`]),
//! byte-identical to its place in a full [`run_campaign`]. The
//! `lsps-campaignd` daemon plans campaigns and shards cells over worker
//! processes through exactly this surface, and `lsps-campaign --dry-run`
//! prints it.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lsps_core::policy::{by_name, Policy};
use lsps_metrics::Summary;
use serde::{Serialize, Value};

use crate::cache::{CellCache, CACHE_VERSION};
use crate::families::builtin_family;
use crate::runner::{
    des_online_open, to_csv, Cell, Executor, ExperimentRunner, PlatformCase, VolatilityCase,
    WorkloadCase,
};
use crate::spec::{fnv64, CampaignSpec, FailureEntry, SpecError, WorkloadSource};

/// How a campaign runs: where the cache lives, how wide the pool is, and
/// what relative trace paths resolve against.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Cell-cache directory; `None` disables caching (every cell runs).
    pub cache_dir: Option<PathBuf>,
    /// Worker-pool size per executor sweep (`0` = one thread per core).
    pub threads: usize,
    /// Base directory for relative trace-file paths (usually the spec
    /// file's directory); `None` resolves against the current directory.
    pub base_dir: Option<PathBuf>,
}

/// Everything a campaign run produced.
pub struct CampaignReport {
    /// Every cell, in canonical order.
    pub cells: Vec<Cell>,
    /// The raw per-cell CSV (standard runner schema).
    pub raw_csv: String,
    /// Replications aggregated per (policy, executor, workload, platform).
    pub aggregate_csv: String,
    /// Total cell count.
    pub total: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
}

impl CampaignReport {
    /// Cache-hit rate in percent (100 when there was nothing to run).
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.cache_hits as f64 / self.total as f64
        }
    }
}

/// Why a campaign could not run.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec itself is invalid.
    Spec(SpecError),
    /// A trace-backed workload entry failed to load.
    Trace {
        /// Workload entry name.
        entry: String,
        /// Underlying error rendering.
        error: String,
    },
    /// The cache directory could not be created.
    Cache(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => e.fmt(f),
            CampaignError::Trace { entry, error } => {
                write!(f, "workload `{entry}`: {error}")
            }
            CampaignError::Cache(e) => write!(f, "cache: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> CampaignError {
        CampaignError::Spec(e)
    }
}

/// A workload entry expanded to its replication seeds plus the canonical
/// source value that goes into cell keys (trace files by content hash).
/// Trace files are read and parsed exactly once, here — the per-seed
/// cases (and every executor sweep, and fully-warm runs) share the parsed
/// job list instead of re-reading an immutable file.
struct ExpandedEntry {
    entry_idx: usize,
    seeds: Vec<u64>,
    canonical_source: Value,
    trace_jobs: Option<Vec<lsps_workload::Job>>,
}

fn resolve_path(base: &Option<PathBuf>, path: &str) -> PathBuf {
    let p = Path::new(path);
    match base {
        Some(dir) if p.is_relative() => dir.join(p),
        _ => p.to_path_buf(),
    }
}

fn expand_entries(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<Vec<ExpandedEntry>, CampaignError> {
    spec.workloads
        .iter()
        .enumerate()
        .map(|(entry_idx, entry)| {
            let trace_err = |error: String| CampaignError::Trace {
                entry: entry.name.clone(),
                error,
            };
            let (canonical_source, trace_jobs) = match &entry.source {
                // Trace files are keyed by *content*: replacing the file
                // invalidates its cells even though the path is unchanged.
                WorkloadSource::SwfFile(path) | WorkloadSource::JsonlFile(path) => {
                    let resolved = resolve_path(&opts.base_dir, path);
                    let text = std::fs::read_to_string(&resolved)
                        .map_err(|e| trace_err(format!("{}: {e}", resolved.display())))?;
                    let (tag, jobs) = match &entry.source {
                        WorkloadSource::SwfFile(_) => {
                            ("SwfFile", lsps_workload::swf::from_swf(&text))
                        }
                        _ => ("JsonlFile", lsps_workload::swf::from_jsonl(&text)),
                    };
                    let jobs = jobs.map_err(|e| trace_err(e.to_string()))?;
                    let canon = Value::Map(vec![(
                        tag.into(),
                        Value::Map(vec![
                            ("path".into(), path.to_value()),
                            (
                                "content_fnv".into(),
                                format!("{:016x}", fnv64(text.as_bytes())).to_value(),
                            ),
                        ]),
                    )]);
                    (canon, Some(jobs))
                }
                source => (source.to_value(), None),
            };
            Ok(ExpandedEntry {
                entry_idx,
                seeds: spec.replication.seeds_for(entry),
                canonical_source,
                trace_jobs,
            })
        })
        .collect()
}

/// The expanded workload list plus, per case, its (entry index, seed).
type ExpandedCases = (Vec<WorkloadCase>, Vec<(usize, u64)>);

/// Build the runner workload list — one [`WorkloadCase`] per (entry,
/// replication seed), in entry order — plus the aligned expanded-entry
/// index of every case.
fn build_cases(spec: &CampaignSpec, expanded: &[ExpandedEntry]) -> ExpandedCases {
    let mut cases = Vec::new();
    let mut meta = Vec::new();
    for exp in expanded {
        let entry = &spec.workloads[exp.entry_idx];
        for &seed in &exp.seeds {
            let case = match &entry.source {
                WorkloadSource::Spec(ws) => {
                    WorkloadCase::from_spec(entry.name.clone(), seed, ws.clone())
                }
                WorkloadSource::Family { family, n } => {
                    let family = builtin_family(family, *n).expect("validated family");
                    WorkloadCase::new(entry.name.clone(), seed, move |m, rng| family(m, rng))
                }
                WorkloadSource::SwfFile(_) | WorkloadSource::JsonlFile(_) => WorkloadCase::fixed(
                    entry.name.clone(),
                    seed,
                    exp.trace_jobs.clone().expect("trace parsed at expansion"),
                ),
                WorkloadSource::Open(_) => {
                    unreachable!("open campaigns bypass the runner case list")
                }
            };
            cases.push(case);
            meta.push((exp.entry_idx, seed));
        }
    }
    (cases, meta)
}

/// The key preimage of one cell: everything its outcome depends on, as
/// canonical compact JSON. One argument per cell-grid axis, by design.
#[allow(clippy::too_many_arguments)]
fn cell_key(
    spec: &CampaignSpec,
    executor: crate::runner::Executor,
    platform_idx: usize,
    policy_idx: usize,
    entry: &ExpandedEntry,
    entry_name: &str,
    seed: u64,
    failure: &FailureEntry,
) -> String {
    let plat = &spec.platforms[platform_idx];
    let mut key = vec![
        ("v".into(), Value::UInt(CACHE_VERSION as u64)),
        ("policy".into(), spec.policies[policy_idx].to_value()),
        ("executor".into(), executor.name().to_value()),
        ("platform".into(), plat.to_value()),
        ("workload".into(), entry_name.to_value()),
        ("seed".into(), Value::UInt(seed)),
        ("source".into(), entry.canonical_source.clone()),
        ("ctx".into(), spec.ctx.to_value()),
    ];
    // Reliable entries carry no key field: the key text of a cell without
    // failures is exactly what it was before the axis existed.
    if failure.trace.is_some() {
        key.push(("failures".into(), failure.to_value()));
    }
    serde_json::to_string(&Value::Map(key)).expect("keys serialize")
}

/// One cell of an expanded campaign: the grid coordinates that determine
/// its outcome plus its content-addressed cache key. Cells live in the
/// canonical campaign order (executor-major, then platform → failure
/// entry → workload entry → replication → policy), and the index of a cell in
/// [`CampaignPlan::cells`] is its stable identity for sharded execution —
/// the daemon ships `(campaign, cell index)` pairs to workers and both
/// sides agree on what the index means because both expanded the same
/// spec.
#[derive(Clone, Debug)]
pub struct PlannedCell {
    /// Executor the cell runs under.
    pub executor: Executor,
    /// Index into [`CampaignSpec::platforms`].
    pub platform: usize,
    /// Index into [`CampaignSpec::failures`] (0 when the spec has no
    /// `failures` block — the implicit reliable entry).
    pub failure: usize,
    /// Index into [`CampaignSpec::policies`].
    pub policy: usize,
    /// Index into [`CampaignSpec::workloads`].
    pub entry: usize,
    /// Replication seed.
    pub seed: u64,
    /// The cell's content-addressed cache key preimage (canonical JSON) —
    /// also the dedup/resume token the service tier shards on.
    pub key: String,
    /// Runner case index (the workload-case axis of
    /// [`ExperimentRunner::cell_order`]): position of this cell's
    /// (entry, seed) pair in the entry-major case list.
    case: usize,
}

/// A validated, fully expanded campaign: the spec, its trace content (read
/// once, keyed by hash), and every cell in canonical order with its cache
/// key. This is the library surface shared by [`run_campaign`], the
/// `lsps-campaign --dry-run` breakdown, and the `lsps-campaignd` /
/// `lsps-worker` service tier: the daemon plans, probes the cache and
/// shards cell indices; each worker re-expands the same spec and runs
/// single cells via [`CampaignPlan::run_cell`].
pub struct CampaignPlan {
    spec: CampaignSpec,
    expanded: Vec<ExpandedEntry>,
    cells: Vec<PlannedCell>,
    open: bool,
}

impl CampaignPlan {
    /// Validate `spec` and expand it into the canonical cell list.
    pub fn expand(
        spec: &CampaignSpec,
        opts: &CampaignOptions,
    ) -> Result<CampaignPlan, CampaignError> {
        spec.validate()?;
        let expanded = expand_entries(spec, opts)?;
        let open = spec
            .workloads
            .iter()
            .any(|w| matches!(w.source, WorkloadSource::Open(_)));
        let mut cells = Vec::with_capacity(spec.cell_count());
        for &executor in &spec.executors {
            for pi in 0..spec.platforms.len() {
                for fi in 0..spec.failures.len() {
                    let mut case = 0usize;
                    for exp in &expanded {
                        for &seed in &exp.seeds {
                            for ki in 0..spec.policies.len() {
                                cells.push(PlannedCell {
                                    executor,
                                    platform: pi,
                                    failure: fi,
                                    policy: ki,
                                    entry: exp.entry_idx,
                                    seed,
                                    key: cell_key(
                                        spec,
                                        executor,
                                        pi,
                                        ki,
                                        exp,
                                        &spec.workloads[exp.entry_idx].name,
                                        seed,
                                        &spec.failures[fi],
                                    ),
                                    case,
                                });
                            }
                            case += 1;
                        }
                    }
                }
            }
        }
        Ok(CampaignPlan {
            spec: spec.clone(),
            expanded,
            cells,
            open,
        })
    }

    /// The validated spec the plan was expanded from.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Every cell, in canonical order.
    pub fn cells(&self) -> &[PlannedCell] {
        &self.cells
    }

    /// Whether this is an open (steady-state) campaign.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// The spec as canonical compact JSON — the content the service tier
    /// derives campaign ids from and journals for restart resume. Two
    /// spellings of the same spec (key order, layered defaults) canonicalize
    /// to the same bytes.
    pub fn canonical_spec_json(&self) -> String {
        serde_json::to_string(&self.spec).expect("specs serialize")
    }

    /// The runner for one executor sweep, cases in canonical order. The
    /// runner's platform axis is the spec's platforms × failure entries
    /// (platform-major): index `pi * n_failures + fi`, with volatile
    /// entries suffixing the display name so CSV rows group per regime.
    fn runner(&self, executor: Executor, threads: usize) -> ExperimentRunner {
        let (workloads, _meta) = build_cases(&self.spec, &self.expanded);
        let mut platforms =
            Vec::with_capacity(self.spec.platforms.len() * self.spec.failures.len());
        for p in &self.spec.platforms {
            for f in &self.spec.failures {
                platforms.push(PlatformCase {
                    name: match &f.trace {
                        Some(_) => format!("{}+{}", p.name, f.name),
                        None => p.name.clone(),
                    },
                    m: p.m,
                    speeds: p.speeds.clone(),
                    volatility: f.trace.clone().map(|trace| VolatilityCase {
                        trace,
                        policy: f.policy,
                    }),
                });
            }
        }
        ExperimentRunner {
            policies: self
                .spec
                .policies
                .iter()
                .map(|p| by_name(p).expect("validated policy"))
                .collect(),
            workloads,
            platforms,
            ctx: self.spec.ctx.to_policy_ctx(),
            executor,
            threads,
        }
    }

    /// Drive one open-arrival cell to completion.
    fn open_cell(&self, c: &PlannedCell, policy: &dyn Policy) -> Cell {
        let entry = &self.spec.workloads[c.entry];
        let WorkloadSource::Open(open) = &entry.source else {
            unreachable!("validated: open campaigns are uniformly open")
        };
        let plat = &self.spec.platforms[c.platform];
        let ctx = self.spec.ctx.to_policy_ctx();
        let out = des_online_open(policy, open, plat.m, &ctx, c.seed);
        let utilization = out.criteria.utilization(plat.m);
        Cell {
            policy: policy.name().to_string(),
            executor: c.executor.name().to_string(),
            workload: entry.name.clone(),
            seed: c.seed,
            platform: plat.name.clone(),
            m: plat.m,
            n: out.completions as usize,
            utilization,
            // An open stream has no finite instance to lower-bound, so the
            // ratio columns carry a finite 0 sentinel (aggregate-safe).
            cmax_ratio: 0.0,
            csum_ratio: 0.0,
            wsum_ratio: 0.0,
            criteria: out.criteria,
            trials: None,
            kills: None,
            wasted_ticks: None,
            class_names: Some(open.stream.classes.iter().map(|c| c.name.clone()).collect()),
            responses: Some(out.responses),
            failures: None,
        }
    }

    /// Run one cell by canonical index, in isolation: the single-cell entry
    /// point workers execute. Byte-identical to the same cell's outcome
    /// inside a full [`run_campaign`] — the workload is regenerated from
    /// (entry, seed, m), which is a pure function.
    pub fn run_cell(&self, idx: usize) -> Cell {
        let c = &self.cells[idx];
        if self.open {
            let policy = by_name(&self.spec.policies[c.policy]).expect("validated policy");
            return self.open_cell(c, policy.as_ref());
        }
        let runner = self.runner(c.executor, 1);
        let plat = c.platform * self.spec.failures.len() + c.failure;
        let mut fresh = runner.run_cells(&[(plat, c.case, c.policy)]);
        fresh.pop().expect("one task yields one cell")
    }

    /// Run the cells at the given canonical indices across a worker pool of
    /// `threads`, returning cells aligned with `indices`. Finite campaigns
    /// batch by executor through [`ExperimentRunner::run_cells`] (sharing
    /// generated workloads across the policies of a sweep); open campaigns
    /// fan independent drives over the same pool shape.
    pub fn run_cells(&self, indices: &[usize], threads: usize) -> Vec<Cell> {
        if self.open {
            let policies: Vec<Box<dyn Policy>> = self
                .spec
                .policies
                .iter()
                .map(|p| by_name(p).expect("validated policy"))
                .collect();
            return pool_map(threads, indices.len(), |i| {
                let c = &self.cells[indices[i]];
                self.open_cell(c, policies[c.policy].as_ref())
            });
        }
        // Finite: cells are executor-major, so an ordered index list splits
        // into contiguous per-executor runs; each run batches through the
        // runner (which generates every referenced workload exactly once).
        let mut out: Vec<Cell> = Vec::with_capacity(indices.len());
        let mut i = 0;
        while i < indices.len() {
            let executor = self.cells[indices[i]].executor;
            let mut j = i;
            while j < indices.len() && self.cells[indices[j]].executor == executor {
                j += 1;
            }
            let tasks: Vec<(usize, usize, usize)> = indices[i..j]
                .iter()
                .map(|&idx| {
                    let c = &self.cells[idx];
                    (
                        c.platform * self.spec.failures.len() + c.failure,
                        c.case,
                        c.policy,
                    )
                })
                .collect();
            out.extend(self.runner(executor, threads).run_cells(&tasks));
            i = j;
        }
        out
    }
}

/// Run `f(0..n)` across a pool of `threads` workers (`0` = one per core),
/// results slot-indexed so the output order is byte-identical to a
/// sequential run.
fn pool_map<F>(threads: usize, n: usize, f: F) -> Vec<Cell>
where
    F: Fn(usize) -> Cell + Sync,
{
    let threads = match threads {
        0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
        t => t,
    }
    .min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Cell>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = f(i);
                *slots[i].lock().expect("result slot") = Some(cell);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Run a campaign: validate, expand, serve cached cells, execute the rest
/// through the runner's worker pool, persist fresh cells, aggregate.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CampaignError> {
    let plan = CampaignPlan::expand(spec, opts)?;
    let cache = match &opts.cache_dir {
        Some(dir) => Some(CellCache::new(dir).map_err(|e| CampaignError::Cache(e.to_string()))?),
        None => None,
    };
    let mut slots: Vec<Option<Cell>> = match &cache {
        Some(c) => plan.cells().iter().map(|t| c.load(&t.key)).collect(),
        None => plan.cells().iter().map(|_| None).collect(),
    };
    let cache_hits = slots.iter().filter(|s| s.is_some()).count();
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();
    let fresh = plan.run_cells(&missing, opts.threads);
    for (&idx, cell) in missing.iter().zip(fresh) {
        if let Some(c) = &cache {
            c.store(&plan.cells()[idx].key, &cell);
        }
        slots[idx] = Some(cell);
    }
    let cells: Vec<Cell> = slots
        .into_iter()
        .map(|s| s.expect("every slot filled (cache hit or fresh run)"))
        .collect();
    let total = cells.len();
    Ok(CampaignReport {
        raw_csv: to_csv(&cells),
        aggregate_csv: aggregate_csv(&cells),
        cells,
        total,
        cache_hits,
    })
}

/// A cell metric accessor, as the aggregate table names them.
pub type MetricFn = fn(&Cell) -> f64;

/// The metrics the aggregate CSV summarizes, as (column stem, accessor).
pub const AGG_METRICS: [(&str, MetricFn); 5] = [
    ("cmax_ratio", |c| c.cmax_ratio),
    ("csum_ratio", |c| c.csum_ratio),
    ("wsum_ratio", |c| c.wsum_ratio),
    ("mean_flow_s", |c| c.criteria.mean_flow),
    ("utilization", |c| c.utilization),
];

const AGG_STATS: [&str; 6] = ["mean", "std", "ci95", "min", "median", "max"];

/// The trial-overhead columns appended after the metric statistics:
/// per-group means of the non-clairvoyant counters, *empty* for groups of
/// rectangle/uniform outcomes (which have no trial overhead).
const AGG_TRIAL_COLUMNS: [&str; 3] = ["trials", "kills", "wasted_ticks"];

/// The per-class response-time columns appended after the trial counters,
/// filled only for open-arrival groups (one aggregate row *per class*);
/// finite groups leave them empty.
const AGG_RESPONSE_COLUMNS: [&str; 8] = [
    "class",
    "resp_n",
    "resp_mean_s",
    "resp_ci95_s",
    "resp_p50_s",
    "resp_p95_s",
    "resp_p99_s",
    "resp_max_slowdown",
];

/// The failure-accounting columns appended after the response columns:
/// per-group means of the volatile-run counters ([`lsps_metrics::FailureStats`]).
/// The whole block is present only when some cell of the campaign carries
/// failure stats — a campaign without a volatile `failures` axis emits
/// exactly the pre-axis header, byte for byte.
pub const AGG_FAILURE_COLUMNS: [&str; 4] = [
    "fail_goodput",
    "fail_wasted_ticks",
    "fail_resubmits",
    "fail_interrupted_slowdown",
];

/// Header of the aggregate CSV (without the volatile failure block — the
/// stable prefix every campaign shares).
pub fn aggregate_header() -> String {
    aggregate_header_for(false)
}

/// Header of the aggregate CSV, with the failure block iff `volatile`.
pub fn aggregate_header_for(volatile: bool) -> String {
    let mut h = String::from("policy,executor,workload,platform,m,reps");
    for (metric, _) in AGG_METRICS {
        for stat in AGG_STATS {
            h.push(',');
            h.push_str(metric);
            h.push('_');
            h.push_str(stat);
        }
    }
    for col in AGG_TRIAL_COLUMNS {
        h.push(',');
        h.push_str(col);
    }
    for col in AGG_RESPONSE_COLUMNS {
        h.push(',');
        h.push_str(col);
    }
    if volatile {
        for col in AGG_FAILURE_COLUMNS {
            h.push(',');
            h.push_str(col);
        }
    }
    h
}

/// Per-class response aggregation across one group's replications.
struct RespAgg {
    /// Post-warmup completions, summed over replications.
    n: u64,
    /// Per-replication mean response times — their spread is the
    /// across-replication CI.
    means: Summary,
    p50: Summary,
    p95: Summary,
    p99: Summary,
    /// Max slowdown over every replication.
    max_slowdown: f64,
    /// The single-replication batch-means CI, used when only one
    /// replication contributed (no across-replication spread to measure).
    single_ci: f64,
}

/// Aggregate replications: one row per (policy, executor, workload,
/// platform) group, each metric summarized as mean/std/ci95/min/median/max
/// over the group's cells, plus the mean trial-overhead counters (empty
/// columns for groups without them). Groups are written in canonical cell
/// order — sorted by each group's first cell index — so the row order is a
/// function of the cell list alone, never of `--threads`, worker count, or
/// accumulation order.
///
/// Open-arrival groups emit one row **per job class** instead: the group
/// statistics repeat and the trailing `AGG_RESPONSE_COLUMNS` carry the
/// class's response distribution — means/percentiles averaged across
/// replications, `resp_ci95_s` the across-replication 95% half-width on
/// the mean response (falling back to the single run's batch-means CI
/// when the group has one replication), max slowdown the max.
pub fn aggregate_csv(cells: &[Cell]) -> String {
    type GroupKey = (String, String, String, String);
    struct Group {
        m: usize,
        metrics: Vec<Summary>,
        trial: [Summary; 3],
        /// goodput / wasted_ticks / resubmits means, volatile groups only.
        fail: [Summary; 3],
        /// Interrupted-job slowdown mean, over the replications where some
        /// job was actually interrupted.
        fail_slow: Summary,
        class_names: Vec<String>,
        resp: std::collections::BTreeMap<u32, RespAgg>,
    }
    let volatile = cells.iter().any(|c| c.failures.is_some());
    let mut order: Vec<(usize, GroupKey)> = Vec::new();
    let mut groups: std::collections::HashMap<GroupKey, Group> = std::collections::HashMap::new();
    for (ci, c) in cells.iter().enumerate() {
        let key = (
            c.policy.clone(),
            c.executor.clone(),
            c.workload.clone(),
            c.platform.clone(),
        );
        let g = groups.entry(key.clone()).or_insert_with(|| {
            order.push((ci, key));
            Group {
                m: c.m,
                metrics: AGG_METRICS.iter().map(|_| Summary::new()).collect(),
                trial: [Summary::new(), Summary::new(), Summary::new()],
                fail: [Summary::new(), Summary::new(), Summary::new()],
                fail_slow: Summary::new(),
                class_names: c.class_names.clone().unwrap_or_default(),
                resp: std::collections::BTreeMap::new(),
            }
        });
        for ((_, metric), s) in AGG_METRICS.iter().zip(g.metrics.iter_mut()) {
            s.add(metric(c));
        }
        for (counter, s) in [c.trials, c.kills, c.wasted_ticks].iter().zip(&mut g.trial) {
            if let Some(v) = counter {
                s.add(*v as f64);
            }
        }
        if let Some(f) = &c.failures {
            g.fail[0].add(f.goodput);
            g.fail[1].add(f.wasted_ticks as f64);
            g.fail[2].add(f.resubmits as f64);
            if let Some(s) = f.interrupted_slowdown {
                g.fail_slow.add(s);
            }
        }
        for r in c.responses.iter().flatten() {
            let agg = g.resp.entry(r.class).or_insert_with(|| RespAgg {
                n: 0,
                means: Summary::new(),
                p50: Summary::new(),
                p95: Summary::new(),
                p99: Summary::new(),
                max_slowdown: 0.0,
                single_ci: 0.0,
            });
            agg.n += r.n as u64;
            agg.means.add(r.mean_flow_s);
            agg.p50.add(r.p50_flow_s);
            agg.p95.add(r.p95_flow_s);
            agg.p99.add(r.p99_flow_s);
            agg.max_slowdown = agg.max_slowdown.max(r.max_slowdown);
            agg.single_ci = r.ci95_flow_s;
        }
    }
    order.sort_by_key(|&(first_cell, _)| first_cell);
    let mut out = aggregate_header_for(volatile);
    out.push('\n');
    for (_, key) in order {
        let g = &groups[&key];
        let (policy, executor, workload, platform) = &key;
        let mut stats = format!(
            "{policy},{executor},{workload},{platform},{},{}",
            g.m,
            g.metrics[0].n()
        );
        for s in &g.metrics {
            stats.push_str(&format!(
                ",{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                s.mean(),
                s.std_dev(),
                s.ci95(),
                s.min(),
                s.median(),
                s.max()
            ));
        }
        for s in &g.trial {
            if s.n() == 0 {
                stats.push(',');
            } else {
                stats.push_str(&format!(",{:.2}", s.mean()));
            }
        }
        // Failure columns trail every row of a volatile campaign; groups
        // without failure stats (and replications that interrupted no job)
        // leave them empty — an absent measurement, not a zero.
        let fail_cols = if !volatile {
            String::new()
        } else if g.fail[0].n() == 0 {
            ",".repeat(AGG_FAILURE_COLUMNS.len())
        } else {
            let mut s = format!(
                ",{:.6},{:.2},{:.2}",
                g.fail[0].mean(),
                g.fail[1].mean(),
                g.fail[2].mean()
            );
            if g.fail_slow.n() == 0 {
                s.push(',');
            } else {
                s.push_str(&format!(",{:.6}", g.fail_slow.mean()));
            }
            s
        };
        if g.resp.is_empty() {
            out.push_str(&stats);
            out.push_str(&",".repeat(AGG_RESPONSE_COLUMNS.len()));
            out.push_str(&fail_cols);
            out.push('\n');
            continue;
        }
        for (&class, agg) in &g.resp {
            let name = g
                .class_names
                .get(class as usize)
                .cloned()
                .unwrap_or_else(|| class.to_string());
            let ci = if agg.means.n() >= 2 {
                agg.means.ci95()
            } else {
                agg.single_ci
            };
            out.push_str(&stats);
            out.push_str(&format!(
                ",{name},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                agg.n,
                agg.means.mean(),
                ci,
                agg.p50.mean(),
                agg.p95.mean(),
                agg.p99.mean(),
                agg.max_slowdown,
            ));
            out.push_str(&fail_cols);
            out.push('\n');
        }
    }
    out
}

pub mod builtin;
