//! Offline shim for `rand_chacha`: a real ChaCha8 block cipher RNG
//! implementing the local `rand` shim traits. The stream is deterministic,
//! platform-independent and stable across builds — the property `SimRng`
//! documents — but is *not* bit-compatible with the upstream crate's word
//! ordering, which is irrelevant inside this workspace (seeds never leave
//! it).

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] = stream id, fixed to 0.
        let input = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.word() as u64;
        let hi = self.word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_block_matches_rfc8439_shape() {
        // Not an official ChaCha8 vector (the RFC specifies 20 rounds), but
        // the construction must be deterministic and full-period within a
        // block: all 16 words change between consecutive blocks.
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_forks_exact_state() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.next_u32(); // misalign within the block
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_uneven_lengths() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
