//! Streaming summary statistics (Welford) and percentiles.

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator plus exact percentiles
/// (values are retained; the experiment scale makes that cheap).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Build from an iterator (inherent helper; `Summary` deliberately
    /// does not implement `FromIterator`, which needs `Self: Sized` churn).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }

    /// Add one observation (must be finite).
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.values.push(x);
        let n = self.values.len() as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample (n−1, Bessel-corrected) standard deviation — the same
    /// estimator [`Summary::ci95`] is built on, so `mean ± std` and
    /// `mean ± ci95` never disagree about the spread estimate. Zero for
    /// fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        (self.m2 / (self.values.len() as f64 - 1.0)).sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean: `1.96 · s / √n` with `s` the *sample* (n−1) standard
    /// deviation. Zero when fewer than two observations exist — a single
    /// replication carries no spread information, and campaign aggregate
    /// rows must stay finite.
    pub fn ci95(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let sample_var = self.m2 / (n as f64 - 1.0);
        1.96 * (sample_var / n as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact q-quantile by lower nearest-rank (`0 <= q <= 1`); panics when
    /// empty. The lower rank makes the median of an even-size sample the
    /// smaller of the two central values — deterministic and exact.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.values.is_empty(), "quantile of empty summary");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let rank = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
        sorted[rank]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Render `mean ± std [min, max]` with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        format!(
            "{:.prec$} ± {:.prec$} [{:.prec$}, {:.prec$}]",
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max(),
            prec = decimals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // m2 = 32, so the sample estimator gives sqrt(32/7) — NOT the
        // population sqrt(32/8) = 2.0 this test once encoded.
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 4.0);
        assert_eq!(s.quantile(1.0), 9.0);
        assert_eq!(s.quantile(0.0), 2.0);
    }

    #[test]
    fn single_and_empty() {
        let mut s = Summary::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 3.5);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn ci95_is_zero_for_degenerate_samples() {
        let mut s = Summary::new();
        assert_eq!(s.ci95(), 0.0, "n = 0");
        s.add(7.0);
        assert_eq!(s.ci95(), 0.0, "n = 1");
        s.add(7.0);
        assert_eq!(s.ci95(), 0.0, "zero variance");
    }

    #[test]
    fn ci95_matches_known_dataset() {
        // [2, 4, 4, 4, 5, 5, 7, 9]: sample std = sqrt(32/7), n = 8.
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let expected = 1.96 * (32.0f64 / 7.0).sqrt() / (8.0f64).sqrt();
        assert!((s.ci95() - expected).abs() < 1e-12, "{}", s.ci95());
        // And the interval is the textbook mean ± half-width shape.
        assert!((s.mean() - expected..s.mean() + expected).contains(&5.0));
    }

    #[test]
    fn display_formats() {
        // Sample std of [1, 3] is sqrt(2) ≈ 1.4 (population would be 1.0).
        let s = Summary::from_iter([1.0, 3.0]);
        assert_eq!(s.display(1), "2.0 ± 1.4 [1.0, 3.0]");
    }

    #[test]
    fn std_dev_and_ci95_share_the_sample_estimator() {
        // Regression: std_dev once divided m2 by n (population) while ci95
        // used n−1, so ci95 != 1.96·std/√n. They must agree.
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let expected = 1.96 * s.std_dev() / (s.n() as f64).sqrt();
        assert!((s.ci95() - expected).abs() < 1e-12);
    }
}
