//! The campaign service tier: a long-running daemon (`lsps-campaignd`)
//! that accepts [`lsps_scenario::CampaignSpec`] JSON over a minimal
//! HTTP/1.1 API and shards cell execution across supervised `lsps-worker`
//! child processes.
//!
//! The crate is deliberately std-only: the HTTP server is a hand-rolled
//! request/response loop over [`std::net::TcpListener`] (one thread per
//! connection, `Connection: close`), and the worker protocol is
//! newline-delimited JSON over stdin/stdout — no async runtime, no
//! external network stack, matching the workspace's offline-shim
//! constraint.
//!
//! The design leans entirely on two invariants of the scenario layer:
//!
//! * [`lsps_scenario::CampaignPlan`] expands a spec into a canonical cell
//!   list; daemon and worker expand the *same* spec, so a bare cell index
//!   is an unambiguous work unit.
//! * the content-addressed cell cache round-trips cells losslessly, so a
//!   cell computed in a worker process, shipped back as JSON and stored in
//!   the daemon's cache is byte-identical to one computed in-process —
//!   the service aggregate equals [`lsps_scenario::run_campaign`]'s.
//!
//! [`daemon`] holds the service state machine (submission, journal,
//! sharding, supervision, query API), [`worker`] the child-process loop,
//! [`protocol`] the wire types, [`http`] the transport.

pub mod daemon;
pub mod http;
pub mod protocol;
pub mod worker;

pub use daemon::{Daemon, DaemonConfig};
pub use protocol::{FromWorker, ToWorker};
