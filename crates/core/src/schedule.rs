//! Schedules: validated sets of `(job, start, processor-set)` assignments.
//!
//! Every policy in this crate returns a [`Schedule`]. Its
//! [`validate`](Schedule::validate) method checks the three feasibility
//! conditions exactly (integer time, bitset processors):
//!
//! 1. no two assignments overlap in time on a shared processor,
//! 2. every assignment starts at or after its job's release date and lasts
//!    exactly the job's execution time for the chosen allotment,
//! 3. every job appears exactly once and every processor index is within
//!    the machine.
//!
//! Experiments *always* validate before reporting numbers: a policy bug
//! fails loudly instead of producing flattering garbage.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};
use lsps_metrics::CompletedJob;
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobId, JobKind};

/// One scheduled job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The job.
    pub job: JobId,
    /// Start time σ(j).
    pub start: Time,
    /// Completion time `start + p(|procs|)`.
    pub end: Time,
    /// Allocated processors.
    pub procs: ProcSet,
}

/// Why a schedule failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Two assignments overlap on at least one processor.
    Overlap(JobId, JobId),
    /// A job starts before its release date.
    EarlyStart(JobId),
    /// An assignment's duration differs from the job's execution time at
    /// that allotment, or the allotment is inadmissible.
    WrongShape(JobId),
    /// An assignment uses a processor outside the machine.
    OutsideMachine(JobId),
    /// A job is scheduled more than once.
    Duplicate(JobId),
    /// A job from the input set is missing.
    Missing(JobId),
    /// An assignment references a job not in the input set.
    Unknown(JobId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Overlap(a, b) => write!(f, "jobs {a} and {b} overlap"),
            ValidationError::EarlyStart(j) => write!(f, "job {j} starts before release"),
            ValidationError::WrongShape(j) => write!(f, "job {j} has wrong duration/allotment"),
            ValidationError::OutsideMachine(j) => write!(f, "job {j} uses procs outside machine"),
            ValidationError::Duplicate(j) => write!(f, "job {j} scheduled twice"),
            ValidationError::Missing(j) => write!(f, "job {j} not scheduled"),
            ValidationError::Unknown(j) => write!(f, "assignment for unknown job {j}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A complete schedule on `m` identical processors.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    m: usize,
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// An empty schedule on `m` processors.
    pub fn new(m: usize) -> Schedule {
        assert!(m >= 1, "a machine needs at least one processor");
        Schedule {
            m,
            assignments: Vec::new(),
        }
    }

    /// Machine size.
    pub fn machine_size(&self) -> usize {
        self.m
    }

    /// Append an assignment (unchecked here; run [`validate`](Self::validate)
    /// before consuming the schedule).
    pub fn push(&mut self, a: Assignment) {
        self.assignments.push(a);
    }

    /// Drop every assignment, keeping the machine size and the buffer —
    /// the incremental planner refills one schedule per decision instead
    /// of allocating a fresh one.
    pub fn clear(&mut self) {
        self.assignments.clear();
    }

    /// Convenience: schedule `job` on `procs` starting at `start`, deriving
    /// the end from the job's profile.
    pub fn place(&mut self, job: &Job, start: Time, procs: ProcSet) {
        let dur = job.time_on(procs.len());
        self.push(Assignment {
            job: job.id,
            start,
            end: start + dur,
            procs,
        });
    }

    /// The assignments, in insertion order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of scheduled jobs.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Latest completion time (`Cmax`), or `Time::ZERO` when empty.
    pub fn makespan(&self) -> Time {
        self.assignments
            .iter()
            .map(|a| a.end)
            .fold(Time::ZERO, Time::max)
    }

    /// Merge another schedule (same machine) into this one.
    pub fn extend(&mut self, other: Schedule) {
        assert_eq!(self.m, other.m, "merging schedules of different machines");
        self.assignments.extend(other.assignments);
    }

    /// Shift every assignment later by `offset` (used by batch wrappers).
    pub fn shifted(mut self, offset: Dur) -> Schedule {
        for a in &mut self.assignments {
            a.start += offset;
            a.end += offset;
        }
        self
    }

    /// Full validation against the job set (see module docs).
    pub fn validate(&self, jobs: &[Job]) -> Result<(), ValidationError> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        let machine = ProcSet::full(self.m);
        let mut seen: HashMap<JobId, ()> = HashMap::with_capacity(self.assignments.len());

        for a in &self.assignments {
            let job = *by_id.get(&a.job).ok_or(ValidationError::Unknown(a.job))?;
            if seen.insert(a.job, ()).is_some() {
                return Err(ValidationError::Duplicate(a.job));
            }
            if !a.procs.is_subset(&machine) || a.procs.is_empty() {
                return Err(ValidationError::OutsideMachine(a.job));
            }
            if a.start < job.release {
                return Err(ValidationError::EarlyStart(a.job));
            }
            let k = a.procs.len();
            let admissible = match &job.kind {
                JobKind::Rigid { procs, .. } => k == *procs,
                JobKind::Moldable { profile } | JobKind::Malleable { profile } => {
                    k >= 1 && k <= profile.max_procs()
                }
                JobKind::Divisible { .. } => k >= 1,
            };
            if !admissible {
                return Err(ValidationError::WrongShape(a.job));
            }
            if !matches!(job.kind, JobKind::Divisible { .. }) && a.end - a.start != job.time_on(k) {
                return Err(ValidationError::WrongShape(a.job));
            }
        }
        for j in jobs {
            if !seen.contains_key(&j.id) {
                return Err(ValidationError::Missing(j.id));
            }
        }
        // Overlap check: sweep by start time with an active set.
        let mut order: Vec<&Assignment> = self.assignments.iter().collect();
        order.sort_by_key(|a| (a.start, a.end, a.job));
        let mut active: Vec<&Assignment> = Vec::new();
        for a in order {
            active.retain(|b| b.end > a.start);
            for b in &active {
                if !b.procs.is_disjoint(&a.procs) && a.start < b.end && a.end > a.start {
                    return Err(ValidationError::Overlap(b.job, a.job));
                }
            }
            if a.end > a.start {
                active.push(a);
            }
        }
        Ok(())
    }

    /// Extract the per-job outcome records for metrics.
    ///
    /// # Panics
    /// If an assignment references a job missing from `jobs` — validate
    /// first.
    pub fn completed(&self, jobs: &[Job]) -> Vec<CompletedJob> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        self.assignments
            .iter()
            .map(|a| {
                let job = by_id
                    .get(&a.job)
                    .unwrap_or_else(|| panic!("unknown job {} in schedule", a.job));
                CompletedJob::from_job(job, a.start, a.end, a.procs.len())
            })
            .collect()
    }

    /// ASCII Gantt chart: one row per processor, time scaled to `width`
    /// columns. Jobs render as their id modulo 62 in base62 — enough to see
    /// the packing structure.
    pub fn gantt_ascii(&self, width: usize) -> String {
        const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        let span = self.makespan().ticks().max(1);
        let width = width.max(10);
        let mut rows = vec![vec![b'.'; width]; self.m];
        for a in &self.assignments {
            let c0 = (a.start.ticks() as u128 * width as u128 / span as u128) as usize;
            let c1 = (a.end.ticks() as u128 * width as u128 / span as u128) as usize;
            let c1 = c1.clamp(c0 + 1, width);
            let glyph = GLYPHS[(a.job.0 % 62) as usize];
            for p in a.procs.iter() {
                for cell in &mut rows[p.index()][c0..c1] {
                    *cell = glyph;
                }
            }
        }
        let mut out = String::with_capacity(self.m * (width + 8));
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!("{i:>4} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }
    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn jobs2() -> Vec<Job> {
        vec![Job::rigid(1, 2, d(10)), Job::rigid(2, 1, d(5))]
    }

    #[test]
    fn valid_schedule_passes() {
        let jobs = jobs2();
        let mut s = Schedule::new(3);
        s.place(&jobs[0], t(0), ProcSet::range(0, 2));
        s.place(&jobs[1], t(0), ProcSet::from_indices([2]));
        assert_eq!(s.validate(&jobs), Ok(()));
        assert_eq!(s.makespan(), t(10));
        let recs = s.completed(&jobs);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].procs, 2);
    }

    #[test]
    fn overlap_detected() {
        let jobs = jobs2();
        let mut s = Schedule::new(3);
        s.place(&jobs[0], t(0), ProcSet::range(0, 2));
        s.place(&jobs[1], t(5), ProcSet::from_indices([1]));
        assert_eq!(
            s.validate(&jobs),
            Err(ValidationError::Overlap(JobId(1), JobId(2)))
        );
    }

    #[test]
    fn adjacent_assignments_do_not_overlap() {
        let jobs = vec![Job::rigid(1, 1, d(10)), Job::rigid(2, 1, d(10))];
        let mut s = Schedule::new(1);
        s.place(&jobs[0], t(0), ProcSet::from_indices([0]));
        s.place(&jobs[1], t(10), ProcSet::from_indices([0]));
        assert_eq!(s.validate(&jobs), Ok(()));
    }

    #[test]
    fn early_start_detected() {
        let jobs = vec![Job::rigid(1, 1, d(5)).released_at(t(10))];
        let mut s = Schedule::new(1);
        s.place(&jobs[0], t(10), ProcSet::from_indices([0]));
        assert_eq!(s.validate(&jobs), Ok(()));
        let mut bad = Schedule::new(1);
        bad.push(Assignment {
            job: JobId(1),
            start: t(9),
            end: t(14),
            procs: ProcSet::from_indices([0]),
        });
        assert_eq!(
            bad.validate(&jobs),
            Err(ValidationError::EarlyStart(JobId(1)))
        );
    }

    #[test]
    fn wrong_shape_detected() {
        let jobs = jobs2();
        // Wrong duration.
        let mut s = Schedule::new(3);
        s.push(Assignment {
            job: JobId(1),
            start: t(0),
            end: t(9),
            procs: ProcSet::range(0, 2),
        });
        s.place(&jobs[1], t(20), ProcSet::from_indices([2]));
        assert_eq!(
            s.validate(&jobs),
            Err(ValidationError::WrongShape(JobId(1)))
        );
        // Wrong allotment for a rigid job.
        let mut s = Schedule::new(3);
        s.push(Assignment {
            job: JobId(1),
            start: t(0),
            end: t(10),
            procs: ProcSet::range(0, 3),
        });
        s.place(&jobs[1], t(20), ProcSet::from_indices([2]));
        assert_eq!(
            s.validate(&jobs),
            Err(ValidationError::WrongShape(JobId(1)))
        );
    }

    #[test]
    fn missing_duplicate_unknown_detected() {
        let jobs = jobs2();
        let mut s = Schedule::new(3);
        s.place(&jobs[0], t(0), ProcSet::range(0, 2));
        assert_eq!(s.validate(&jobs), Err(ValidationError::Missing(JobId(2))));
        s.place(&jobs[1], t(20), ProcSet::from_indices([2]));
        let mut dup = s.clone();
        dup.place(&jobs[1], t(40), ProcSet::from_indices([2]));
        assert_eq!(
            dup.validate(&jobs),
            Err(ValidationError::Duplicate(JobId(2)))
        );
        let mut unk = s;
        unk.place(&Job::rigid(9, 1, d(1)), t(0), ProcSet::from_indices([2]));
        assert_eq!(unk.validate(&jobs), Err(ValidationError::Unknown(JobId(9))));
    }

    #[test]
    fn outside_machine_detected() {
        let jobs = vec![Job::rigid(1, 1, d(5))];
        let mut s = Schedule::new(1);
        s.place(&jobs[0], t(0), ProcSet::from_indices([3]));
        assert_eq!(
            s.validate(&jobs),
            Err(ValidationError::OutsideMachine(JobId(1)))
        );
    }

    #[test]
    fn moldable_allotments_validate() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let prof = MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 4);
        let jobs = vec![Job::moldable(1, prof)];
        let mut s = Schedule::new(8);
        s.place(&jobs[0], t(0), ProcSet::range(0, 2));
        assert_eq!(s.validate(&jobs), Ok(()));
        // Allotment above the profile max is rejected.
        let mut bad = Schedule::new(8);
        bad.push(Assignment {
            job: JobId(1),
            start: t(0),
            end: t(20),
            procs: ProcSet::range(0, 5),
        });
        assert_eq!(
            bad.validate(&jobs),
            Err(ValidationError::WrongShape(JobId(1)))
        );
    }

    #[test]
    fn shift_and_extend() {
        let jobs = jobs2();
        let mut a = Schedule::new(3);
        a.place(&jobs[0], t(0), ProcSet::range(0, 2));
        let a = a.shifted(d(100));
        assert_eq!(a.assignments()[0].start, t(100));
        assert_eq!(a.makespan(), t(110));
        let mut b = Schedule::new(3);
        b.place(&jobs[1], t(0), ProcSet::from_indices([2]));
        let mut merged = a.clone();
        merged.extend(b);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.validate(&jobs), Ok(()));
    }

    #[test]
    fn gantt_renders() {
        let jobs = jobs2();
        let mut s = Schedule::new(3);
        s.place(&jobs[0], t(0), ProcSet::range(0, 2));
        s.place(&jobs[1], t(0), ProcSet::from_indices([2]));
        let g = s.gantt_ascii(20);
        assert_eq!(g.lines().count(), 3);
        assert!(g.contains('1') && g.contains('2'));
    }
}
