//! List scheduling of rigid parallel tasks.
//!
//! The classical greedy the paper positions its shelf/batch algorithms
//! against: take jobs in a priority order, give each the processors that
//! free up earliest. No backfilling — holes left by wide jobs stay empty
//! (compare [`crate::backfill`]).
//!
//! For sequential jobs this is Graham's list scheduling with its
//! `2 − 1/m` guarantee; for rigid parallel tasks the greedy stays a
//! constant-factor heuristic and is the baseline used in the experiments.

use lsps_des::Time;
use lsps_platform::ProcSet;
use lsps_workload::Job;

use crate::schedule::Schedule;

/// Priority orders for list scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOrder {
    /// By release date, then id (submission order).
    Fcfs,
    /// Longest processing time first (ties by id).
    Lpt,
    /// Shortest processing time first.
    Spt,
    /// Highest weight density `ω / work` first (greedy for weighted
    /// completion criteria).
    WeightDensity,
}

fn sort_jobs(items: &mut [(&Job, usize)], order: JobOrder) {
    match order {
        JobOrder::Fcfs => items.sort_by_key(|(j, _)| (j.release, j.id)),
        JobOrder::Lpt => items.sort_by_key(|(j, k)| (std::cmp::Reverse(j.time_on(*k)), j.id)),
        JobOrder::Spt => items.sort_by_key(|(j, k)| (j.time_on(*k), j.id)),
        JobOrder::WeightDensity => items.sort_by(|(a, ka), (b, kb)| {
            let da = a.weight / (a.time_on(*ka).ticks().max(1) as f64 * *ka as f64);
            let db = b.weight / (b.time_on(*kb).ticks().max(1) as f64 * *kb as f64);
            db.partial_cmp(&da)
                .expect("finite density")
                .then(a.id.cmp(&b.id))
        }),
    }
}

/// List-schedule jobs with explicit allotments `(job, k)` on `m` identical
/// processors: each job takes the `k` processors that become free earliest,
/// starting no earlier than its release date.
pub fn list_schedule_allotted(items: &[(&Job, usize)], m: usize, order: JobOrder) -> Schedule {
    assert!(m >= 1);
    let mut items: Vec<(&Job, usize)> = items.to_vec();
    for (j, k) in &items {
        assert!(
            *k >= 1 && *k <= m && *k <= j.max_procs() && *k >= j.min_procs(),
            "job {}: inadmissible allotment {k} on m={m}",
            j.id
        );
    }
    sort_jobs(&mut items, order);

    // free[i] = instant processor i becomes idle.
    let mut free = vec![Time::ZERO; m];
    let mut sched = Schedule::new(m);
    let mut by_free: Vec<usize> = (0..m).collect();
    for (job, k) in items {
        // Processors sorted by availability; ties by index for determinism.
        by_free.sort_by_key(|&i| (free[i], i));
        let chosen = &by_free[..k];
        let avail = chosen.iter().map(|&i| free[i]).max().expect("k >= 1");
        let start = avail.max(job.release);
        let end = start + job.time_on(k);
        let procs = ProcSet::from_indices(chosen.iter().copied());
        for &i in chosen {
            free[i] = end;
        }
        sched.place(job, start, procs);
    }
    sched
}

/// List-schedule rigid jobs (each uses its fixed processor count).
///
/// # Panics
/// If any job is moldable/divisible — choose allotments first (see
/// [`crate::allot`]).
pub fn list_schedule(jobs: &[Job], m: usize, order: JobOrder) -> Schedule {
    let items: Vec<(&Job, usize)> = jobs
        .iter()
        .map(|j| {
            assert!(
                matches!(j.kind, lsps_workload::JobKind::Rigid { .. }),
                "list_schedule expects rigid jobs; job {} is not",
                j.id
            );
            (j, j.min_procs())
        })
        .collect();
    list_schedule_allotted(&items, m, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_metrics::cmax_lower_bound;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn packs_sequential_jobs_across_machines() {
        let jobs: Vec<Job> = (0..6).map(|i| Job::sequential(i, d(10))).collect();
        let s = list_schedule(&jobs, 3, JobOrder::Fcfs);
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(s.makespan(), Time::from_ticks(20));
    }

    #[test]
    fn parallel_job_waits_for_enough_procs() {
        let jobs = vec![
            Job::sequential(1, d(10)),
            Job::sequential(2, d(20)),
            Job::rigid(3, 2, d(5)),
        ];
        let s = list_schedule(&jobs, 2, JobOrder::Fcfs);
        assert!(s.validate(&jobs).is_ok());
        // The wide job must wait until both procs free at t = 20.
        let a = s
            .assignments()
            .iter()
            .find(|a| a.job == lsps_workload::JobId(3))
            .unwrap();
        assert_eq!(a.start, Time::from_ticks(20));
        assert_eq!(s.makespan(), Time::from_ticks(25));
    }

    #[test]
    fn lpt_no_worse_than_fcfs_here() {
        let jobs = vec![
            Job::sequential(1, d(2)),
            Job::sequential(2, d(2)),
            Job::sequential(3, d(2)),
            Job::sequential(4, d(6)),
        ];
        let fcfs = list_schedule(&jobs, 2, JobOrder::Fcfs);
        let lpt = list_schedule(&jobs, 2, JobOrder::Lpt);
        assert!(lpt.makespan() <= fcfs.makespan());
        assert_eq!(lpt.makespan(), Time::from_ticks(6));
    }

    #[test]
    fn respects_release_dates() {
        let jobs = vec![Job::sequential(1, d(5)).released_at(Time::from_ticks(50))];
        let s = list_schedule(&jobs, 4, JobOrder::Fcfs);
        assert_eq!(s.assignments()[0].start, Time::from_ticks(50));
    }

    #[test]
    fn graham_bound_holds_for_sequential_jobs() {
        // Random-ish deterministic instance; LS ≤ (2 − 1/m)·LB must hold
        // because LB ≤ OPT.
        let lens = [7u64, 3, 9, 1, 12, 5, 8, 2, 11, 4, 6, 10];
        let jobs: Vec<Job> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Job::sequential(i as u64, d(l)))
            .collect();
        for m in [2usize, 3, 4] {
            let s = list_schedule(&jobs, m, JobOrder::Fcfs);
            assert!(s.validate(&jobs).is_ok());
            let lb = cmax_lower_bound(&jobs, m).ticks() as f64;
            let ratio = s.makespan().ticks() as f64 / lb;
            assert!(ratio <= 2.0 - 1.0 / m as f64 + 1e-9, "m={m}: ratio {ratio}");
        }
    }

    #[test]
    fn allotted_moldable_jobs() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let prof = MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 8);
        let jobs = vec![Job::moldable(1, prof.clone()), Job::moldable(2, prof)];
        let items: Vec<(&Job, usize)> = jobs.iter().map(|j| (j, 4usize)).collect();
        let s = list_schedule_allotted(&items, 8, JobOrder::Fcfs);
        assert!(s.validate(&jobs).is_ok());
        // Both run side by side on 4 procs each.
        assert_eq!(s.makespan().ticks(), jobs[0].time_on(4).ticks());
    }

    #[test]
    #[should_panic]
    fn rejects_moldable_without_allotment() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let prof = MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 4);
        list_schedule(&[Job::moldable(1, prof)], 4, JobOrder::Fcfs);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_allotment() {
        let j = Job::rigid(1, 8, d(10));
        list_schedule(&[j], 4, JobOrder::Fcfs);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let jobs: Vec<Job> = (0..10).map(|i| Job::sequential(i, d(7))).collect();
        let a = list_schedule(&jobs, 3, JobOrder::Spt);
        let b = list_schedule(&jobs, 3, JobOrder::Spt);
        assert_eq!(a, b);
    }
}
